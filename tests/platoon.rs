//! N-vehicle platoon workload: the differential harness that backs the
//! multi-vehicle shield at scale.
//!
//! * An `n = 2` platoon is *definitionally* the paper's single-conflicting-
//!   vehicle scenario — its lowered config and its episode results must be
//!   bit-identical to the existing path, so the platoon layer can never
//!   drift from the validated baseline.
//! * The episode score of a platoon is the minimum per-pair `η`
//!   (`safe_shield::platoon_eta`), and per-pair slack is monotone under
//!   removing vehicles: dropping a pair can only relax the platoon.
//! * Degenerate platoons (`n < 2`) are a typed error, not a panic.

mod common;

use safe_cv::prelude::*;
use safe_cv::shield::{pair_time_slack, platoon_eta, platoon_slack};
use safe_cv::sim::{
    run_batch, run_episode, BatchConfig, DriverModel, EpisodeConfig, PlatoonSpec, SimError,
    StackSpec, WindowKind,
};

/// The differential oracle: for every seed, the two-vehicle platoon lowers
/// to *exactly* the paper's single-conflicting-vehicle config, and running
/// it produces to-the-bit identical results on both spellings.
#[test]
fn n2_platoon_is_bit_identical_to_the_single_vehicle_path() {
    for seed in 0..8u64 {
        let platoon = PlatoonSpec::paper_default(2, seed).expect("n = 2 is valid");
        let lowered = platoon.episode();
        let single = EpisodeConfig::paper_default(seed);
        assert_eq!(lowered, single, "seed {seed}: configs must be identical");

        let spec = StackSpec::pure_teacher_conservative(&single).expect("valid geometry");
        let a = run_episode(&lowered, &spec, false).expect("platoon episode");
        let b = run_episode(&single, &spec, false).expect("single episode");
        assert_eq!(a, b, "seed {seed}: results must match");
        assert_eq!(
            a.eta.to_bits(),
            b.eta.to_bits(),
            "seed {seed}: η must be bit-identical"
        );
    }
}

/// The same oracle through the batch path: an n = 2 platoon template and
/// the paper template produce statistically *and* bitwise equal batches.
#[test]
fn n2_platoon_batches_match_the_single_vehicle_batches() {
    let platoon = PlatoonSpec::paper_default(2, 3).expect("n = 2 is valid");
    let spec = StackSpec::pure_teacher_aggressive(&platoon.episode()).expect("valid geometry");
    let a = run_batch(&BatchConfig::new(platoon.episode(), 12), &spec).expect("platoon batch");
    let b = run_batch(
        &BatchConfig::new(EpisodeConfig::paper_default(3), 12),
        &spec,
    )
    .expect("single batch");
    assert_eq!(a, b);
}

/// `η` of a platoon episode is the minimum over its per-pair `η` values,
/// and a collision is attributed to exactly one pair. The matrix uses the
/// unprotected aggressive NN under communication disturbance, which is the
/// known collision-producing regime — so the property is exercised on
/// genuine collisions, not just safe runs.
#[test]
fn episode_eta_is_the_minimum_over_pair_etas() {
    let spec = StackSpec::PureNn {
        planner: common::aggressive_nn(),
        window: WindowKind::Nominal,
    };
    let mut collisions = 0;
    for seed in 0..30u64 {
        let mut platoon = PlatoonSpec::paper_default(4, seed).expect("n = 4 is valid");
        platoon.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.5,
        };
        let cfg = platoon.episode();
        let pairs = 1 + cfg.extra_others.len();
        let r = run_episode(&cfg, &spec, false).expect("platoon episode");
        let per_pair = r.pair_etas(pairs);
        assert_eq!(per_pair.len(), pairs);
        assert_eq!(
            r.eta.to_bits(),
            platoon_eta(per_pair.iter().copied()).to_bits(),
            "seed {seed}: episode η must be the min over pairs"
        );
        if matches!(r.outcome, Outcome::Collision { .. }) {
            collisions += 1;
            assert_eq!(
                per_pair.iter().filter(|&&e| e == -1.0).count(),
                1,
                "seed {seed}: a collision belongs to exactly one pair"
            );
            let hit = r.collided_pair.expect("collision must name its pair");
            assert_eq!(per_pair[hit], -1.0);
        } else {
            assert_eq!(r.collided_pair, None);
        }
    }
    assert!(
        collisions >= 1,
        "the unprotected aggressive matrix must produce at least one collision"
    );
}

/// Removing a vehicle from a platoon never *decreases* the slack of the
/// remaining pairs: per-pair slacks are computed independently, and the
/// platoon slack is their minimum, so every subset is at least as slack as
/// the full set. Grounded in real scenario geometry and simulated states.
#[test]
fn dropping_a_vehicle_never_decreases_remaining_slack() {
    let platoon = PlatoonSpec::paper_default(5, 7).expect("n = 5 is valid");
    let cfg = platoon.episode();
    let scenarios = cfg.scenarios().expect("valid geometry");
    for (t_idx, ego_pos) in [(0, -30.0), (10, -20.0), (25, -8.0), (40, 2.0)] {
        let time = t_idx as f64 * cfg.dt_c;
        let ego = safe_cv::dynamics::VehicleState::new(ego_pos, 8.0, 0.0);
        // Ground-truth estimates: each vehicle cruising in its own frame.
        let per_pair: Vec<f64> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let other = safe_cv::dynamics::VehicleState::new(6.0 + 2.0 * i as f64, 10.0, 0.0);
                let est = safe_cv::estimation::VehicleEstimate::exact(time, other);
                pair_time_slack(
                    s.projected_window(time, &ego),
                    s.conservative_window(time, &est),
                )
            })
            .collect();
        let full = platoon_slack(per_pair.iter().copied());
        for drop in 0..per_pair.len() {
            let subset = per_pair
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, s)| *s);
            assert!(
                platoon_slack(subset) >= full,
                "t {time}: dropping vehicle {drop} tightened the platoon"
            );
        }
        // The per-pair values themselves are independent of the drop: they
        // are recomputed identically from the same pairwise inputs.
        for (i, s) in scenarios.iter().enumerate() {
            let other = safe_cv::dynamics::VehicleState::new(6.0 + 2.0 * i as f64, 10.0, 0.0);
            let est = safe_cv::estimation::VehicleEstimate::exact(time, other);
            let again = pair_time_slack(
                s.projected_window(time, &ego),
                s.conservative_window(time, &est),
            );
            assert_eq!(again.to_bits(), per_pair[i].to_bits());
        }
    }
}

/// A platoon needs an ego and at least one conflicting vehicle; smaller
/// `n` is a typed [`SimError::InvalidBatch`], never a panic.
#[test]
fn degenerate_platoons_are_rejected_with_a_typed_error() {
    for n in [0, 1] {
        match PlatoonSpec::paper_default(n, 0) {
            Err(SimError::InvalidBatch { reason }) => {
                assert!(
                    reason.contains("at least 2"),
                    "n = {n}: reason should explain the floor, got '{reason}'"
                );
            }
            other => panic!("n = {n} must be InvalidBatch, got {other:?}"),
        }
    }
}

/// Followers are real dynamics, not scenery: a gap-tracking follower in a
/// platoon episode holds formation behind its (randomly driven) leader.
#[test]
fn followers_track_the_leader_through_a_full_episode() {
    let platoon = PlatoonSpec::paper_default(3, 11).expect("n = 3 is valid");
    let cfg = platoon.episode();
    assert_eq!(
        cfg.extra_others[0].driver,
        DriverModel::GapTracking {
            target_gap: 9.0,
            gain: 0.6,
        }
    );
    let spec = StackSpec::pure_teacher_conservative(&cfg).expect("valid geometry");
    let r = run_episode(&cfg, &spec, true).expect("platoon episode");
    let traces = r.traces.expect("traces requested");
    let leader = traces.others[0].last().expect("leader trace").state;
    let follower = traces.others[1].last().expect("follower trace").state;
    // Shared-axis gap at the end of the episode: started at 9 m, must not
    // have collapsed or blown up while the leader drove randomly.
    let starts: Vec<f64> = cfg.vehicles().iter().map(|v| v.0).collect();
    let gap = (starts[1] - follower.position) - (starts[0] - leader.position);
    assert!(
        (3.0..=20.0).contains(&gap),
        "follower lost formation: gap {gap}"
    );
}
