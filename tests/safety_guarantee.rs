//! The paper's central claim (Section III-E): the compound planner never
//! enters the unsafe set — `η(κ_c) ≥ 0` — for *any* embedded planner, under
//! *any* communication disturbance. These tests hammer that guarantee.

mod common;

use safe_cv::prelude::*;
use safe_cv::sim::run_episode;

fn assert_batch_safe(spec: &StackSpec, mutate: impl Fn(&mut EpisodeConfig), n: u64, tag: &str) {
    for seed in 0..n {
        let mut cfg = EpisodeConfig::paper_default(seed);
        cfg.other_start_shared = 50.5 + 0.5 * (seed % 20) as f64;
        mutate(&mut cfg);
        let r = run_episode(&cfg, spec, false).expect("valid episode");
        assert!(
            r.outcome.is_safe(),
            "{tag}: collision with seed {seed} ({:?})",
            r.outcome
        );
        assert!(r.eta >= 0.0, "{tag}: η < 0 with seed {seed}");
    }
}

#[test]
fn basic_compound_with_aggressive_nn_is_always_safe_no_disturbance() {
    let spec = StackSpec::basic(common::aggressive_nn());
    assert_batch_safe(&spec, |_| {}, 40, "basic/no-dist");
}

#[test]
fn ultimate_compound_with_aggressive_nn_is_always_safe_under_delay_and_drops() {
    let spec = StackSpec::ultimate(common::aggressive_nn(), AggressiveConfig::default());
    assert_batch_safe(
        &spec,
        |cfg| {
            cfg.comm = CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.5,
            };
        },
        40,
        "ultimate/delayed",
    );
}

#[test]
fn ultimate_compound_is_safe_with_messages_lost_and_heavy_noise() {
    let spec = StackSpec::ultimate(common::aggressive_nn(), AggressiveConfig::default());
    assert_batch_safe(
        &spec,
        |cfg| {
            cfg.comm = CommSetting::Lost;
            cfg.noise = SensorNoise::uniform(4.8); // worst point of Fig. 5e
        },
        40,
        "ultimate/lost",
    );
}

#[test]
fn compound_is_safe_with_extreme_transmission_periods() {
    let spec = StackSpec::basic(common::conservative_nn());
    assert_batch_safe(
        &spec,
        |cfg| {
            cfg.dt_m = 1.0; // worst point of Fig. 5a
            cfg.dt_s = 1.0;
            cfg.comm = CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.25,
            };
        },
        30,
        "basic/slow-comm",
    );
}

#[test]
fn compound_is_safe_with_tiny_aggressive_buffers() {
    // Zero buffers make the aggressive window maximally optimistic; the
    // monitor must still hold the line.
    let spec = StackSpec::ultimate(common::aggressive_nn(), AggressiveConfig::new(0.0, 0.0));
    assert_batch_safe(
        &spec,
        |cfg| {
            cfg.comm = CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.75,
            };
        },
        40,
        "ultimate/zero-buffers",
    );
}

/// The guarantee is planner-agnostic: a hand-written hostile planner that
/// always floors it must also be contained (cf. `examples/custom_planner`).
#[test]
fn shield_contains_a_hostile_planner() {
    struct Hostile;
    impl Planner for Hostile {
        fn plan(&mut self, _obs: &Observation) -> f64 {
            f64::MAX
        }
    }

    for seed in 0..30u64 {
        let cfg = EpisodeConfig::paper_default(seed);
        let scenario = cfg.scenario().expect("valid scenario");
        let ego_limits = scenario.ego_limits();
        let other_limits = scenario.other_limits();
        let mut compound = CompoundPlanner::basic(scenario, Hostile);
        let mut estimator = InformationFilter::new(
            other_limits,
            cfg.noise,
            FilterMode::HardOnly,
            Prior::exact(0.0, 0.0, cfg.other_init_speed),
        );
        let mut ego = cfg.ego_init;
        let mut other = VehicleState::new(0.0, cfg.other_init_speed, 0.0);
        let mut sensor = UniformNoiseSensor::new(cfg.noise, cfg.seed_sensor());
        let mut rng = cv_rng::SplitMix64::seed_from_u64(cfg.seed_driving());
        for step in 0..(cfg.horizon / cfg.dt_c) as u64 {
            use cv_rng::Rng as _;
            let t = step as f64 * cfg.dt_c;
            if step % 2 == 0 {
                estimator.on_measurement(&sensor.measure(1, t, &other));
            }
            assert!(
                !compound.scenario().collision(&ego, &other),
                "hostile planner broke through with seed {seed} at t = {t:.2}"
            );
            if compound.scenario().target_reached(t, &ego) {
                break;
            }
            let d = compound.plan(t, &ego, &estimator.estimate(t));
            ego = ego_limits.step(&ego, d.accel, cfg.dt_c);
            let a1 = rng.random_range(other_limits.a_min()..=other_limits.a_max());
            other = other_limits.step(&other, a1, cfg.dt_c);
        }
    }
}
