//! Miniature end-to-end reproduction of the qualitative structure of the
//! paper's Tables I and II: orderings only, small Monte-Carlo sizes.

mod common;

use safe_cv::prelude::*;
use safe_cv::sim::{run_batch, BatchConfig, BatchSummary};

fn summary(spec: &StackSpec, mutate: impl Fn(&mut EpisodeConfig), episodes: usize) -> BatchSummary {
    let mut template = EpisodeConfig::paper_default(900);
    mutate(&mut template);
    let batch = BatchConfig::new(template, episodes);
    BatchSummary::from_results(&run_batch(&batch, spec).expect("valid batch"))
}

#[test]
fn table1_shape_conservative_family() {
    let nn = common::conservative_nn();
    let set = |cfg: &mut EpisodeConfig| {
        cfg.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.25,
        };
    };
    let pure = summary(
        &StackSpec::PureNn {
            planner: nn.clone(),
            window: WindowKind::Conservative,
        },
        set,
        40,
    );
    let basic = summary(&StackSpec::basic(nn.clone()), set, 40);
    let ultimate = summary(
        &StackSpec::ultimate(nn, AggressiveConfig::default()),
        set,
        40,
    );
    // Everyone is safe in the conservative family...
    assert_eq!(pure.safe_rate, 1.0);
    assert_eq!(basic.safe_rate, 1.0);
    assert_eq!(ultimate.safe_rate, 1.0);
    // ...but the ultimate planner is the fastest (Table I's headline).
    // With the smoke-trained planner the pure-NN margin is noise-level, so
    // allow a small tolerance there; against its shielded sibling (basic)
    // the aggressive window must win outright.
    assert!(
        ultimate.reaching_time < pure.reaching_time + 0.1,
        "ultimate {} vs pure {}",
        ultimate.reaching_time,
        pure.reaching_time
    );
    assert!(
        ultimate.reaching_time < basic.reaching_time,
        "ultimate {} vs basic {}",
        ultimate.reaching_time,
        basic.reaching_time
    );
}

#[test]
fn table2_shape_aggressive_family() {
    let nn = common::aggressive_nn();
    let set = |cfg: &mut EpisodeConfig| {
        cfg.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.25,
        };
    };
    let pure = summary(
        &StackSpec::PureNn {
            planner: nn.clone(),
            window: WindowKind::Nominal,
        },
        set,
        60,
    );
    let basic = summary(&StackSpec::basic(nn.clone()), set, 60);
    let ultimate = summary(
        &StackSpec::ultimate(nn, AggressiveConfig::default()),
        set,
        60,
    );
    // The pure aggressive planner is fast but collides (Table II row 1).
    assert!(pure.safe_rate < 1.0, "pure aggressive should collide");
    // The pure planner ignores the shield entirely, so it can only be
    // noise-level slower than the shielded ultimate planner, never
    // structurally slower.
    assert!(
        pure.reaching_time < ultimate.reaching_time + 0.1,
        "pure {} vs ultimate {}",
        pure.reaching_time,
        ultimate.reaching_time
    );
    // Both compound planners restore 100% safety.
    assert_eq!(basic.safe_rate, 1.0);
    assert_eq!(ultimate.safe_rate, 1.0);
    // Mean η: both compound planners clearly beat the unsafe pure planner.
    // Between themselves, ultimate's aggressive window buys reaching speed,
    // not η, so at this Monte-Carlo size their η gap is noise-level.
    assert!(
        ultimate.eta_mean >= basic.eta_mean - 0.05,
        "ultimate η {} vs basic η {}",
        ultimate.eta_mean,
        basic.eta_mean
    );
    assert!(
        basic.eta_mean > pure.eta_mean,
        "basic η {} vs pure η {}",
        basic.eta_mean,
        pure.eta_mean
    );
}

#[test]
fn disturbance_monotonically_slows_the_basic_planner() {
    // Fig. 5c's trend, at three points.
    let nn = common::conservative_nn();
    let spec = StackSpec::basic(nn);
    let reach_at = |p_d: f64| {
        summary(
            &spec,
            |cfg| {
                cfg.comm = CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: p_d,
                };
            },
            40,
        )
        .reaching_time
    };
    let r0 = reach_at(0.0);
    let r5 = reach_at(0.5);
    let r9 = reach_at(0.9);
    assert!(r0 <= r5 + 0.05, "{r0} vs {r5}");
    assert!(r5 <= r9 + 0.05, "{r5} vs {r9}");
}
