//! Integration contract tests for the event-driven episode engine
//! (`cv_sim::events`, `BatchMode::EventDriven`, DESIGN.md §18).
//!
//! The unit tests in `cv-sim` pin the mechanics (arrival-tick
//! integerisation, workspace reuse, per-channel scheduling); here the
//! *engine contract* is exercised at full-stack scale:
//!
//! * **Bit-identity matrix** — whenever every cadence divides the control
//!   step (the repo default), an event-driven batch must reproduce the
//!   fixed-step oracle bit for bit, across seeds, worker counts, and
//!   planner stacks (teacher conservative, teacher aggressive under
//!   delay/drop disturbance, an n = 4 platoon with one lost V2V channel,
//!   and the pure-NN stack).
//! * **Event-ordering determinism** — simultaneous events resolve in the
//!   documented, seed-independent priority order (per tick and pair:
//!   arrivals in send order, then the sensor read, then the tick-wide
//!   control decision; pairs in index order). The order is observable
//!   through the estimates the planner sees, so bit-identity against the
//!   fixed-step loop *at delays that force tick collisions* is the
//!   sharpest available probe; re-run and cross-thread identity pin that
//!   the wheel never falls back on allocation order or timing.
//! * **Sparse-disturbance soak** (`#[ignore]`, `scripts/soak.sh`) — the
//!   long-horizon platoon workload the engine exists for, at soak scale.

use safe_cv::comm::CommSetting;
use safe_cv::nn::{Activation, Mlp};
use safe_cv::planner::{FeatureScaling, NnPlanner};
use safe_cv::sim::{
    run_batch_lanes, run_batch_supervised, BatchConfig, BatchMode, EpisodeConfig, EpisodeResult,
    PlatoonFollower, PlatoonSpec, StackSpec, WindowKind,
};

/// Strict per-episode fingerprint: `to_bits` on η so `-0.0`/NaN sloppiness
/// can never hide behind float `==`.
fn bits(r: &EpisodeResult) -> (u64, String, u64, u64, Option<usize>) {
    (
        r.eta.to_bits(),
        format!("{:?}", r.outcome),
        r.emergency_steps,
        r.total_steps,
        r.collided_pair,
    )
}

fn fixed_results(batch: &BatchConfig, spec: &StackSpec) -> Vec<EpisodeResult> {
    run_batch_supervised(batch, spec, None, None)
        .expect("fixed-step batch must run")
        .into_results()
        .expect("fixed-step episodes must complete")
}

fn event_results(batch: &BatchConfig, spec: &StackSpec) -> Vec<EpisodeResult> {
    run_batch_lanes(batch, spec, BatchMode::EventDriven, None, None)
        .expect("event-driven batch must run")
        .into_results()
        .expect("event-driven episodes must complete")
}

fn assert_bit_identical(batch: &BatchConfig, spec: &StackSpec, ctx: &str) {
    let fixed = fixed_results(batch, spec);
    let event = event_results(batch, spec);
    assert_eq!(fixed.len(), event.len(), "{ctx}: episode count diverged");
    for (i, (f, e)) in fixed.iter().zip(&event).enumerate() {
        assert_eq!(bits(f), bits(e), "{ctx}: episode {i} diverged");
    }
}

/// An untrained case-study-shaped NN planner: for engine identity only the
/// forward pass matters, not the weights.
fn untrained_nn(seed: u64) -> NnPlanner {
    let template = EpisodeConfig::paper_default(seed);
    let ego_limits = template.scenario().expect("paper geometry").ego_limits();
    let net = Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, seed)
        .expect("case-study shape");
    NnPlanner::new(
        net,
        ego_limits,
        FeatureScaling::left_turn(),
        "event-test-nn",
    )
}

/// An n = 4 platoon whose first follower's V2V channel is lost — the mixed
/// case where one pair can only retire through sensing while its
/// neighbours keep scheduling arrivals.
fn platoon_n4_one_lost(seed: u64) -> EpisodeConfig {
    let mut platoon = PlatoonSpec::paper_default(4, seed).expect("n >= 2");
    platoon.followers[0].comm = Some(CommSetting::Lost);
    platoon.episode()
}

/// The stacks of the bit-identity matrix.
fn matrix_stacks(seed: u64) -> Vec<(&'static str, EpisodeConfig, StackSpec)> {
    let cons_template = EpisodeConfig::paper_default(seed);
    let cons = StackSpec::pure_teacher_conservative(&cons_template).expect("paper geometry");
    let mut aggr_template = EpisodeConfig::paper_default(seed);
    aggr_template.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.5,
    };
    let aggr = StackSpec::pure_teacher_aggressive(&aggr_template).expect("paper geometry");
    let platoon_template = platoon_n4_one_lost(seed);
    let platoon = StackSpec::pure_teacher_conservative(&platoon_template).expect("paper geometry");
    let nn_template = EpisodeConfig::paper_default(seed);
    let nn = StackSpec::PureNn {
        planner: untrained_nn(seed),
        window: WindowKind::Conservative,
    };
    vec![
        ("teacher-cons", cons_template, cons),
        ("teacher-aggr/delayed", aggr_template, aggr),
        ("platoon-n4/one-lost", platoon_template, platoon),
        ("nn-pure", nn_template, nn),
    ]
}

#[test]
fn bit_identity_matrix_across_seeds_threads_and_stacks() {
    for &seed in &[3u64, 17, 101, 4242] {
        for (name, template, spec) in matrix_stacks(seed) {
            let mut batch = BatchConfig::new(template, 10);
            for threads in [1usize, 2] {
                batch.threads = threads;
                assert_bit_identical(&batch, &spec, &format!("{name} seed {seed} x{threads}"));
            }
        }
    }
}

#[test]
fn event_execution_is_identical_across_thread_counts_and_reruns() {
    let mut platoon = PlatoonSpec::paper_default(4, 7).expect("n >= 2");
    platoon.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.5,
    };
    let template = platoon.episode();
    let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
    let mut batch = BatchConfig::new(template, 16);
    batch.threads = 1;
    let reference = event_results(&batch, &spec);
    for threads in [1usize, 2, 4] {
        batch.threads = threads;
        for rerun in 0..2 {
            let again = event_results(&batch, &spec);
            assert_eq!(reference.len(), again.len());
            for (i, (a, b)) in reference.iter().zip(&again).enumerate() {
                assert_eq!(
                    bits(a),
                    bits(b),
                    "episode {i} diverged at {threads} threads, rerun {rerun}"
                );
            }
        }
    }
}

#[test]
fn simultaneous_events_resolve_in_the_documented_order() {
    // Delays chosen to force tick collisions on the wheel: 0.0 lands every
    // arrival on its own send tick (arrival/broadcast/sensor all
    // simultaneous), 0.1 and 0.2 land arrivals exactly on later broadcast
    // ticks, so with three conflicting vehicles each collision tick holds
    // several same-tick events per pair and across pairs. `drop_prob: 0.0`
    // keeps every message in play. The documented priority order
    // (arrivals in send order, then sensing, then the control decision;
    // pairs in index order) is exactly the fixed-step loop's implicit
    // order, so bit-identity under forced collisions is the ordering
    // check — any deviation (heap pop order, pair iteration, stamp
    // handling) moves an estimator update across a planner read and
    // changes some episode's bits.
    for delay in [0.0, 0.1, 0.2] {
        let mut platoon = PlatoonSpec::paper_default(4, 11).expect("n >= 2");
        platoon.comm = CommSetting::Delayed {
            delay,
            drop_prob: 0.0,
        };
        let template = platoon.episode();
        let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
        let mut batch = BatchConfig::new(template, 8);
        batch.threads = 2;
        assert_bit_identical(&batch, &spec, &format!("delay {delay}"));
    }
}

/// The sparse-disturbance n = 8 platoon of the throughput benchmark: ego
/// far upstream, leader at the zone's edge, all channels lost — every pair
/// retires in the first quarter of a long approach episode.
fn sparse_platoon(seed: u64) -> EpisodeConfig {
    let mut platoon = PlatoonSpec::paper_default(8, seed).expect("n >= 2");
    platoon.leader_start_shared = 16.0;
    platoon.comm = CommSetting::Lost;
    for f in &mut platoon.followers {
        *f = PlatoonFollower {
            gap: 6.0,
            ..PlatoonFollower::paper_default()
        };
    }
    let mut cfg = platoon.episode();
    cfg.ego_init.position = -150.0;
    cfg
}

#[test]
#[ignore = "long-horizon sparse-disturbance soak; run via scripts/soak.sh"]
fn sparse_disturbance_soak_stays_bit_identical() {
    let episodes: usize = std::env::var("CV_SOAK_EVENT_EPISODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    // Lost channels (the sparsest disturbance) and a heavy delay/drop
    // channel (arrivals rare and late): both spend most of each long
    // episode with every pair quiescent.
    for (name, comm) in [
        ("lost", CommSetting::Lost),
        (
            "delayed-0.5-0.9",
            CommSetting::Delayed {
                delay: 0.5,
                drop_prob: 0.9,
            },
        ),
    ] {
        for &seed in &[1u64, 77] {
            let mut template = sparse_platoon(seed);
            template.comm = comm;
            let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
            let mut batch = BatchConfig::new(template, episodes);
            // Keep the early-retirement geometry: the default start grid
            // would move the leader back to 50.5–60 m.
            batch.starts = (0..20).map(|j| 16.0 + 0.25 * j as f64).collect();
            for threads in [2usize, 4] {
                batch.threads = threads;
                assert_bit_identical(&batch, &spec, &format!("soak {name} seed {seed}"));
            }
            println!("soak cell {name} seed {seed}: {episodes} episodes bit-identical");
        }
    }
}
