//! The offline shield verifier across non-default scenario geometries: the
//! safety obligations must hold for any valid parameterisation, not just the
//! paper's.

use safe_cv::dynamics::VehicleLimits;
use safe_cv::left_turn::verify::{check_invariants, VerifyGrid};
use safe_cv::left_turn::{Geometry, LeftTurnScenario};

fn verify(scenario: &LeftTurnScenario) {
    let report = check_invariants(scenario, &VerifyGrid::coarse());
    assert!(report.is_clean(), "{report}");
    assert!(report.states_checked > 500);
}

#[test]
fn wider_conflict_zone_verifies() {
    let scenario = LeftTurnScenario::new(
        Geometry {
            p_f: 2.0,
            p_b: 28.0,
        },
        VehicleLimits::new(0.0, 12.0, -6.0, 3.0).expect("valid limits"),
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits"),
        60.0,
        0.05,
    )
    .expect("valid scenario");
    verify(&scenario);
}

#[test]
fn weak_brakes_verify() {
    // Much weaker braking shifts every set boundary; the obligations are
    // parameter-relative and must still hold.
    let scenario = LeftTurnScenario::new(
        Geometry::paper(),
        VehicleLimits::new(0.0, 12.0, -2.5, 2.0).expect("valid limits"),
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits"),
        52.0,
        0.05,
    )
    .expect("valid scenario");
    verify(&scenario);
}

#[test]
fn coarse_control_period_verifies() {
    // A 5x longer control period widens the boundary band accordingly.
    let scenario = LeftTurnScenario::new(
        Geometry::paper(),
        VehicleLimits::new(0.0, 12.0, -6.0, 3.0).expect("valid limits"),
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits"),
        52.0,
        0.25,
    )
    .expect("valid scenario");
    verify(&scenario);
}

#[test]
fn fast_oncoming_traffic_verifies() {
    let scenario = LeftTurnScenario::new(
        Geometry::paper(),
        VehicleLimits::new(0.0, 12.0, -6.0, 3.0).expect("valid limits"),
        VehicleLimits::new(8.0, 25.0, -5.0, 5.0).expect("valid limits"),
        80.0,
        0.05,
    )
    .expect("valid scenario");
    verify(&scenario);
}
