//! Integration-level contract tests for lane-batched execution
//! (`cv_sim::run_batch_lanes`, DESIGN.md §15).
//!
//! The unit tests in `cv-sim` pin the mechanics (mode validation, refill,
//! rescue, panic isolation); here the *numeric contract* is exercised at
//! full-stack scale: for every lane width `K ∈ {1, 2, 4, 8}`, worker count,
//! and planner stack of the paper (unshielded pure NN, basic `κ_cb`,
//! ultimate `κ_cu`), a lane-batched batch must match the per-episode
//! reference — bit-identically for `K = 1`, within the per-field tolerance
//! gate (`lane_tolerance_check`) for `K > 1`.

mod common;

use safe_cv::shield::AggressiveConfig;
use safe_cv::sim::{
    lane_tolerance_check, run_batch_lanes, run_batch_supervised, BatchConfig, BatchMode,
    EpisodeConfig, EpisodeResult, StackSpec, WindowKind,
};

/// The three NN-embedding stacks of the paper's case study.
fn stacks() -> Vec<(&'static str, StackSpec)> {
    vec![
        (
            "pure-nn",
            StackSpec::PureNn {
                planner: common::conservative_nn(),
                window: WindowKind::Conservative,
            },
        ),
        ("basic", StackSpec::basic(common::conservative_nn())),
        (
            "ultimate",
            StackSpec::ultimate(common::conservative_nn(), AggressiveConfig::default()),
        ),
    ]
}

fn reference_results(batch: &BatchConfig, spec: &StackSpec) -> Vec<EpisodeResult> {
    run_batch_supervised(batch, spec, None, None)
        .expect("reference batch must run")
        .into_results()
        .expect("reference episodes must complete")
}

#[test]
fn tolerance_matrix_holds_across_k_threads_and_stacks() {
    const EPISODES: usize = 12;
    for (name, spec) in stacks() {
        let template = EpisodeConfig::paper_default(29);
        let mut batch = BatchConfig::new(template, EPISODES);
        batch.threads = 1;
        let reference = reference_results(&batch, &spec);
        for threads in [1usize, 3] {
            batch.threads = threads;
            for k in [1usize, 2, 4, 8] {
                let results = run_batch_lanes(&batch, &spec, BatchMode::Lanes(k), None, None)
                    .expect("lane batch must run")
                    .into_results()
                    .expect("lane episodes must complete");
                assert_eq!(results.len(), reference.len());
                if k == 1 {
                    // Lanes(1) routes through the exact per-sample kernel:
                    // bit-identical, independent of worker count.
                    assert_eq!(
                        results, reference,
                        "[{name}] Lanes(1) diverged at {threads} threads"
                    );
                } else {
                    for (i, (r, b)) in reference.iter().zip(&results).enumerate() {
                        lane_tolerance_check(r, b).unwrap_or_else(|e| {
                            panic!(
                                "[{name}] episode {i} out of tolerance \
                                 (K={k}, threads={threads}): {e}"
                            )
                        });
                    }
                }
            }
        }
    }
}

/// The lane-tolerance gate on an NN *platoon* stack: `n = 4` vehicles,
/// gap-tracking followers, and a per-vehicle channel override, across the
/// full `K × threads` matrix. `Lanes(1)` must stay bit-identical — the
/// platoon actuation path is shared between the per-episode loop and the
/// lane stepper, so any divergence is a real lockstep bug, not tolerance.
#[test]
fn platoon_tolerance_matrix_holds_across_k_and_threads() {
    const EPISODES: usize = 12;
    let mut platoon = safe_cv::sim::PlatoonSpec::paper_default(4, 43).expect("n = 4 is valid");
    platoon.comm = safe_cv::comm::CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    // One pair's channel diverges from the template: the per-vehicle
    // override must survive lane grouping too.
    platoon.followers[1].comm = Some(safe_cv::comm::CommSetting::NoDisturbance);
    let spec = StackSpec::ultimate(common::conservative_nn(), AggressiveConfig::default());
    let mut batch = BatchConfig::new(platoon.episode(), EPISODES);
    batch.threads = 1;
    let reference = reference_results(&batch, &spec);
    for threads in [1usize, 3] {
        batch.threads = threads;
        for k in [1usize, 2, 4, 8] {
            let results = run_batch_lanes(&batch, &spec, BatchMode::Lanes(k), None, None)
                .expect("platoon lane batch must run")
                .into_results()
                .expect("platoon lane episodes must complete");
            assert_eq!(results.len(), reference.len());
            if k == 1 {
                assert_eq!(
                    results, reference,
                    "platoon Lanes(1) diverged at {threads} threads"
                );
            } else {
                for (i, (r, b)) in reference.iter().zip(&results).enumerate() {
                    lane_tolerance_check(r, b).unwrap_or_else(|e| {
                        panic!(
                            "platoon episode {i} out of tolerance \
                             (K={k}, threads={threads}): {e}"
                        )
                    });
                }
            }
        }
    }
}

/// Early-exit refill: with more episodes than lanes and episodes retiring
/// at different times (per-seed noise spreads the outcome times), finished
/// lanes claim fresh episodes mid-flight while their neighbours keep
/// stepping. The partially-occupied rounds this produces must not leak
/// into the numerics of any co-resident episode.
#[test]
fn refill_after_early_exit_stays_within_tolerance() {
    const EPISODES: usize = 18;
    let spec = StackSpec::basic(common::aggressive_nn());
    let template = EpisodeConfig::paper_default(61);
    let mut batch = BatchConfig::new(template, EPISODES);
    batch.threads = 1;
    let reference = reference_results(&batch, &spec);

    // The premise of the test: the batch is genuinely imbalanced, so a
    // K=4 group must refill several times from lanes that retired early.
    let steps: Vec<u64> = reference.iter().map(|r| r.total_steps).collect();
    let (min, max) = (steps.iter().min().unwrap(), steps.iter().max().unwrap());
    assert!(
        min < max,
        "seed spread produced a perfectly balanced batch; pick another seed"
    );

    let results = run_batch_lanes(&batch, &spec, BatchMode::Lanes(4), None, None)
        .expect("lane batch must run")
        .into_results()
        .expect("lane episodes must complete");
    for (i, (r, b)) in reference.iter().zip(&results).enumerate() {
        lane_tolerance_check(r, b)
            .unwrap_or_else(|e| panic!("episode {i} out of tolerance after refill: {e}"));
    }
}
