//! Workspace-level property tests: the safety guarantee and estimator
//! soundness under randomly drawn disturbance parameters.

mod common;
use safe_cv::prelude::*;
use safe_cv::sim::run_episode;

cv_rng::props! {
    /// η(κ_c) ≥ 0 for the ultimate compound planner under arbitrary
    /// delay/drop/noise/start combinations.
    fn ultimate_compound_never_collides(
        cases = 24,
        seed in 0u64..10_000,
        drop_prob in 0.0..0.95f64,
        delay in 0.0..0.5f64,
        delta in 0.5..4.8f64,
        start_idx in 0usize..20,
    ) {
        let mut cfg = EpisodeConfig::paper_default(seed);
        cfg.comm = CommSetting::Delayed { delay, drop_prob };
        cfg.noise = SensorNoise::uniform(delta);
        cfg.other_start_shared = 50.5 + 0.5 * start_idx as f64;
        let spec = StackSpec::ultimate(common::aggressive_nn(), AggressiveConfig::default());
        let r = run_episode(&cfg, &spec, false).expect("valid episode");
        assert!(r.outcome.is_safe(), "collision: {:?}", r.outcome);
        assert!(r.eta >= 0.0);
    }

    /// Same guarantee with messages entirely lost and arbitrary sensing
    /// noise/periods.
    fn basic_compound_never_collides_on_sensing_alone(
        cases = 24,
        seed in 0u64..10_000,
        delta in 0.5..4.8f64,
        sense_steps in 1u64..10,
    ) {
        let mut cfg = EpisodeConfig::paper_default(seed);
        cfg.comm = CommSetting::Lost;
        cfg.noise = SensorNoise::uniform(delta);
        cfg.dt_s = 0.1 * sense_steps as f64;
        cfg.dt_m = cfg.dt_s;
        let spec = StackSpec::basic(common::aggressive_nn());
        let r = run_episode(&cfg, &spec, false).expect("valid episode");
        assert!(r.outcome.is_safe(), "collision: {:?}", r.outcome);
    }

    /// Episodes are exactly reproducible from their configuration.
    fn episodes_are_deterministic(cases = 24, seed in 0u64..1_000) {
        let cfg = EpisodeConfig::paper_default(seed);
        let spec = StackSpec::pure_teacher_conservative(&cfg).expect("valid scenario");
        let a = run_episode(&cfg, &spec, false).expect("episode a");
        let b = run_episode(&cfg, &spec, false).expect("episode b");
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.emergency_steps, b.emergency_steps);
        assert_eq!(a.total_steps, b.total_steps);
    }
}
