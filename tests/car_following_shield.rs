//! The shield on the second scenario: randomized lead behaviours must never
//! defeat the gap guarantee of the wrapped (reckless) cruise controller.

use car_following::{CarFollowingScenario, CruisePlanner};
use cv_rng::{Rng, SplitMix64};
use safe_cv::prelude::*;

/// Runs a shielded closed loop with a randomly driven lead; returns the
/// minimum gap observed (with perfect estimation — the estimation stack is
/// covered by the left-turn suites).
fn min_gap_shielded(seed: u64, ambush_at: Option<f64>, initial_gap: f64) -> f64 {
    let scenario = CarFollowingScenario::highway_default().expect("valid scenario");
    let ego_limits = scenario.ego_limits();
    let lead_limits = scenario.lead_limits();
    let dt = scenario.dt_c();
    let mut compound = CompoundPlanner::basic(scenario, CruisePlanner::reckless(&scenario));

    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut ego = VehicleState::new(0.0, 20.0, 0.0);
    let mut lead = VehicleState::new(initial_gap, rng.random_range(5.0..25.0), 0.0);
    let mut min_gap = lead.position - ego.position;
    for step in 0..4000u64 {
        let t = step as f64 * dt;
        min_gap = min_gap.min(lead.position - ego.position);
        if compound.scenario().target_reached(t, &ego) {
            break;
        }
        let est = VehicleEstimate::exact(t, lead);
        let accel = compound.plan(t, &ego, &est).accel;
        ego = ego_limits.step(&ego, accel, dt);
        let lead_accel = match ambush_at {
            Some(at) if t >= at => lead_limits.a_min(),
            _ => rng.random_range(lead_limits.a_min()..=lead_limits.a_max()),
        };
        lead = lead_limits.step(&lead, lead_accel, dt);
    }
    min_gap
}

cv_rng::props! {
    fn gap_holds_under_random_lead_driving(
        cases = 24,
        seed in 0u64..10_000,
        initial_gap in 40.0..120.0f64,
    ) {
        let g = min_gap_shielded(seed, None, initial_gap);
        assert!(g >= 5.0, "gap violated: {g}");
    }
    fn gap_holds_under_brake_ambush(
        cases = 24,
        seed in 0u64..10_000,
        ambush_at in 0.5..8.0f64,
        initial_gap in 40.0..120.0f64,
    ) {
        let g = min_gap_shielded(seed, Some(ambush_at), initial_gap);
        assert!(g >= 5.0, "gap violated: {g}");
    }
}

#[test]
fn adaptive_cruise_is_smoother_than_reckless_under_the_shield() {
    // Comfort comparison: the ACC engages the emergency planner far less
    // than the reckless controller (which relies on the shield for all of
    // its braking).
    let scenario = CarFollowingScenario::highway_default().expect("valid scenario");
    let ego_limits = scenario.ego_limits();
    let lead_limits = scenario.lead_limits();
    let dt = scenario.dt_c();
    let run = |planner: CruisePlanner| {
        let mut compound = CompoundPlanner::basic(scenario, planner);
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut ego = VehicleState::new(0.0, 20.0, 0.0);
        let mut lead = VehicleState::new(60.0, 15.0, 0.0);
        for step in 0..4000u64 {
            let t = step as f64 * dt;
            if compound.scenario().target_reached(t, &ego) {
                break;
            }
            let est = VehicleEstimate::exact(t, lead);
            let accel = compound.plan(t, &ego, &est).accel;
            ego = ego_limits.step(&ego, accel, dt);
            let a = rng.random_range(-1.0..1.0);
            lead = lead_limits.step(&lead, a, dt);
        }
        compound.stats().emergency_frequency()
    };
    let reckless = run(CruisePlanner::reckless(&scenario));
    let adaptive = run(CruisePlanner::adaptive(&scenario, 1.5));
    assert!(
        adaptive < reckless,
        "ACC {adaptive} should engage the shield less than reckless {reckless}"
    );
}
