#![allow(dead_code)] // each test binary uses a subset of these fixtures
//! Shared fixtures for the integration tests: smoke-trained NN planners,
//! cached per test binary.

use std::sync::OnceLock;

use safe_cv::planner::NnPlanner;
use safe_cv::sim::training::{train_planner, Personality, TrainSetup};

/// A medium training budget: enough fidelity for the qualitative table
/// orderings, still far cheaper than the full experiment setup.
pub fn medium_setup() -> TrainSetup {
    TrainSetup {
        rollout_episodes: 72,
        ..TrainSetup::default()
    }
}

/// A quickly trained conservative planner (cached per process).
pub fn conservative_nn() -> NnPlanner {
    static CELL: OnceLock<NnPlanner> = OnceLock::new();
    CELL.get_or_init(|| {
        train_planner(&medium_setup(), Personality::Conservative).expect("training must succeed")
    })
    .clone()
}

/// A quickly trained aggressive planner (cached per process).
pub fn aggressive_nn() -> NnPlanner {
    static CELL: OnceLock<NnPlanner> = OnceLock::new();
    CELL.get_or_init(|| {
        train_planner(&medium_setup(), Personality::Aggressive).expect("training must succeed")
    })
    .clone()
}
