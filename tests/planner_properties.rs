//! Property tests over the planner layer: every planner must emit only
//! admissible accelerations for arbitrary observations, and the NN output
//! mapping must be a clean bijection onto the actuation range.
use safe_cv::planner::{NnPlanner, TeacherPolicy};
use safe_cv::prelude::*;
use safe_cv::sim::training::{train_planner, Personality, TrainSetup};
use std::sync::OnceLock;

fn scenario() -> LeftTurnScenario {
    LeftTurnScenario::paper_default(52.0).expect("valid scenario")
}

fn nn() -> NnPlanner {
    static CELL: OnceLock<NnPlanner> = OnceLock::new();
    CELL.get_or_init(|| {
        train_planner(&TrainSetup::smoke(), Personality::Conservative).expect("training ok")
    })
    .clone()
}

fn obs(t: f64, p: f64, v: f64, window: Option<(f64, f64)>) -> Observation {
    Observation::new(
        t,
        VehicleState::new(p, v, 0.0),
        window.map(|(lo, hi)| Interval::new(t + lo.min(hi), t + hi)),
    )
}

cv_rng::props! {
    fn teachers_always_emit_admissible_accelerations(
        cases = 64,
        t in 0.0..20.0f64,
        p in -40.0..20.0f64,
        v in 0.0..12.0f64,
        lo in 0.0..15.0f64,
        len in 0.0..15.0f64,
        window_bit in 0u64..2,
    ) {
        let s = scenario();
        let lims = s.ego_limits();
        let o = obs(t, p, v, (window_bit == 1).then_some((lo, lo + len)));
        for mut teacher in [TeacherPolicy::conservative(&s), TeacherPolicy::aggressive(&s)] {
            let a = teacher.plan(&o);
            assert!(a.is_finite());
            assert!(a >= lims.a_min() - 1e-9 && a <= lims.a_max() + 1e-9, "{a}");
        }
    }
    fn nn_planner_always_emits_admissible_accelerations(
        cases = 64,
        t in 0.0..20.0f64,
        p in -40.0..20.0f64,
        v in 0.0..12.0f64,
        lo in 0.0..15.0f64,
        len in 0.0..15.0f64,
        window_bit in 0u64..2,
    ) {
        let s = scenario();
        let lims = s.ego_limits();
        let mut planner = nn();
        let a = planner.plan(&obs(t, p, v, (window_bit == 1).then_some((lo, lo + len))));
        assert!(a.is_finite());
        assert!(a >= lims.a_min() - 1e-9 && a <= lims.a_max() + 1e-9, "{a}");
    }
    fn accel_output_mapping_roundtrips(cases = 64, a in -6.0..3.0f64) {
        let lims = scenario().ego_limits();
        let planner = nn();
        let y = NnPlanner::accel_to_output(&lims, a);
        assert!((-1.0..=1.0).contains(&y));
        assert!((planner.output_to_accel(y) - a).abs() < 1e-9);
    }
    fn emergency_accel_is_always_admissible(
        cases = 64,
        t in 0.0..20.0f64,
        p in -40.0..20.0f64,
        v in 0.0..12.0f64,
        lo in 0.0..15.0f64,
        len in 0.0..15.0f64,
    ) {
        let s = scenario();
        let lims = s.ego_limits();
        let ego = VehicleState::new(p, v, 0.0);
        let w = Some(Interval::new(t + lo.min(lo + len), t + lo + len));
        let a = s.emergency_accel(t, &ego, w);
        assert!(a.is_finite());
        assert!(a >= lims.a_min() - 1e-9 && a <= lims.a_max() + 1e-9, "{a}");
    }
}
