//! Counting-allocator proof of the zero-allocation NN hot paths.
//!
//! A `#[global_allocator]` wrapper (used only in this test binary) counts
//! every heap allocation, so the assertions below are exact: `predict_into`
//! and the planner's per-step `plan` call perform *zero* allocations in the
//! steady state, and a warmed episode loop allocates only a small
//! per-episode constant (the estimator boxes rebuilt by `StackSpec::reinit`)
//! — never per step. See DESIGN.md §13.
//!
//! Everything lives in one `#[test]` so the default parallel test harness
//! cannot pollute the counter from another test's thread. The harness's own
//! bookkeeping thread can still allocate at arbitrary moments, so each
//! measurement takes the *minimum* over several attempts: background noise
//! only ever adds counts, so a minimum of zero is a sound proof that the
//! measured path allocates nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cv_dynamics::{VehicleLimits, VehicleState};
use cv_estimation::Interval;
use cv_nn::{Activation, BatchScratch, Matrix, Mlp, MlpScratch, LANE_WIDTH};
use cv_planner::{FeatureScaling, NnPlanner};
use cv_sim::{run_batch_lanes, BatchConfig, BatchMode, EpisodeConfig, EpisodeWorkspace, StackSpec};
use safe_shield::{Observation, Planner};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counter is a relaxed
// atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// Runs `f` and returns how many heap allocations it performed.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = allocs();
    f();
    allocs() - before
}

/// Minimum allocation count of `f` over `attempts` runs — immune to
/// unrelated allocations from the test harness's bookkeeping thread.
fn min_allocs(attempts: usize, mut f: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| count_allocs(&mut f))
        .min()
        .expect("at least one attempt")
}

fn case_study_net() -> Mlp {
    // The case-study planner shape: 5 scenario features -> [32, 32] -> 1.
    Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, 7).unwrap()
}

#[test]
fn nn_hot_paths_are_allocation_free() {
    // --- predict_into: exactly zero allocations per call once warm. ---
    let net = case_study_net();
    let mut scratch = MlpScratch::for_net(&net);
    let input = [0.2, -0.4, 0.1, 0.8, -0.3];
    let mut out = [0.0];
    net.predict_into(&input, &mut scratch, &mut out).unwrap();
    let n = min_allocs(5, || {
        for _ in 0..100 {
            net.predict_into(&input, &mut scratch, &mut out).unwrap();
        }
    });
    assert_eq!(n, 0, "predict_into allocated {n} times in 100 calls");

    // --- NnPlanner::plan: the per-step planner call is alloc-free. ---
    let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap();
    let mut planner = NnPlanner::new(net, limits, FeatureScaling::left_turn(), "alloc-guard");
    let obs = Observation::new(
        1.5,
        VehicleState::new(-28.0, 7.5, 0.0),
        Some(Interval::new(2.0, 5.0)),
    );
    let _ = planner.plan(&obs);
    let n = min_allocs(5, || {
        for _ in 0..100 {
            let _ = planner.plan(&obs);
        }
    });
    assert_eq!(n, 0, "NnPlanner::plan allocated {n} times in 100 calls");

    // --- Steady-state episode loop through the full NN planner stack. ---
    // A warmed workspace may allocate a small per-episode constant (the
    // estimator boxes `StackSpec::reinit` rebuilds) but nothing per step:
    // a warmed run's allocation count must stay far below one per step.
    let cfg = EpisodeConfig::paper_default(42);
    let spec = StackSpec::basic(planner);
    let mut ws = EpisodeWorkspace::new(spec);
    let reference = ws.run(&cfg, false).unwrap(); // cold run grows every buffer
    ws.run(&cfg, false).unwrap(); // warm run settles capacities
    let mut last = None;
    let per_episode = min_allocs(4, || {
        last = Some(ws.run(&cfg, false).unwrap());
    });
    let result = last.unwrap();
    assert_eq!(result, reference, "warmed runs must be bit-identical");
    assert!(result.total_steps >= 50, "episode too short to be a proof");
    assert!(
        per_episode <= 8,
        "per-episode allocation count {per_episode} exceeds the reinit \
         constant (total steps: {}) — something allocates per step",
        result.total_steps
    );

    // --- forward_batch_into: exactly zero allocations once warm. ---
    // The lane-batched forward is the per-round kernel of `run_batch_lanes`;
    // with the plan and slabs pre-built it must never touch the heap.
    let net = case_study_net();
    let plan = net.lane_plan();
    let mut batch_scratch = BatchScratch::for_net(&net);
    let input = Matrix::zeros(net.input_dim(), LANE_WIDTH);
    let mut lanes_out = Matrix::zeros(net.output_dim(), LANE_WIDTH);
    net.forward_batch_into(&plan, &input, &mut batch_scratch, &mut lanes_out)
        .unwrap();
    let n = min_allocs(5, || {
        for _ in 0..100 {
            net.forward_batch_into(&plan, &input, &mut batch_scratch, &mut lanes_out)
                .unwrap();
        }
    });
    assert_eq!(n, 0, "forward_batch_into allocated {n} times in 100 calls");

    // --- Lane-batched step loop: allocations scale per episode, not per
    // step. `run_batch_lanes` builds a fresh lane group per call (O(K)
    // setup) and each episode arm rebuilds the estimator boxes (the same
    // reinit constant as above), so the whole call cannot be zero. The
    // sound proof is differential: growing the batch must grow the count by
    // at most a small per-episode constant — hundreds of steps per episode
    // would otherwise add hundreds of counts each.
    let lane_planner = NnPlanner::new(
        case_study_net(),
        limits,
        FeatureScaling::left_turn(),
        "alloc-guard-lanes",
    );
    let spec = StackSpec::basic(lane_planner);
    let run_lanes = |episodes: usize| {
        let mut batch = BatchConfig::new(EpisodeConfig::paper_default(42), episodes);
        batch.threads = 1;
        min_allocs(3, || {
            run_batch_lanes(&batch, &spec, BatchMode::Lanes(4), None, None)
                .unwrap()
                .into_results()
                .unwrap();
        })
    };
    let small = run_lanes(8);
    let large = run_lanes(24);
    let growth = large.saturating_sub(small);
    assert!(
        growth <= 12 * (24 - 8),
        "lane batch of 24 episodes allocated {growth} more than a batch of 8 \
         (small: {small}, large: {large}) — something allocates per step"
    );
}
