//! Bit-identity matrix for the dynamic batch scheduler and the reusable
//! episode workspace.
//!
//! The engine overhaul (claim-by-index scheduling, per-worker retained
//! [`EpisodeWorkspace`]s, transpose-free backprop kernels) is only valid if
//! results stay bit-identical to the original fresh-state serial path. This
//! suite pins that contract end to end:
//!
//! 1. a reused workspace reproduces `run_episode` exactly, traces included;
//! 2. `run_batch` (dynamic) over the full paper start grid matches
//!    `run_batch_static` (the pre-overhaul chunked baseline) for every
//!    thread count in {1, 2, 4, 8};
//! 3. the server's sharded execution reports the same summary statistics as
//!    the library batch runner, for 1 and 4 workers.

use std::sync::atomic::AtomicBool;

use cv_server::{run_sharded, JobLimits, JobOutcome};
use safe_cv::prelude::*;
use safe_cv::sim::{
    run_batch, run_batch_static, run_episode, BatchConfig, BatchSummary, EpisodeWorkspace,
};

fn disturbed_template(seed: u64) -> EpisodeConfig {
    let mut cfg = EpisodeConfig::paper_default(seed);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.5,
    };
    cfg
}

/// A reused workspace must reproduce the one-shot entry point exactly,
/// including the full per-step traces, across episodes with different
/// seeds, starts, and comm settings (so every retained buffer is re-armed
/// in between).
#[test]
fn reused_workspace_matches_fresh_episodes_with_traces() {
    let template = disturbed_template(41);
    let spec = StackSpec::pure_teacher_aggressive(&template).expect("paper geometry");
    let mut ws = EpisodeWorkspace::new(spec.clone());
    for (i, start) in [50.5, 53.0, 58.5, 50.5].into_iter().enumerate() {
        let mut cfg = template.clone();
        cfg.seed = 41 + i as u64;
        cfg.other_start_shared = start;
        if i == 2 {
            cfg.comm = CommSetting::NoDisturbance; // force a channel rebuild
        }
        let fresh = run_episode(&cfg, &spec, true).expect("valid episode");
        let reused = ws.run(&cfg, true).expect("valid episode");
        assert_eq!(fresh, reused, "episode {i} diverged (start {start})");
        assert!(fresh.traces.is_some(), "traces were requested");
    }
}

/// Dynamic claim-by-index scheduling must be invisible in the results: the
/// full paper start grid, every thread count, both teacher stacks, compared
/// against the static-chunking baseline and against single-threaded runs.
#[test]
fn batch_results_identical_across_schedulers_and_thread_counts() {
    let template = disturbed_template(7);
    let grid = EpisodeConfig::paper_start_grid();
    for spec in [
        StackSpec::pure_teacher_conservative(&template).expect("paper geometry"),
        StackSpec::pure_teacher_aggressive(&template).expect("paper geometry"),
    ] {
        let mut batch = BatchConfig::new(template.clone(), 2 * grid.len());
        batch.threads = 1;
        let reference = run_batch(&batch, &spec).expect("valid batch");
        for threads in [1usize, 2, 4, 8] {
            batch.threads = threads;
            let dynamic = run_batch(&batch, &spec).expect("valid batch");
            let static_ = run_batch_static(&batch, &spec).expect("valid batch");
            assert_eq!(reference, dynamic, "dynamic @ {threads} threads");
            assert_eq!(reference, static_, "static @ {threads} threads");
        }
    }
}

/// The server's sharded worker pool sits on the same scheduler; its summary
/// must agree with the library runner for any worker count.
#[test]
fn sharded_server_summary_matches_run_batch() {
    let template = disturbed_template(19);
    let spec = StackSpec::pure_teacher_aggressive(&template).expect("paper geometry");
    let batch = BatchConfig::new(template, 12);
    let expected = BatchSummary::from_results(&run_batch(&batch, &spec).expect("valid batch"));
    for workers in [1usize, 4] {
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(
            &batch,
            &spec,
            JobLimits::new(workers),
            &cancel,
            None,
            |_| {},
        );
        match outcome {
            JobOutcome::Completed(summary) => assert!(
                summary.stats_eq(&expected),
                "sharded summary diverged at {workers} workers"
            ),
            other => panic!("sharded run did not complete: {other:?}"),
        }
    }
}
