//! Multi-vehicle extension tests: the safety guarantee must hold against
//! arbitrary platoons, and the merged-window planning must behave sensibly.

mod common;

use safe_cv::prelude::*;
use safe_cv::sim::{run_episode, DriverModel, ExtraVehicle};

fn platoon_cfg(seed: u64, gaps: &[f64]) -> EpisodeConfig {
    let mut cfg = EpisodeConfig::paper_default(seed);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    let mut pos = cfg.other_start_shared;
    cfg.extra_others = gaps
        .iter()
        .map(|gap| {
            pos += gap;
            ExtraVehicle::new(pos, 10.0, DriverModel::UniformRandom)
        })
        .collect();
    cfg
}

#[test]
fn shield_holds_for_two_vehicle_platoons() {
    let spec = StackSpec::ultimate(common::aggressive_nn(), AggressiveConfig::default());
    for seed in 0..25u64 {
        let cfg = platoon_cfg(seed, &[9.0]);
        let r = run_episode(&cfg, &spec, false).expect("valid episode");
        assert!(r.outcome.is_safe(), "seed {seed}: {:?}", r.outcome);
    }
}

#[test]
fn shield_holds_for_three_vehicle_platoons_with_mixed_drivers() {
    let spec = StackSpec::basic(common::aggressive_nn());
    for seed in 0..20u64 {
        let mut cfg = platoon_cfg(seed, &[8.0, 25.0]);
        cfg.extra_others[0].driver = DriverModel::Ambush { brake_at: 2.5 };
        cfg.extra_others[1].driver = DriverModel::OrnsteinUhlenbeck {
            theta: 0.5,
            sigma: 1.5,
        };
        let r = run_episode(&cfg, &spec, false).expect("valid episode");
        assert!(r.outcome.is_safe(), "seed {seed}: {:?}", r.outcome);
    }
}

#[test]
fn denser_traffic_never_speeds_up_the_crossing_on_average() {
    // Per-episode strict monotonicity is not guaranteed (the merged window
    // changes the NN's pacing profile nonlinearly), but waiting for a
    // trailing second car must cost time in the mean and can only beat the
    // single-car twin by pacing noise.
    let spec = StackSpec::ultimate(common::conservative_nn(), AggressiveConfig::default());
    let mut single_sum = 0.0;
    let mut platoon_sum = 0.0;
    let mut compared = 0;
    for seed in 0..10u64 {
        let single = run_episode(&platoon_cfg(seed, &[]), &spec, false).expect("episode");
        let platoon = run_episode(&platoon_cfg(seed, &[9.0]), &spec, false).expect("episode");
        assert!(platoon.outcome.is_safe());
        if let (Some(t1), Some(t2)) = (
            single.outcome.reaching_time(),
            platoon.outcome.reaching_time(),
        ) {
            compared += 1;
            single_sum += t1;
            platoon_sum += t2;
            assert!(
                t2 + 0.5 >= t1,
                "seed {seed}: platoon {t2} beat single {t1} by more than pacing noise"
            );
        }
    }
    assert!(compared >= 5, "not enough comparable episodes");
    assert!(
        platoon_sum >= single_sum,
        "platoon mean {} vs single mean {}",
        platoon_sum / compared as f64,
        single_sum / compared as f64
    );
}

#[test]
fn ego_waits_out_a_tight_cluster_and_uses_the_gap() {
    // Two cars 8 m apart (cluster), third far behind: the ego should cross
    // between the cluster and the third car.
    let spec = StackSpec::ultimate(common::conservative_nn(), AggressiveConfig::default());
    let cfg = platoon_cfg(3, &[8.0, 45.0]);
    let r = run_episode(&cfg, &spec, true).expect("valid episode");
    assert!(r.outcome.is_safe());
    let reach = r.outcome.reaching_time().expect("should reach");
    // Verify the crossing happened after the 2nd vehicle cleared but before
    // the 3rd arrived.
    let traces = r.traces.expect("traces requested");
    let scenarios = cfg.scenarios().expect("valid scenarios");
    let second_exit = traces.others[1]
        .iter()
        .filter(|s| s.state.position <= scenarios[1].other_exit())
        .map(|s| s.time)
        .next_back()
        .expect("second vehicle trace");
    let third_entry = traces.others[2]
        .iter()
        .filter(|s| s.state.position >= scenarios[2].other_entry())
        .map(|s| s.time)
        .next();
    assert!(
        reach >= second_exit - 0.5,
        "crossed before the cluster cleared: reach {reach}, exit {second_exit}"
    );
    if let Some(third) = third_entry {
        assert!(
            reach < third,
            "missed the gap: reach {reach}, third arrives {third}"
        );
    }
}
