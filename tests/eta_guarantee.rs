//! Paper Eq. 1: the compound planner must achieve `η(κ_c) ≥ η(κ_n)` (in the
//! mean, per §III-E's argument) and `η(κ_c) ≥ 0` (always). These tests check
//! the efficiency half on paired Monte-Carlo batches.

mod common;

use safe_cv::prelude::*;
use safe_cv::sim::{run_batch, BatchConfig, BatchSummary};

fn paired_summaries(
    spec_a: &StackSpec,
    spec_b: &StackSpec,
    episodes: usize,
    mutate: impl Fn(&mut EpisodeConfig),
) -> (BatchSummary, BatchSummary) {
    let mut template = EpisodeConfig::paper_default(500);
    mutate(&mut template);
    let batch = BatchConfig::new(template, episodes);
    let a = BatchSummary::from_results(&run_batch(&batch, spec_a).expect("batch a"));
    let b = BatchSummary::from_results(&run_batch(&batch, spec_b).expect("batch b"));
    (a, b)
}

#[test]
fn ultimate_beats_unsafe_pure_aggressive_on_mean_eta() {
    let nn = common::aggressive_nn();
    let pure = StackSpec::PureNn {
        planner: nn.clone(),
        window: WindowKind::Nominal,
    };
    let ultimate = StackSpec::ultimate(nn, AggressiveConfig::default());
    let (p, u) = paired_summaries(&pure, &ultimate, 60, |cfg| {
        cfg.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.25,
        };
    });
    assert!(
        p.safe_rate < 1.0,
        "pure aggressive planner should collide sometimes"
    );
    assert_eq!(u.safe_rate, 1.0, "ultimate must be 100% safe");
    assert!(
        u.eta_mean > p.eta_mean,
        "mean η: ultimate {} vs pure {}",
        u.eta_mean,
        p.eta_mean
    );
}

#[test]
fn ultimate_is_at_least_as_fast_as_basic_for_the_conservative_family() {
    let nn = common::conservative_nn();
    let basic = StackSpec::basic(nn.clone());
    let ultimate = StackSpec::ultimate(nn, AggressiveConfig::default());
    let (b, u) = paired_summaries(&basic, &ultimate, 60, |cfg| {
        cfg.comm = CommSetting::Lost;
        cfg.noise = SensorNoise::uniform(2.0);
    });
    assert_eq!(b.safe_rate, 1.0);
    assert_eq!(u.safe_rate, 1.0);
    assert!(
        u.reaching_time <= b.reaching_time + 0.05,
        "ultimate {} vs basic {}",
        u.reaching_time,
        b.reaching_time
    );
    assert!(u.eta_mean + 1e-9 >= b.eta_mean);
}

#[test]
fn emergency_frequency_is_higher_for_the_ultimate_planner() {
    // The ultimate planner rides closer to the unsafe set (that is where its
    // efficiency comes from), so κ_e engages more often than in the basic
    // configuration (paper Table I: 0.02% vs 17.58% under "messages lost").
    // The conservative family shows the cleanest separation.
    let nn = common::conservative_nn();
    let basic = StackSpec::basic(nn.clone());
    let ultimate = StackSpec::ultimate(nn, AggressiveConfig::default());
    let (b, u) = paired_summaries(&basic, &ultimate, 60, |cfg| {
        cfg.comm = CommSetting::Lost;
        cfg.noise = SensorNoise::uniform(2.0);
    });
    assert!(
        u.emergency_frequency > b.emergency_frequency,
        "ultimate {} vs basic {}",
        u.emergency_frequency,
        b.emergency_frequency
    );
}

#[test]
fn compound_eta_is_never_negative_even_when_pure_eta_is() {
    let nn = common::aggressive_nn();
    let pure = StackSpec::PureNn {
        planner: nn.clone(),
        window: WindowKind::Nominal,
    };
    let basic = StackSpec::basic(nn);
    let (p, b) = paired_summaries(&pure, &basic, 60, |cfg| {
        cfg.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.5,
        };
    });
    assert!(
        p.etas.iter().any(|&e| e < 0.0),
        "pure should have crashes here"
    );
    assert!(b.etas.iter().all(|&e| e >= 0.0), "compound η must be ≥ 0");
}
