//! Cross-crate integration of the estimation pipeline: channels + sensors +
//! information filter driven exactly like the simulator drives them.

use cv_rng::{Rng, SplitMix64};
use safe_cv::prelude::*;

struct Rig {
    limits: VehicleLimits,
    truth: VehicleState,
    channel: Box<dyn Channel + Send>,
    sensor: UniformNoiseSensor,
    rng: SplitMix64,
}

impl Rig {
    fn new(comm: CommSetting, noise: SensorNoise, seed: u64) -> Self {
        let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits");
        Rig {
            limits,
            truth: VehicleState::new(0.0, 10.0, 0.0),
            channel: comm.channel(seed),
            sensor: UniformNoiseSensor::new(noise, seed ^ 0xFFFF),
            rng: SplitMix64::seed_from_u64(seed.wrapping_mul(31)),
        }
    }

    /// Advances one 0.05 s step, feeding `estimators` with comm/sensor events
    /// on the paper's cadence (both every 0.1 s).
    fn step(&mut self, step: u64, estimators: &mut [&mut dyn Estimator]) {
        let t = step as f64 * 0.05;
        if step.is_multiple_of(2) {
            self.channel.send(Message::from_state(1, t, &self.truth), t);
            for m in self.channel.receive(t) {
                for e in estimators.iter_mut() {
                    e.on_message(&m);
                }
            }
            let meas = self.sensor.measure(1, t, &self.truth);
            for e in estimators.iter_mut() {
                e.on_measurement(&meas);
            }
        }
        let a = self.rng.random_range(-3.0..=3.0);
        self.truth = self.limits.step(&self.truth, a, 0.05);
    }
}

fn soundness_run(comm: CommSetting, noise: SensorNoise, seed: u64) {
    let mut rig = Rig::new(comm, noise, seed);
    let mut hard = InformationFilter::new(
        rig.limits,
        noise,
        FilterMode::HardOnly,
        Prior::exact(0.0, 0.0, 10.0),
    );
    let mut fused = InformationFilter::new(
        rig.limits,
        noise,
        FilterMode::Fused,
        Prior::exact(0.0, 0.0, 10.0),
    );
    for step in 0..200 {
        let t = step as f64 * 0.05;
        for (name, filt) in [("hard", &hard), ("fused", &fused)] {
            let est = filt.estimate(t);
            assert!(
                est.consistent_with(&rig.truth),
                "{name} estimate lost the truth under {comm} at t = {t:.2} (seed {seed})"
            );
            assert!(est.position.contains(est.nominal.position));
            assert!(est.velocity.contains(est.nominal.velocity));
        }
        let mut ests: [&mut dyn Estimator; 2] = [&mut hard, &mut fused];
        rig.step(step, &mut ests);
    }
}

#[test]
fn hard_and_fused_estimates_stay_sound_under_every_comm_setting() {
    for seed in 0..8u64 {
        soundness_run(CommSetting::NoDisturbance, SensorNoise::uniform(1.0), seed);
        soundness_run(
            CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.5,
            },
            SensorNoise::uniform(2.0),
            seed,
        );
        soundness_run(CommSetting::Lost, SensorNoise::uniform(4.8), seed);
    }
}

#[test]
fn fused_nominal_beats_raw_measurements_on_rmse() {
    let noise = SensorNoise::uniform(2.0);
    let mut rig = Rig::new(CommSetting::Lost, noise, 3);
    let mut fused = InformationFilter::new(
        rig.limits,
        noise,
        FilterMode::Fused,
        Prior::exact(0.0, 0.0, 10.0),
    );
    let mut raw_err = Vec::new();
    let mut fused_err = Vec::new();
    let mut sensor_probe = UniformNoiseSensor::new(noise, 0xBEEF); // an independent raw consumer
    for step in 0..400u64 {
        let t = step as f64 * 0.05;
        if step % 2 == 0 && step > 0 {
            // Compare against what a raw-measurement consumer would believe.
            let m = sensor_probe.measure(1, t, &rig.truth);
            raw_err.push(m.velocity - rig.truth.velocity);
            fused_err.push(fused.estimate(t).nominal.velocity - rig.truth.velocity);
        }
        let mut ests: [&mut dyn Estimator; 1] = [&mut fused];
        rig.step(step, &mut ests);
    }
    let rms = |v: &[f64]| (v.iter().map(|e| e * e).sum::<f64>() / v.len() as f64).sqrt();
    let (raw, fil) = (rms(&raw_err), rms(&fused_err));
    assert!(
        fil < 0.7 * raw,
        "expected ≥30% RMSE improvement: raw {raw:.3}, fused {fil:.3}"
    );
}

#[test]
fn messages_tighten_the_monitorable_interval() {
    // Under heavy sensing noise, each exact (even delayed) message must
    // sharply shrink the hard interval the monitor works with.
    let noise = SensorNoise::uniform(4.0);
    let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits");
    let mut filt = InformationFilter::new(
        limits,
        noise,
        FilterMode::HardOnly,
        Prior::exact(0.0, 0.0, 10.0),
    );
    filt.on_measurement(&Measurement::new(1, 1.0, 11.0, 9.5, 0.0));
    let before = filt.estimate(1.2).uncertainty();
    filt.on_message(&Message::new(1, 1.0, 10.2, 10.1, 0.0));
    let after = filt.estimate(1.2).uncertainty();
    assert!(
        after < 0.5 * before,
        "message should at least halve the uncertainty: {before:.3} -> {after:.3}"
    );
}
