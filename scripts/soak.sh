#!/usr/bin/env bash
# Chaos soak: the full fault matrix and session storm from
# crates/server/tests/chaos_e2e.rs (the #[ignore]d soak test), in release
# mode, under a hard wall-clock cap.
#
# The soak runs the 6-fault-kind matrix over a wide seed sweep TWICE and
# compares the per-cell outcome vectors (seed reproducibility), then runs
# rounds of concurrent sessions through per-session random-fault proxies
# against one shared server. Tunables:
#
#   CV_SOAK_SEEDS         seeds per fault kind   (default 16)
#   CV_SOAK_ROUNDS        kill-a-shard rounds    (default 16)
#   CV_SOAK_TIMEOUT_SECS  hard wall-clock cap    (default 1800, per phase)
#
# Examples:
#   scripts/soak.sh                      # default sweep
#   CV_SOAK_SEEDS=64 scripts/soak.sh     # wider sweep, same cap
set -euo pipefail
cd "$(dirname "$0")/.."

: "${CV_SOAK_SEEDS:=16}"
: "${CV_SOAK_ROUNDS:=16}"
: "${CV_SOAK_TIMEOUT_SECS:=1800}"
export CV_SOAK_SEEDS CV_SOAK_ROUNDS

echo "soak: ${CV_SOAK_SEEDS} seeds/fault-kind, cap ${CV_SOAK_TIMEOUT_SECS}s"
timeout "${CV_SOAK_TIMEOUT_SECS}" \
  cargo test --release --offline -p cv-server --test chaos_e2e -- \
  --ignored --nocapture

# Kill-a-shard cycle (crates/server/tests/panic_isolation.rs): murder a
# different shard thread mid-batch every round and require the rescue pass
# to keep the batch summary bit-identical to the clean run. Needs the
# fault-injection feature for the kill switch.
echo "soak: kill-a-shard, ${CV_SOAK_ROUNDS} rounds"
timeout "${CV_SOAK_TIMEOUT_SECS}" \
  cargo test --release --offline -p cv-server --features fault-injection \
  --test panic_isolation -- --ignored --nocapture

# Disk-fault cycle (crates/server/tests/disk_fault_e2e.rs): the 5-kind
# storage-fault matrix — short writes, ENOSPC, fsync failure, read
# corruption, torn tails — over the same CV_SOAK_SEEDS sweep. Every cell
# must end in typed degradation or clean recovery with served summaries
# bit-identical to an uncached run (DESIGN.md §17).
echo "soak: disk-fault matrix, ${CV_SOAK_SEEDS} seeds/fault-kind"
timeout "${CV_SOAK_TIMEOUT_SECS}" \
  cargo test --release --offline -p cv-server --test disk_fault_e2e -- \
  --ignored --nocapture

# Event-engine sparse-disturbance soak (tests/event_core.rs): thousands
# of long-horizon n=8 platoon episodes per cell (lost and heavy
# delay/drop channels, two seeds, two thread counts), each batch
# asserted bit-identical to the fixed-step oracle (DESIGN.md §18).
# CV_SOAK_EVENT_EPISODES overrides the per-cell episode count.
echo "soak: event-engine sparse-disturbance bit-identity"
timeout "${CV_SOAK_TIMEOUT_SECS}" \
  cargo test --release --offline --test event_core -- \
  --ignored --nocapture

echo "soak: clean"
