#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
# Fully offline by design — the workspace has no external dependencies
# (see DESIGN.md §4), so `--offline` both enforces that invariant and
# keeps the gate runnable on air-gapped boxes. `--workspace` matters:
# a plain `cargo test` in this workspace runs only the root package.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
cargo clippy --offline --workspace -- -D warnings -W clippy::perf

# Perf-harness smoke run: tiny matrix, output parked under target/ so it
# never clobbers the committed results/BENCH_throughput.json artifact.
# This also exercises lane batching K ∈ {1,2,4,8} inline: the binary
# asserts the per-episode tolerance gate on every lane cell and K=1
# bit-identity on every run (no --baseline/--nn-baseline here, so the
# 10% regression gates stay inert at smoke scale).
cargo run -q --release --offline -p bench --bin exp_throughput -- \
  --sims 8 --threads 2 --reps 2 --out target/tier1-throughput-smoke.json
test -s target/tier1-throughput-smoke.json

# Lane-batching smoke: the integration-level numeric contract (DESIGN.md
# §15) — K=4 batches compared per episode against the per-episode
# reference under the tolerance gate, Lanes(1) bit-identity, and the
# early-exit refill case — in release mode, where the vectorised kernels
# the contract is about are actually selected.
timeout 300 cargo test -q --release --offline --test lane_batching

# Event-core smoke: the event-driven engine's bit-identity matrix
# (seeds x thread counts x stacks, incl. an n=4 platoon with one lost
# V2V channel) and the simultaneous-event ordering contract
# (DESIGN.md §18) in release mode. The long-horizon sparse soak in the
# same file is #[ignore]d here and runs via scripts/soak.sh.
timeout 300 cargo test -q --release --offline --test event_core

# Alloc-guard: the counting-allocator proof that the NN hot paths
# (predict_into, forward_batch_into, NnPlanner::plan, the warmed episode
# loop and the lane-batched step loop) are allocation-free in the steady
# state (DESIGN.md §13, §15). Runs in release
# mode as its own binary so its #[global_allocator] never leaks into the
# workspace test run above.
timeout 300 cargo test -q --release --offline --test alloc_guard

# NN-kernel bit-identity smoke: the tiled/fused/in-place compute layer
# against its retained naive baselines, in release mode (the optimiser
# settings under which the equivalence actually has to hold).
timeout 300 cargo test -q --release --offline -p cv-nn

# Chaos smoke run: the seeded fault matrix through the cv-chaos proxy in
# release mode (timings differ from the debug pass above), under a hard
# wall-clock cap so a hang in any networking path fails the gate instead
# of wedging it. The full matrix/soak lives in scripts/soak.sh.
timeout 300 cargo test -q --release --offline -p cv-server --test chaos_e2e

# Supervision smoke run: deadlines, cancellation determinism, and overload
# shedding in release mode (DESIGN.md §12). Same hard cap rationale as the
# chaos smoke above.
timeout 300 cargo test -q --release --offline -p cv-server --test supervision_e2e

# Panic isolation behind the fault-injection feature: the deliberately
# panicking planner stack is not nameable in default builds, so this is
# the only place the containment/quarantine path gets release coverage.
# The feature is additive — default-build artifacts above are untouched.
timeout 300 cargo test -q --release --offline -p cv-server \
  --features fault-injection --test panic_isolation

# Cache smoke: a daemon with a small content-addressed result cache must
# answer a repeated batch entirely from the cache (hits == episodes) with
# summary lines identical to the first run, byte for byte (the wall-time
# and cache-counter lines are the only operational, non-deterministic
# ones). Exercises cv-serve flags, the wire counters, and the server-side
# cache end to end.
CACHE_LOG=target/tier1-cache-serve.log
cargo run -q --release --offline -p cv-server --bin cv-serve -- \
  --addr 127.0.0.1:0 --cache-bytes 1048576 > "$CACHE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^cv-serve listening on //p' "$CACHE_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
test -n "$ADDR" || { echo "tier1: cv-serve never reported its address" >&2; exit 1; }
submit() {
  cargo run -q --release --offline -p cv-server --bin cv-submit -- \
    --addr "$ADDR" --episodes 8 --quiet 2>/dev/null
}
run_cold=$(submit)
run_warm=$(submit)
echo "$run_warm" | grep -q "cache               8 hits, 0 misses" \
  || { echo "tier1: warm run was not served from the cache:"; echo "$run_warm"; exit 1; } >&2
det_cold=$(echo "$run_cold" | grep -v -e "^wall time" -e "^cache")
det_warm=$(echo "$run_warm" | grep -v -e "^wall time" -e "^cache")
[ "$det_cold" = "$det_warm" ] \
  || { echo "tier1: cached summary diverged from the computed one:"; \
       diff <(echo "$det_cold") <(echo "$det_warm"); exit 1; } >&2

# Platoon smoke: an n=4 platoon batch (leader + two gap-tracking
# followers, per-pair V2V channels — DESIGN.md §16) through the same live
# daemon. Submitted twice: the repeat must be answered from the cache and
# the deterministic summary lines must match byte for byte, pinning the
# platoon template's wire round-trip and cache keying end to end.
submit_platoon() {
  cargo run -q --release --offline -p cv-server --bin cv-submit -- \
    --addr "$ADDR" --platoon 4 --episodes 4 --quiet 2>/dev/null
}
plat_cold=$(submit_platoon)
plat_warm=$(submit_platoon)
echo "$plat_cold" | grep -q "^episodes            4" \
  || { echo "tier1: platoon batch did not complete:"; echo "$plat_cold"; exit 1; } >&2
echo "$plat_warm" | grep -q "cache               4 hits, 0 misses" \
  || { echo "tier1: warm platoon run was not served from the cache:"; \
       echo "$plat_warm"; exit 1; } >&2
det_plat_cold=$(echo "$plat_cold" | grep -v -e "^wall time" -e "^cache")
det_plat_warm=$(echo "$plat_warm" | grep -v -e "^wall time" -e "^cache")
[ "$det_plat_cold" = "$det_plat_warm" ] \
  || { echo "tier1: cached platoon summary diverged from the computed one:"; \
       diff <(echo "$det_plat_cold") <(echo "$det_plat_warm"); exit 1; } >&2
cargo run -q --release --offline -p cv-server --bin cv-submit -- --addr "$ADDR" shutdown
wait "$SERVE_PID"
trap - EXIT

# Persistent-cache smoke (DESIGN.md §17): a daemon with --cache-dir is
# cold-filled, then SIGKILLed mid-batch — the harshest crash the segment
# format must survive. A fresh daemon on the same directory must report
# recovery and answer the repeat batch entirely from persisted records,
# with deterministic summary lines byte-identical to the cold run.
CACHE_DIR=target/tier1-cache-dir
rm -rf "$CACHE_DIR"
PERSIST_LOG=target/tier1-persist-serve.log
cargo run -q --release --offline -p cv-server --bin cv-serve -- \
  --addr 127.0.0.1:0 --cache-bytes 1048576 --cache-dir "$CACHE_DIR" \
  > "$PERSIST_LOG" &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^cv-serve listening on //p' "$PERSIST_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
test -n "$ADDR" || { echo "tier1: persistent cv-serve never reported its address" >&2; exit 1; }
run_cold=$(submit)
# Crash the daemon while a larger batch is appending to the active segment.
cargo run -q --release --offline -p cv-server --bin cv-submit -- \
  --addr "$ADDR" --episodes 200 --quiet >/dev/null 2>&1 &
KILLED_SUBMIT=$!
sleep 0.3
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$KILLED_SUBMIT" 2>/dev/null || true
test -s "$CACHE_DIR"/seg-*.seg \
  || { echo "tier1: no segment file written before the crash" >&2; exit 1; }
cargo run -q --release --offline -p cv-server --bin cv-serve -- \
  --addr 127.0.0.1:0 --cache-bytes 1048576 --cache-dir "$CACHE_DIR" \
  > "$PERSIST_LOG" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^cv-serve listening on //p' "$PERSIST_LOG")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
test -n "$ADDR" || { echo "tier1: restarted cv-serve never reported its address" >&2; exit 1; }
grep -q "^cv-serve: cache recovered" "$PERSIST_LOG" \
  || { echo "tier1: restarted daemon reported no cache recovery:"; \
       cat "$PERSIST_LOG"; exit 1; } >&2
run_warm=$(submit)
echo "$run_warm" | grep -q "cache               8 hits, 0 misses" \
  || { echo "tier1: post-restart run was not served from the cache:"; \
       echo "$run_warm"; exit 1; } >&2
echo "$run_warm" | grep -q "cache persisted     8 hits" \
  || { echo "tier1: post-restart hits were not served from disk:"; \
       echo "$run_warm"; exit 1; } >&2
det_cold=$(echo "$run_cold" | grep -v -e "^wall time" -e "^cache")
det_warm=$(echo "$run_warm" | grep -v -e "^wall time" -e "^cache")
[ "$det_cold" = "$det_warm" ] \
  || { echo "tier1: recovered summary diverged from the computed one:"; \
       diff <(echo "$det_cold") <(echo "$det_warm"); exit 1; } >&2
cargo run -q --release --offline -p cv-server --bin cv-submit -- --addr "$ADDR" shutdown
wait "$SERVE_PID"
trap - EXIT

# cv-submit must report failure through its exit code (typed, non-zero):
# a dead address is an I/O error, exit code 1.
if cargo run -q --release --offline -p cv-server --bin cv-submit -- \
    --addr 127.0.0.1:9 --episodes 1 --quiet >/dev/null 2>&1; then
  echo "tier1: cv-submit to a dead address must exit non-zero" >&2
  exit 1
fi
