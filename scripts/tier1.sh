#!/usr/bin/env bash
# Tier-1 verification: the gate every PR must keep green.
#
# Fully offline by design — the workspace has no external dependencies
# (see DESIGN.md §4), so `--offline` both enforces that invariant and
# keeps the gate runnable on air-gapped boxes. `--workspace` matters:
# a plain `cargo test` in this workspace runs only the root package.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo fmt --check
