//! # safe-cv — a safety-guaranteed framework for NN-based planners in
//! connected vehicles under communication disturbance
//!
//! Rust reproduction of Chang et al., *"A Safety-Guaranteed Framework for
//! Neural-Network-Based Planners in Connected Vehicles under Communication
//! Disturbance"* (DATE 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`dynamics`] | `cv-dynamics` | 1-D vehicle model, limits, trajectories |
//! | [`comm`] | `cv-comm` | V2V messages, delay/drop channels |
//! | [`sensing`] | `cv-sensing` | bounded-uniform-noise sensors |
//! | [`estimation`] | `cv-estimation` | intervals, reachability, Kalman + rollback, information filter |
//! | [`nn`] | `cv-nn` | from-scratch MLP library (training + inference) |
//! | [`shield`] | `safe-shield` | **the paper's contribution**: runtime monitor, emergency planner, compound planner, `η` |
//! | [`planner`] | `cv-planner` | teacher policies, NN planners, behaviour cloning |
//! | [`left_turn`] | `left-turn` | unprotected-left-turn case study (Eqs. 5–8) |
//! | [`sim`] | `cv-sim` | episode simulator, Monte-Carlo batches, training harness |
//!
//! # Quickstart
//!
//! Wrap a (quickly trained) NN planner into the paper's ultimate compound
//! planner and simulate one episode:
//!
//! ```
//! use safe_cv::prelude::*;
//!
//! // Train a small conservative planner (full training is cached by the
//! // experiment binaries; the smoke setup keeps doctests fast).
//! let planner = safe_cv::sim::training::train_planner(
//!     &TrainSetup::smoke(),
//!     safe_cv::sim::training::Personality::Conservative,
//! )?;
//!
//! let cfg = EpisodeConfig::paper_default(42);
//! let shielded = StackSpec::ultimate(planner, AggressiveConfig::default());
//! let result = run_episode(&cfg, &shielded, false)?;
//! assert!(result.outcome.is_safe()); // the shield guarantees this
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries regenerating every table and figure of the paper.

pub use car_following;
pub use cv_comm as comm;
pub use cv_dynamics as dynamics;
pub use cv_estimation as estimation;
pub use cv_nn as nn;
pub use cv_planner as planner;
pub use cv_sensing as sensing;
pub use cv_sim as sim;
pub use left_turn;
pub use safe_shield as shield;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use cv_comm::{Channel, CommSetting, Message};
    pub use cv_dynamics::{VehicleLimits, VehicleState};
    pub use cv_estimation::{
        Estimator, FilterMode, InformationFilter, Interval, NaiveEstimator, Prior, VehicleEstimate,
    };
    pub use cv_planner::{NnPlanner, TeacherPolicy};
    pub use cv_sensing::{Measurement, SensorNoise, UniformNoiseSensor};
    pub use cv_sim::training::TrainSetup;
    pub use cv_sim::{
        run_batch, run_episode, BatchConfig, BatchSummary, EpisodeConfig, StackSpec, WindowKind,
    };
    pub use left_turn::LeftTurnScenario;
    pub use safe_shield::{
        AggressiveConfig, CompoundPlanner, Observation, Outcome, PlanDecision, Planner,
        RuntimeMonitor, Scenario, WindowSource,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap();
        assert_eq!(limits.clamp_accel(10.0), 3.0);
        let cfg = EpisodeConfig::paper_default(0);
        assert_eq!(cfg.ego_init.position, -30.0);
    }
}
