//! The framework wraps *any* planner — even a hostile one. This example
//! implements the `Planner` trait by hand with a deliberately reckless
//! policy (always full throttle) and shows the compound planner still
//! guarantees safety.
//!
//! Run with: `cargo run --release --example custom_planner`

use safe_cv::prelude::*;

/// A planner that floors it, no matter what it sees.
struct FullThrottle;

impl Planner for FullThrottle {
    fn plan(&mut self, _obs: &Observation) -> f64 {
        f64::INFINITY // the framework clamps to the ego limits
    }

    fn name(&self) -> &str {
        "full-throttle"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EpisodeConfig::paper_default(3);
    let scenario = cfg.scenario()?;
    let ego_limits = scenario.ego_limits();
    let other_limits = scenario.other_limits();

    // Drive the compound planner manually (the batch runner wants NN
    // planners; a hand-rolled loop shows the raw framework API).
    let mut compound = CompoundPlanner::basic(scenario, FullThrottle);
    let mut estimator = InformationFilter::new(
        other_limits,
        cfg.noise,
        FilterMode::HardOnly,
        Prior::exact(0.0, 0.0, cfg.other_init_speed),
    );

    let mut ego = cfg.ego_init;
    let mut other = VehicleState::new(0.0, cfg.other_init_speed, 0.0);
    let mut channel = cfg.comm.channel(cfg.seed_channel());
    let mut sensor = UniformNoiseSensor::new(cfg.noise, cfg.seed_sensor());
    let mut rng = cv_rng::SplitMix64::seed_from_u64(cfg.seed_driving());

    let dt = cfg.dt_c;
    let mut collided = false;
    let mut reached = None;
    for step in 0..(cfg.horizon / dt) as u64 {
        use cv_rng::Rng as _;
        let t = step as f64 * dt;
        if step % 2 == 0 {
            channel.send(Message::from_state(1, t, &other), t);
            for m in channel.receive(t) {
                estimator.on_message(&m);
            }
            estimator.on_measurement(&sensor.measure(1, t, &other));
        }
        if compound.scenario().collision(&ego, &other) {
            collided = true;
            break;
        }
        if compound.scenario().target_reached(t, &ego) {
            reached = Some(t);
            break;
        }
        let decision = compound.plan(t, &ego, &estimator.estimate(t));
        ego = ego_limits.step(&ego, decision.accel, dt);
        let a1 = rng.random_range(other_limits.a_min()..=other_limits.a_max());
        other = other_limits.step(&other, a1, dt);
    }

    println!("planner: always-full-throttle (reckless by construction)");
    println!("collided: {collided}");
    match reached {
        Some(t) => println!("reached the target at t = {t:.2} s"),
        None => println!("did not reach the target within the horizon"),
    }
    println!(
        "emergency engaged on {:.1}% of steps — the shield did the driving where it had to",
        100.0 * compound.stats().emergency_frequency()
    );
    assert!(!collided, "the shield must keep even this planner safe");
    Ok(())
}
