//! The paper's case study, narrated: an unprotected left turn across random
//! oncoming traffic, with the compound planner's decisions traced step by
//! step.
//!
//! Run with: `cargo run --release --example unprotected_left_turn`

use safe_cv::prelude::*;
use safe_cv::sim::training::{train_planner, Personality, TrainSetup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training a small aggressive NN planner...");
    let planner = train_planner(&TrainSetup::smoke(), Personality::Aggressive)?;

    let mut cfg = EpisodeConfig::paper_default(7);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.5,
    };
    let scenario = cfg.scenario()?;
    println!(
        "conflict zone on the ego axis: [{}, {}] m; C1 starts {} m down the road\n",
        scenario.geometry().p_f,
        scenario.geometry().p_b,
        cfg.other_start_shared
    );

    let spec = StackSpec::ultimate(planner, AggressiveConfig::default());
    let result = run_episode(&cfg, &spec, true)?;
    let traces = result.traces.as_ref().expect("traces requested");

    println!(
        "{:>6} {:>9} {:>8} {:>10} {:>9} {:>20}",
        "t[s]", "ego p[m]", "ego v", "C1 shared", "slack", "cons window"
    );
    for (ego, windows) in traces.iter_steps().step_by(10) {
        let c1_shared = cfg.other_start_shared
            - traces
                .primary_other()
                .sample_at(ego.time)
                .map(|s| s.state.position)
                .unwrap_or(0.0);
        let w = windows
            .conservative
            .map(|w| format!("[{:6.2}, {:6.2}]", w.lo(), w.hi()))
            .unwrap_or_else(|| "     (cleared)     ".to_string());
        println!(
            "{:6.2} {:9.2} {:8.2} {:10.2} {:9.2} {:>20}",
            ego.time,
            ego.state.position,
            ego.state.velocity,
            c1_shared,
            scenario.slack(&ego.state),
            w
        );
    }

    println!(
        "\noutcome: {} — η = {:+.3}, emergency frequency {:.1}%",
        result.outcome,
        result.eta,
        100.0 * result.emergency_frequency()
    );
    Ok(())
}

/// Extension trait pairing trajectory samples with window traces.
trait StepIter {
    fn iter_steps(
        &self,
    ) -> Box<dyn Iterator<Item = (&cv_dynamics::TrajectorySample, &cv_sim::WindowTrace)> + '_>;
}

impl StepIter for cv_sim::EpisodeTraces {
    fn iter_steps(
        &self,
    ) -> Box<dyn Iterator<Item = (&cv_dynamics::TrajectorySample, &cv_sim::WindowTrace)> + '_> {
        Box::new(self.ego.iter().zip(self.windows.iter()))
    }
}
