//! Quickstart: wrap an NN planner with the safety shield and simulate one
//! unprotected left turn.
//!
//! Run with: `cargo run --release --example quickstart`

use safe_cv::prelude::*;
use safe_cv::sim::training::{train_planner, Personality, TrainSetup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Obtain an NN planner. Here we behaviour-clone the conservative
    //    teacher with a small budget; the experiment binaries cache a fully
    //    trained pair under target/planner-cache/.
    println!("training a small conservative NN planner...");
    let planner = train_planner(&TrainSetup::smoke(), Personality::Conservative)?;

    // 2. Configure an episode: the paper's geometry, with messages delayed
    //    0.25 s and 25% of them dropped.
    let mut cfg = EpisodeConfig::paper_default(42);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };

    // 3. Compare the unshielded planner with the ultimate compound planner.
    let pure = StackSpec::PureNn {
        planner: planner.clone(),
        window: WindowKind::Conservative,
    };
    let shielded = StackSpec::ultimate(planner, AggressiveConfig::default());

    for (name, spec) in [("pure NN", &pure), ("ultimate compound", &shielded)] {
        let result = run_episode(&cfg, spec, false)?;
        println!(
            "{name:<18} -> {} (η = {:+.3}, emergency engaged {:.1}% of steps)",
            result.outcome,
            result.eta,
            100.0 * result.emergency_frequency()
        );
    }
    Ok(())
}
