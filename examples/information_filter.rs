//! The information filter in isolation: how reachability over delayed
//! messages and Kalman filtering over noisy sensing combine into a tight,
//! sound estimate (paper Section III-B and Fig. 6a).
//!
//! Run with: `cargo run --release --example information_filter`

use cv_rng::{Rng, SplitMix64};
use safe_cv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0)?;
    let noise = SensorNoise::uniform(2.0);
    let dt = 0.05;

    // Three estimators watching the same vehicle:
    let mut naive = NaiveEstimator::new(limits, 0.0, VehicleState::new(0.0, 10.0, 0.0));
    let mut hard = InformationFilter::new(
        limits,
        noise,
        FilterMode::HardOnly,
        Prior::exact(0.0, 0.0, 10.0),
    );
    let mut fused = InformationFilter::new(
        limits,
        noise,
        FilterMode::Fused,
        Prior::exact(0.0, 0.0, 10.0),
    );

    let mut truth = VehicleState::new(0.0, 10.0, 0.0);
    let mut rng = SplitMix64::seed_from_u64(5);
    let mut sensor = UniformNoiseSensor::new(noise, 99);
    // Messages delayed by 0.4 s and 50% dropped.
    let mut channel = CommSetting::Delayed {
        delay: 0.4,
        drop_prob: 0.5,
    }
    .channel(17);

    println!(
        "{:>6} {:>9} {:>22} {:>9} {:>9} {:>9}",
        "t[s]", "true p", "hard interval", "width", "naive err", "fused err"
    );
    for step in 0..=120u64 {
        let t = step as f64 * dt;
        if step % 2 == 0 {
            channel.send(Message::from_state(1, t, &truth), t);
            for m in channel.receive(t) {
                naive.on_message(&m);
                hard.on_message(&m);
                fused.on_message(&m);
            }
            let m = sensor.measure(1, t, &truth);
            naive.on_measurement(&m);
            hard.on_measurement(&m);
            fused.on_measurement(&m);
        }
        if step % 20 == 0 {
            let h = hard.estimate(t);
            let n = naive.estimate(t);
            let f = fused.estimate(t);
            assert!(
                h.position.contains(truth.position),
                "hard bound must always contain the truth"
            );
            println!(
                "{t:6.2} {:9.3} [{:8.3}, {:8.3}] {:9.3} {:9.3} {:9.3}",
                truth.position,
                h.position.lo(),
                h.position.hi(),
                h.position.width(),
                (n.nominal.position - truth.position).abs(),
                (f.nominal.position - truth.position).abs(),
            );
        }
        let a = rng.random_range(limits.a_min()..=limits.a_max());
        truth = limits.step(&truth, a, dt);
    }

    println!(
        "\nThe hard interval is *sound* (always contains the truth) — that is what\n\
         the runtime monitor consumes. The fused nominal (Kalman + message rollback)\n\
         is the sharp point estimate that drives the aggressive unsafe-set estimation."
    );
    Ok(())
}
