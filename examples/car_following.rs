//! Second scenario: same-lane car following with the paper's distance-gap
//! unsafe set (`X_u = {x | p_lead − p_0 < p_gap}`, Section II-A). A reckless
//! cruise controller is wrapped by the same compound-planner framework and
//! survives a lead-vehicle brake ambush.
//!
//! Run with: `cargo run --release --example car_following`

use car_following::{CarFollowingScenario, CruisePlanner};
use safe_cv::prelude::*;

fn closed_loop(shielded: bool) -> (f64, bool) {
    let scenario = CarFollowingScenario::highway_default().expect("valid scenario");
    let ego_limits = scenario.ego_limits();
    let lead_limits = scenario.lead_limits();
    let dt = scenario.dt_c();

    let reckless = CruisePlanner::reckless(&scenario);
    let mut compound = CompoundPlanner::basic(scenario, reckless);
    let mut raw = reckless;

    // Perfect lead estimation for clarity (the estimation stack is
    // exercised by the left-turn experiments).
    let mut ego = VehicleState::new(0.0, 20.0, 0.0);
    let mut lead = VehicleState::new(60.0, 22.0, 0.0);
    let mut min_gap = f64::MAX;
    for step in 0..6000u64 {
        let t = step as f64 * dt;
        // The lead slams the brakes at t = 4 s and crawls from t = 10 s.
        let lead_accel = if t >= 4.0 && lead.velocity > 2.0 {
            lead_limits.a_min()
        } else {
            0.0
        };
        min_gap = min_gap.min(lead.position - ego.position);
        if compound.scenario().collision(&ego, &lead) {
            return (min_gap, false);
        }
        if compound.scenario().target_reached(t, &ego) {
            break;
        }
        let est = VehicleEstimate::exact(t, lead);
        let accel = if shielded {
            compound.plan(t, &ego, &est).accel
        } else {
            raw.plan(&Observation::new(t, ego, Some(est.position)))
        };
        ego = ego_limits.step(&ego, accel, dt);
        lead = lead_limits.step(&lead, lead_accel, dt);
    }
    (min_gap, true)
}

fn main() {
    println!("lead vehicle brake-ambushes at t = 4 s; p_gap = 5 m\n");
    let (gap_raw, ok_raw) = closed_loop(false);
    println!(
        "reckless cruise, unshielded: min gap {gap_raw:6.2} m — {}",
        if ok_raw {
            "survived (lucky)"
        } else {
            "REAR-ENDED the lead"
        }
    );
    let (gap_shielded, ok_shielded) = closed_loop(true);
    println!(
        "reckless cruise, shielded:   min gap {gap_shielded:6.2} m — {}",
        if ok_shielded {
            "gap held"
        } else {
            "rear-ended (bug!)"
        }
    );
    assert!(
        !ok_raw,
        "the ambush should defeat the unshielded controller"
    );
    assert!(
        ok_shielded && gap_shielded >= 5.0,
        "the shield must hold the gap"
    );
    println!("\nSame framework, different scenario — the Scenario trait carries all geometry.");
}
