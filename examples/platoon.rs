//! Multi-vehicle extension: an unprotected left turn across a *platoon* of
//! oncoming vehicles. The paper's system model allows `n − 1` conflicting
//! vehicles; its evaluation uses one — this example exercises three.
//!
//! The runtime monitor checks every vehicle's passing window; the NN planner
//! sees the fused window of the earliest traffic cluster
//! (`safe_shield::merge_windows`).
//!
//! Run with: `cargo run --release --example platoon`

use safe_cv::prelude::*;
use safe_cv::sim::training::{train_planner, Personality, TrainSetup};
use safe_cv::sim::{DriverModel, ExtraVehicle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training a small conservative NN planner...");
    let planner = train_planner(&TrainSetup::smoke(), Personality::Conservative)?;

    let mut cfg = EpisodeConfig::paper_default(21);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    // Two more oncoming vehicles, 8 m and 30 m behind the first: the first
    // pair forms one unusable cluster; the third leaves a usable gap.
    cfg.extra_others = vec![
        ExtraVehicle::new(
            60.0,
            10.0,
            DriverModel::OrnsteinUhlenbeck {
                theta: 0.5,
                sigma: 1.5,
            },
        ),
        ExtraVehicle::new(82.0, 11.0, DriverModel::UniformRandom),
    ];

    let spec = StackSpec::ultimate(planner, AggressiveConfig::default());
    let result = run_episode(&cfg, &spec, true)?;
    println!(
        "3-vehicle platoon: {} (η = {:+.3}, emergency {:.1}%)",
        result.outcome,
        result.eta,
        100.0 * result.emergency_frequency()
    );
    assert!(
        result.outcome.is_safe(),
        "the shield must hold for platoons"
    );

    // Show when each vehicle actually crossed the zone.
    let traces = result.traces.expect("traces requested");
    let scenarios = cfg.scenarios()?;
    for (i, (scenario, trajectory)) in scenarios.iter().zip(&traces.others).enumerate() {
        let inside: Vec<f64> = trajectory
            .iter()
            .filter(|s| {
                (scenario.other_entry()..=scenario.other_exit()).contains(&s.state.position)
            })
            .map(|s| s.time)
            .collect();
        match (inside.first(), inside.last()) {
            (Some(a), Some(b)) => {
                println!("  C{} occupied the zone during [{a:.2}, {b:.2}] s", i + 1)
            }
            _ => println!(
                "  C{} never entered the zone before the episode ended",
                i + 1
            ),
        }
    }
    if let Some(t) = result.outcome.reaching_time() {
        println!("  ego completed the turn at {t:.2} s — after the cluster, in the gap");
    }
    Ok(())
}
