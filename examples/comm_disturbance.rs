//! How communication disturbance degrades an unshielded planner — and how
//! the compound planner absorbs it. Sweeps the message drop probability and
//! prints reaching time and safety for the interpretable teacher baselines.
//!
//! Run with: `cargo run --release --example comm_disturbance`

use safe_cv::prelude::*;
use safe_cv::sim::BatchSummary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sims = 120;
    println!("{sims} episodes per point; aggressive teacher, unshielded\n");
    println!(
        "{:>6} {:>10} {:>9} {:>9}",
        "p_d", "reach[s]", "safe", "mean η"
    );
    for j in 0..=5 {
        let p_d = 0.18 * j as f64;
        let mut template = EpisodeConfig::paper_default(1);
        template.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: p_d,
        };
        let spec = StackSpec::pure_teacher_aggressive(&template)?;
        let batch = BatchConfig::new(template, sims);
        let summary = BatchSummary::from_results(&run_batch(&batch, &spec)?);
        println!(
            "{p_d:6.2} {:10.3} {:8.1}% {:+9.3}",
            summary.reaching_time,
            100.0 * summary.safe_rate,
            summary.eta_mean
        );
    }
    println!(
        "\nModerate drops leave the planner trusting stale-but-recent messages (the\n\
         worst case for its perfect-communication assumption); only extreme drop\n\
         rates push it back onto its own sensors. Either way it keeps colliding —\n\
         the failure mode the paper's shield removes (see `quickstart`)."
    );
    Ok(())
}
