use cv_dynamics::{braking_distance, VehicleLimits, VehicleState};
use cv_estimation::{Interval, VehicleEstimate};
use safe_shield::{AggressiveConfig, Scenario};

use crate::tau::{time_to_cover, TAU_CAP};
use crate::{Geometry, ScenarioError};

/// The unprotected-left-turn scenario of paper Section IV.
///
/// One instance describes one episode configuration: the conflict-zone
/// geometry on the ego axis, the two vehicles' physical limits, the control
/// period `Δt_c` (needed by the boundary-safe-set bound) and where `C_1`
/// started on the shared axis (which fixes the zone's location in `C_1`'s
/// forward frame).
///
/// All `C_1`-related quantities ([`VehicleEstimate`]s, the `other` state in
/// [`Scenario::collision`]) are expressed in `C_1`'s forward frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeftTurnScenario {
    geometry: Geometry,
    ego_limits: VehicleLimits,
    other_limits: VehicleLimits,
    /// `C_1` forward-frame coordinate at which it enters the zone.
    other_entry: f64,
    /// `C_1` forward-frame coordinate at which it has cleared the zone.
    other_exit: f64,
    /// Control period `Δt_c` (s).
    dt_c: f64,
}

impl LeftTurnScenario {
    /// Creates a scenario.
    ///
    /// `other_start_shared` is `C_1`'s initial position on the shared ego
    /// axis (the paper sweeps `p_1(0) ∈ {50.5 + 0.5j}`); since `C_1` drives
    /// toward decreasing shared coordinates, it enters the zone after
    /// travelling `other_start_shared − p_b` metres.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the geometry is inverted, `C_1` does
    /// not start strictly beyond the back line, or `dt_c` is not positive.
    pub fn new(
        geometry: Geometry,
        ego_limits: VehicleLimits,
        other_limits: VehicleLimits,
        other_start_shared: f64,
        dt_c: f64,
    ) -> Result<Self, ScenarioError> {
        if geometry.p_f >= geometry.p_b {
            return Err(ScenarioError::EmptyConflictZone);
        }
        if other_start_shared <= geometry.p_b {
            return Err(ScenarioError::OtherStartsInsideZone);
        }
        if !(dt_c > 0.0 && dt_c.is_finite()) {
            return Err(ScenarioError::InvalidControlPeriod);
        }
        Ok(Self {
            geometry,
            ego_limits,
            other_limits,
            other_entry: other_start_shared - geometry.p_b,
            other_exit: other_start_shared - geometry.p_f,
            dt_c,
        })
    }

    /// The paper's default configuration (zone `[5, 15]`, `Δt_c = 0.05 s`,
    /// ego `v ∈ [0, 12]`, `a ∈ [−6, 3]`; `C_1` `v ∈ [3, 14]`, `a ∈ [−3, 3]`)
    /// with `C_1` starting at `other_start_shared` on the shared axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if `other_start_shared` is not beyond the
    /// zone.
    pub fn paper_default(other_start_shared: f64) -> Result<Self, ScenarioError> {
        Self::new(
            Geometry::paper(),
            VehicleLimits::new(0.0, 12.0, -6.0, 3.0)?,
            VehicleLimits::new(3.0, 14.0, -3.0, 3.0)?,
            other_start_shared,
            0.05,
        )
    }

    /// The conflict-zone geometry on the ego axis.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The ego vehicle's physical limits.
    pub fn ego_limits(&self) -> VehicleLimits {
        self.ego_limits
    }

    /// `C_1`'s physical limits.
    pub fn other_limits(&self) -> VehicleLimits {
        self.other_limits
    }

    /// `C_1` forward-frame coordinate of the zone entry line.
    pub fn other_entry(&self) -> f64 {
        self.other_entry
    }

    /// `C_1` forward-frame coordinate of the zone exit line.
    pub fn other_exit(&self) -> f64 {
        self.other_exit
    }

    /// Control period `Δt_c`.
    pub fn dt_c(&self) -> f64 {
        self.dt_c
    }

    /// The slack `s(t)` (paper Eq. 5): how much of the stopping margin
    /// before the front line remains. `+∞` once the ego has cleared the
    /// zone; negative inside the zone or when stopping before it is no
    /// longer possible.
    pub fn slack(&self, ego: &VehicleState) -> f64 {
        let d_b = braking_distance(
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_min(),
        );
        if ego.position <= self.geometry.p_f {
            self.geometry.p_f - d_b - ego.position
        } else if ego.position <= self.geometry.p_b {
            ego.position - self.geometry.p_b
        } else {
            f64::INFINITY
        }
    }

    /// The ego's projected passing window `[τ_0,min, τ_0,max]` under its
    /// current velocity (paper Eq. 5, second part), in absolute time.
    /// `None` when the ego has already cleared the zone or is stopped short
    /// of it (its projection never reaches the zone).
    pub fn projected_window(&self, time: f64, ego: &VehicleState) -> Option<Interval> {
        let v = self.ego_limits.clamp_velocity(ego.velocity);
        if ego.position > self.geometry.p_b {
            return None;
        }
        if ego.position <= self.geometry.p_f {
            if v <= 1e-9 {
                // Stopped before the zone: the constant-velocity projection
                // never reaches it.
                return None;
            }
            let lo = ((self.geometry.p_f - ego.position) / v).min(TAU_CAP);
            let hi = ((self.geometry.p_b - ego.position) / v).min(TAU_CAP);
            Some(Interval::new(time + lo.min(hi), time + hi))
        } else {
            // Inside the zone: occupying it from now until the exit.
            let hi = if v <= 1e-9 {
                TAU_CAP
            } else {
                ((self.geometry.p_b - ego.position) / v).min(TAU_CAP)
            };
            Some(Interval::new(time, time + hi))
        }
    }

    /// The runtime monitor works against a *virtual* front line this far
    /// short of the real one, so that every braking trajectory it commands
    /// stops robustly outside the conflict zone — floating-point drift on
    /// the exact-corner stopping trajectory can never tip the nose over the
    /// real line.
    pub const MONITOR_LINE_MARGIN: f64 = 0.05;

    /// Emergency stopping aims this far short of the (virtual) front line
    /// (m).
    pub const STOP_MARGIN: f64 = 0.2;

    /// Clearance (s) required between the ego's full-throttle zone exit and
    /// the window's earliest arrival for a crossing to be considered
    /// provably safe (the *dive exception* and the *rush* branch of `κ_e`).
    pub const DIVE_MARGIN: f64 = 0.1;

    /// Real-line slack deficits smaller than this (m) are treated as still
    /// stoppable by `κ_e` (full braking) rather than committed. This is a
    /// pure floating-point guard (accumulated drift on the slack-preserving
    /// full-braking trajectory is ~1e-12): any *physically* meaningful
    /// deficit must rush, because braking it would strand the vehicle just
    /// inside the zone.
    pub const RUSH_TOLERANCE: f64 = 1e-9;

    /// The virtual front line the monitor brakes against.
    fn p_f_monitor(&self) -> f64 {
        self.geometry.p_f - Self::MONITOR_LINE_MARGIN
    }

    /// Slack against the *virtual* front line (monitor-internal; the public
    /// [`Self::slack`] stays faithful to paper Eq. 5).
    fn monitor_slack(&self, ego: &VehicleState) -> f64 {
        let d_b = braking_distance(
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_min(),
        );
        if ego.position <= self.p_f_monitor() {
            self.p_f_monitor() - d_b - ego.position
        } else if ego.position <= self.geometry.p_b {
            ego.position - self.geometry.p_b
        } else {
            f64::INFINITY
        }
    }

    /// `true` when the ego can no longer stop before the virtual front line
    /// (or is already past it).
    pub fn is_committed(&self, ego: &VehicleState) -> bool {
        ego.position > self.p_f_monitor() || self.monitor_slack(ego) < 0.0
    }

    /// Earliest time (relative) at which the ego can clear the back line at
    /// full throttle.
    fn full_throttle_exit_time(&self, ego: &VehicleState) -> f64 {
        time_to_cover(
            self.geometry.p_b - ego.position,
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_max(),
            self.ego_limits.v_min(),
            self.ego_limits.v_max(),
        )
    }

    /// Earliest time (relative) at which the ego can reach the front line at
    /// full throttle.
    fn earliest_entry_time(&self, ego: &VehicleState) -> f64 {
        time_to_cover(
            self.geometry.p_f - ego.position,
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_max(),
            self.ego_limits.v_min(),
            self.ego_limits.v_max(),
        )
    }

    /// `true` when a commitment at this state is *certified*: either rushing
    /// provably clears the zone before the window's earliest arrival (the
    /// dive certificate), or the ego physically cannot reach the zone before
    /// the window's latest exit (the creep certificate). The shield only
    /// ever creates committed states satisfying one of the two, which is
    /// what the offline verifier ([`crate::verify`]) relies on to prune
    /// unreachable states.
    pub fn commitment_is_certified(
        &self,
        time: f64,
        ego: &VehicleState,
        window: &Interval,
    ) -> bool {
        self.rush_is_provably_safe(time, ego, window)
            || time + self.earliest_entry_time(ego) > window.hi() + Self::DIVE_MARGIN
    }

    /// `true` when flooring it provably clears the zone before the earliest
    /// possible oncoming arrival (with [`Self::DIVE_MARGIN`] of clearance).
    fn rush_is_provably_safe(&self, time: f64, ego: &VehicleState, window: &Interval) -> bool {
        time + self.full_throttle_exit_time(ego) + Self::DIVE_MARGIN < window.lo()
    }

    /// The one-step slack-decrease bound of the boundary safe set
    /// (Section IV): `(v_0·Δt_c + ½·a_0,max·Δt_c²)·(1 − a_0,max/a_0,min)`.
    pub fn boundary_threshold(&self, ego: &VehicleState) -> f64 {
        let v = self.ego_limits.clamp_velocity(ego.velocity);
        let travel = v * self.dt_c + 0.5 * self.ego_limits.a_max() * self.dt_c * self.dt_c;
        travel * (1.0 - self.ego_limits.a_max() / self.ego_limits.a_min())
    }

    /// Shared helper: `C_1` passing window from explicit kinematic
    /// assumptions. `d_entry`/`d_exit` are forward-frame distances to the
    /// entry/exit lines; the "fast" tuple bounds the earliest entry, the
    /// "slow" tuple the latest exit.
    #[allow(clippy::too_many_arguments)]
    fn window_from(
        &self,
        time: f64,
        d_entry: f64,
        d_exit: f64,
        v_fast: f64,
        a_fast: f64,
        cap_fast: f64,
        v_slow: f64,
        a_slow: f64,
        floor_slow: f64,
    ) -> Option<Interval> {
        if d_exit <= 0.0 {
            return None; // C1 has cleared the zone.
        }
        let lims = &self.other_limits;
        let t_min = time_to_cover(d_entry, v_fast, a_fast, lims.v_min(), cap_fast);
        let t_max = time_to_cover(d_exit, v_slow, a_slow, floor_slow, lims.v_max());
        let lo = time + t_min.min(TAU_CAP);
        let hi = time + t_max.min(TAU_CAP);
        Some(Interval::new(lo.min(hi), hi))
    }
}

impl Scenario for LeftTurnScenario {
    fn target_reached(&self, _time: f64, ego: &VehicleState) -> bool {
        ego.position > self.geometry.p_b
    }

    fn collision(&self, ego: &VehicleState, other: &VehicleState) -> bool {
        self.geometry.contains_ego(ego.position)
            && (self.other_entry..=self.other_exit).contains(&other.position)
    }

    fn conservative_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        let lims = &self.other_limits;
        self.window_from(
            time,
            self.other_entry - estimate.position.hi(),
            self.other_exit - estimate.position.lo(),
            lims.clamp_velocity(estimate.velocity.hi()),
            lims.a_max(),
            lims.v_max(),
            lims.clamp_velocity(estimate.velocity.lo()),
            lims.a_min(),
            lims.v_min(),
        )
    }

    fn nominal_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        let lims = &self.other_limits;
        let v = lims.clamp_velocity(estimate.nominal.velocity);
        let u = estimate.nominal.position;
        self.window_from(
            time,
            self.other_entry - u,
            self.other_exit - u,
            v,
            0.0,
            lims.v_max(),
            v,
            0.0,
            lims.v_min(),
        )
    }

    fn aggressive_window(
        &self,
        time: f64,
        estimate: &VehicleEstimate,
        config: &AggressiveConfig,
    ) -> Option<Interval> {
        let lims = &self.other_limits;
        let v_nom = lims.clamp_velocity(estimate.nominal.velocity);
        let a_nom = lims.clamp_accel(estimate.nominal.acceleration);
        let u = estimate.nominal.position;
        // Paper Eq. 8: physical limits replaced by buffered current values.
        let a_fast = (a_nom + config.a_buf).min(lims.a_max());
        let v_cap_fast = (v_nom + config.v_buf).min(lims.v_max());
        let a_slow = (a_nom - config.a_buf).max(lims.a_min());
        let v_floor_slow = (v_nom - config.v_buf).max(lims.v_min());
        self.window_from(
            time,
            self.other_entry - u,
            self.other_exit - u,
            v_nom,
            a_fast,
            v_cap_fast.max(lims.v_min()),
            v_nom,
            a_slow,
            v_floor_slow,
        )
    }

    fn in_unsafe_set(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        let Some(tau1) = window else { return false };
        let Some(tau0) = self.projected_window(time, ego) else {
            return false;
        };
        self.slack(ego) < 0.0 && tau0.overlaps(&tau1)
    }

    fn in_boundary_safe_set(
        &self,
        time: f64,
        ego: &VehicleState,
        window: Option<Interval>,
    ) -> bool {
        // Direct implementation of paper Eq. 3: the state is in X_b iff some
        // admissible control reaches X_u within one step. The paper's closed
        // form only bounds the slack decrease; it misses that the control
        // also shifts the ego's projected window τ₀, so a state with no
        // current overlap can still be one accelerating step from X_u. The
        // slack part is monotone in the control, and the overlap part varies
        // continuously, so a dense acceleration grid (with both extremes)
        // decides membership; `slack_pre` screens out states that cannot go
        // negative in one step at all (the paper's closed-form bound).
        if window.is_none() {
            return false;
        }
        if self.in_unsafe_set(time, ego, window) {
            return false; // already unsafe, not "boundary safe"
        }
        let s = self.slack(ego);
        if s >= self.boundary_threshold(ego) {
            return false; // slack cannot reach zero within one step
        }
        const GRID: usize = 16;
        let (a_min, a_max) = (self.ego_limits.a_min(), self.ego_limits.a_max());
        (0..=GRID).any(|i| {
            let a = a_min + (a_max - a_min) * i as f64 / GRID as f64;
            let next = self.ego_limits.step(ego, a, self.dt_c);
            self.in_unsafe_set(time + self.dt_c, &next, window)
        })
    }

    fn emergency_accel(&self, _time: f64, ego: &VehicleState, _window: Option<Interval>) -> f64 {
        // Materially inside (or past) the real line: zone entry already
        // happened — escape as fast as possible. Sub-ENTRY_EPS penetrations
        // are floating-point artifacts of an exact-line stop and are
        // treated as "at the line" below.
        if ego.position > self.geometry.p_f + crate::Geometry::ENTRY_EPS {
            return self.ego_limits.a_max();
        }
        // Truly committed (cannot stop before the *real* line): entry is
        // unavoidable, so rush to minimise exposure. Never brake a
        // committed vehicle — that parks it inside the zone. Commitment is
        // only reachable through the certified dive exception, so rushing
        // clears the zone before the window's earliest possible arrival.
        // Stop feasibility is computed directly against the line (not via
        // `slack`, whose branch switch at `p_f` would misclassify an
        // at-the-line stop); the tolerance absorbs drift on the neutrally
        // stable exact-corner braking trajectory.
        let gap_to_line = (self.geometry.p_f - ego.position).max(0.0);
        let d_b = braking_distance(
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_min(),
        );
        if d_b > gap_to_line + Self::RUSH_TOLERANCE {
            return self.ego_limits.a_max();
        }
        // Stopping before the real line is feasible: least required
        // braking, aimed a margin short of the *virtual* line so the
        // asymptotic stop stays robustly outside the zone. (In the narrow
        // band where the virtual line is already lost but the real one is
        // not, this clamps to full braking and stops within the margin.)
        let gap = self.p_f_monitor() - Self::STOP_MARGIN - ego.position;
        if gap <= 1e-9 {
            self.ego_limits.a_min()
        } else {
            let v = self.ego_limits.clamp_velocity(ego.velocity);
            self.ego_limits.clamp_accel(-v * v / (2.0 * gap))
        }
    }

    fn requires_emergency(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        let Some(w) = window else {
            return false; // oncoming traffic has cleared: nothing to shield
        };
        if ego.position > self.geometry.p_b {
            return false; // crossing complete
        }
        // Commit protection: stopping is no longer possible while the
        // conflict window is open — κ_e decides rush vs. delay.
        if self.is_committed(ego) {
            return true;
        }
        // Dive exception: the NN may keep control close to the line when a
        // full-throttle crossing provably beats the earliest possible
        // arrival — even if the NN then hesitates, commit protection
        // completes the manoeuvre within the proven envelope.
        if self.rush_is_provably_safe(time, ego, &w) {
            return false;
        }
        // Creep exception: even at full throttle the ego physically cannot
        // reach the front line before the *latest possible exit* of the
        // oncoming vehicle. The earliest absolute entry time never
        // decreases along any trajectory, and `w.hi` bounded the actual
        // exit when this was first certified, so the exception is robust
        // to later estimate wobble.
        if time + self.earliest_entry_time(ego) > w.hi() + Self::DIVE_MARGIN {
            return false;
        }
        // Brake band: within one control step of losing stoppability, with
        // the window still open. Unlike paper Eq. 3 this does NOT require
        // current window overlap: the window estimate can shift between
        // steps (new information), so overlap-gated braking is not sound.
        self.monitor_slack(ego) < self.boundary_threshold(ego)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;

    fn scenario() -> LeftTurnScenario {
        LeftTurnScenario::paper_default(52.0).unwrap()
    }

    fn exact_estimate(u: f64, v: f64, a: f64) -> VehicleEstimate {
        VehicleEstimate::exact(0.0, VehicleState::new(u, v, a))
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            LeftTurnScenario::new(
                Geometry {
                    p_f: 15.0,
                    p_b: 5.0
                },
                VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap(),
                VehicleLimits::new(3.0, 14.0, -3.0, 3.0).unwrap(),
                52.0,
                0.05,
            ),
            Err(ScenarioError::EmptyConflictZone)
        ));
        assert!(matches!(
            LeftTurnScenario::paper_default(10.0),
            Err(ScenarioError::OtherStartsInsideZone)
        ));
    }

    #[test]
    fn frame_mapping() {
        let s = scenario();
        // C1 starts at shared 52: it enters the zone (shared 15) after 37 m
        // and exits (shared 5) after 47 m.
        assert_eq!(s.other_entry(), 37.0);
        assert_eq!(s.other_exit(), 47.0);
    }

    #[test]
    fn slack_branches_match_eq5() {
        let s = scenario();
        // Before the front line, v = 6: d_b = 36/12 = 3.
        let ego = VehicleState::new(-10.0, 6.0, 0.0);
        assert!((s.slack(&ego) - (5.0 - 3.0 + 10.0)).abs() < 1e-12);
        // Inside the zone: slack = p0 - p_b < 0.
        let inside = VehicleState::new(8.0, 6.0, 0.0);
        assert_eq!(s.slack(&inside), 8.0 - 15.0);
        // Past the zone.
        assert_eq!(s.slack(&VehicleState::new(15.1, 6.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn projected_window_before_and_inside_zone() {
        let s = scenario();
        let ego = VehicleState::new(-5.0, 5.0, 0.0);
        let w = s.projected_window(10.0, &ego).unwrap();
        assert!((w.lo() - 12.0).abs() < 1e-12); // (5 - (-5))/5 = 2 s
        assert!((w.hi() - 14.0).abs() < 1e-12); // (15 - (-5))/5 = 4 s
        let inside = s
            .projected_window(10.0, &VehicleState::new(10.0, 5.0, 0.0))
            .unwrap();
        assert_eq!(inside.lo(), 10.0);
        assert!((inside.hi() - 11.0).abs() < 1e-12);
        // Stopped before the zone: no projection.
        assert!(s
            .projected_window(10.0, &VehicleState::new(-5.0, 0.0, 0.0))
            .is_none());
        // Past the zone: no projection.
        assert!(s
            .projected_window(10.0, &VehicleState::new(16.0, 5.0, 0.0))
            .is_none());
    }

    #[test]
    fn conservative_window_brackets_constant_speed_passage() {
        let s = scenario();
        // C1 at u = 0 doing 10 m/s: constant-speed entry at 3.7 s, exit 4.7 s.
        let w = s
            .conservative_window(0.0, &exact_estimate(0.0, 10.0, 0.0))
            .unwrap();
        assert!(w.lo() < 3.7);
        assert!(w.hi() > 4.7);
        // Fastest possible: accelerate at 3 to 14 m/s — entry not before
        // that; check the bound is not absurdly loose either.
        assert!(w.lo() > 2.0, "lo {}", w.lo());
    }

    #[test]
    fn conservative_window_widens_with_estimate_uncertainty() {
        let s = scenario();
        let tight = s
            .conservative_window(0.0, &exact_estimate(10.0, 10.0, 0.0))
            .unwrap();
        let wide_est = VehicleEstimate::from_intervals(
            0.0,
            Interval::new(5.0, 15.0),
            Interval::new(8.0, 12.0),
            Interval::new(-1.0, 1.0),
        );
        let wide = s.conservative_window(0.0, &wide_est).unwrap();
        assert!(wide.contains_interval(&tight));
        assert!(wide.width() > tight.width());
    }

    #[test]
    fn aggressive_window_is_inside_conservative() {
        let s = scenario();
        let est = exact_estimate(5.0, 10.0, 0.5);
        let cons = s.conservative_window(0.0, &est).unwrap();
        let aggr = s
            .aggressive_window(0.0, &est, &AggressiveConfig::default())
            .unwrap();
        assert!(cons.contains_interval(&aggr), "cons {cons} aggr {aggr}");
        assert!(aggr.width() < cons.width());
        // And the nominal (true constant-speed) passage is inside both.
        let nom = s.nominal_window(0.0, &est).unwrap();
        assert!(aggr.expand(1e-9).contains_interval(&nom));
    }

    #[test]
    fn windows_are_none_after_c1_clears() {
        let s = scenario();
        let est = exact_estimate(48.0, 10.0, 0.0); // past exit at 47
        assert!(s.conservative_window(0.0, &est).is_none());
        assert!(s.nominal_window(0.0, &est).is_none());
        assert!(s
            .aggressive_window(0.0, &est, &AggressiveConfig::default())
            .is_none());
    }

    #[test]
    fn window_starts_now_when_c1_inside_zone() {
        let s = scenario();
        let est = exact_estimate(40.0, 10.0, 0.0); // between 37 and 47
        let w = s.conservative_window(3.0, &est).unwrap();
        assert_eq!(w.lo(), 3.0);
    }

    #[test]
    fn unsafe_set_requires_negative_slack_and_overlap() {
        let s = scenario();
        let window = Some(Interval::new(1.0, 3.0));
        // Fast and close: cannot stop (slack < 0), and the projection
        // overlaps the window => unsafe.
        let doomed = VehicleState::new(0.0, 12.0, 0.0); // d_b = 12 > 5
        assert!(s.slack(&doomed) < 0.0);
        assert!(s.in_unsafe_set(0.0, &doomed, window));
        // Same state, window already over => not unsafe.
        assert!(!s.in_unsafe_set(10.0, &doomed, None));
        // Slow and far: slack >= 0 => not unsafe.
        let safe = VehicleState::new(-20.0, 5.0, 0.0);
        assert!(!s.in_unsafe_set(0.0, &safe, window));
    }

    #[test]
    fn boundary_set_is_a_band_above_zero_slack() {
        let s = scenario();
        let window = Some(Interval::new(0.0, 100.0));
        // Construct states with tiny positive slack: v = 6 -> d_b = 3;
        // slack = 5 - 3 - p0. p0 = 1.9 -> slack = 0.1.
        let near = VehicleState::new(1.9, 6.0, 0.0);
        let slack = s.slack(&near);
        assert!(slack > 0.0 && slack < s.boundary_threshold(&near));
        assert!(s.in_boundary_safe_set(0.0, &near, window));
        // Larger slack is out of the band.
        let far = VehicleState::new(-10.0, 6.0, 0.0);
        assert!(!s.in_boundary_safe_set(0.0, &far, window));
        // Without overlap, never in the boundary set.
        assert!(!s.in_boundary_safe_set(0.0, &near, Some(Interval::new(90.0, 95.0))));
    }

    #[test]
    fn emergency_planner_brakes_before_and_rushes_when_committed() {
        let s = scenario();
        // 10 m before the line at 6 m/s: decel to stop STOP_MARGIN short of
        // the virtual line = 36 / (2 * (10 - 0.05 - 0.2)).
        let a = s.emergency_accel(0.0, &VehicleState::new(-5.0, 6.0, 0.0), None);
        assert!((a + 36.0 / (2.0 * 9.75)).abs() < 1e-12, "{a}");
        // Inside the zone with no window: full throttle escape.
        assert_eq!(
            s.emergency_accel(0.0, &VehicleState::new(8.0, 6.0, 0.0), None),
            s.ego_limits().a_max()
        );
        // At the line with speed: committed; the window opens far in the
        // future, so rushing provably clears => full throttle.
        assert_eq!(
            s.emergency_accel(
                0.0,
                &VehicleState::new(5.0, 6.0, 0.0),
                Some(Interval::new(50.0, 60.0))
            ),
            s.ego_limits().a_max()
        );
        // Committed *between the virtual and real line* with the window
        // imminent: hold before the real line.
        assert_eq!(
            s.emergency_accel(
                0.0,
                &VehicleState::new(4.97, 0.5, 0.0),
                Some(Interval::new(0.5, 6.0))
            ),
            s.ego_limits().a_min()
        );
        // Inside the real zone with the window imminent: escape regardless.
        assert_eq!(
            s.emergency_accel(
                0.0,
                &VehicleState::new(8.0, 3.0, 0.0),
                Some(Interval::new(0.5, 6.0))
            ),
            s.ego_limits().a_max()
        );
        // Stopped comfortably before the line: zero accel (hold).
        assert_eq!(
            s.emergency_accel(0.0, &VehicleState::new(-5.0, 0.0, 0.0), None),
            0.0
        );
    }

    #[test]
    fn commit_protection_extends_the_emergency_region() {
        let s = scenario();
        let window = Some(Interval::new(0.0, 100.0));
        // Too fast too close: slack < 0, not in X_b, but the monitor must
        // escalate anyway (the NN may not be trusted to finish the dive).
        let committed = VehicleState::new(0.0, 12.0, 0.0); // d_b = 12 > 5
        assert!(s.slack(&committed) < 0.0);
        assert!(!s.in_boundary_safe_set(0.0, &committed, window));
        assert!(s.requires_emergency(0.0, &committed, window));
        // Without a window there is nothing to protect against.
        assert!(!s.requires_emergency(0.0, &committed, None));
        // Comfortably stoppable: no emergency.
        let safe = VehicleState::new(-20.0, 5.0, 0.0);
        assert!(!s.requires_emergency(0.0, &safe, window));
    }

    /// Paper Eq. 4 contract: from any boundary-safe-set state, one emergency
    /// step keeps the slack nonnegative (stays in the safe set), and by
    /// induction repeated emergency steps never enter the zone.
    #[test]
    fn emergency_invariance_holds_from_boundary_states() {
        let s = scenario();
        let lims = s.ego_limits();
        let window = Some(Interval::new(0.0, 1e5));
        let mut checked = 0;
        for vi in 0..=60 {
            let v = vi as f64 * 0.2; // 0..12
            for pi in 0..200 {
                let p = -10.0 + pi as f64 * 0.075;
                let ego = VehicleState::new(p, v, 0.0);
                if !s.in_boundary_safe_set(0.0, &ego, window) {
                    continue;
                }
                checked += 1;
                // Run κ_e until (almost) stopped; the ego must never cross
                // the real front line.
                let mut cur = ego;
                for step in 0..2000 {
                    let a = s.emergency_accel(step as f64 * s.dt_c(), &cur, window);
                    cur = lims.step(&cur, a, s.dt_c());
                    assert!(
                        cur.position <= s.geometry().p_f + 1e-6,
                        "entered zone from boundary state p={p}, v={v} at step {step}"
                    );
                    if cur.velocity < 1e-3 {
                        break;
                    }
                }
            }
        }
        assert!(checked > 50, "only {checked} boundary states sampled");
    }

    /// Boundary coverage (paper Eq. 3): a state that is neither unsafe nor
    /// in the boundary set cannot reach the unsafe set in one step, for any
    /// admissible control.
    #[test]
    fn boundary_set_covers_one_step_reachability() {
        let s = scenario();
        let lims = s.ego_limits();
        let window = Some(Interval::new(0.0, 1e5));
        for vi in 0..=24 {
            let v = vi as f64 * 0.5;
            for pi in 0..=300 {
                let p = -20.0 + pi as f64 * 0.12;
                let ego = VehicleState::new(p, v, 0.0);
                if s.in_unsafe_set(0.0, &ego, window) || s.in_boundary_safe_set(0.0, &ego, window) {
                    continue;
                }
                for ai in 0..=12 {
                    let a = lims.a_min() + ai as f64 * (lims.a_max() - lims.a_min()) / 12.0;
                    let next = lims.step(&ego, a, s.dt_c());
                    assert!(
                        !s.in_unsafe_set(s.dt_c(), &next, window),
                        "one-step escape to X_u from p={p}, v={v} with a={a}"
                    );
                }
            }
        }
    }
}
