//! Passing-time estimation for the oncoming vehicle (paper Eqs. 7 and 8).
//!
//! Everything reduces to one kinematic primitive, [`time_to_cover`]: the
//! time for a vehicle at speed `v` applying constant acceleration `a` (until
//! its speed saturates) to cover a distance `d`. The paper's Eq. 7 is the
//! `a > 0` branch with saturation at `v_max`; the `τ_1,max` counterpart is
//! the `a < 0` branch with saturation at `v_min`.
//!
//! Note: the paper's printed Eq. 7 discriminant reads
//! `√(v² + a·(p_f − p_1))`; the kinematically correct closed form (and what
//! we implement) is `√(v² + 2·a·d)` — solving `d = v·t + ½at²`.

/// Cap used to represent "never" / unbounded passing times while keeping
/// every interval finite (seconds). One million seconds ≈ 11 days, far
/// beyond any episode horizon.
pub const TAU_CAP: f64 = 1.0e6;

/// Earliest/latest time to cover `d ≥ 0` metres starting at speed `v`,
/// applying constant acceleration `a` until the speed saturates at `v_cap`
/// (when `a > 0`) or at `v_floor` (when `a < 0`), then cruising.
///
/// Returns [`TAU_CAP`] when the distance is never covered (e.g. the vehicle
/// decelerates to a standstill short of `d`). Returns `0` for `d ≤ 0`.
///
/// # Panics
///
/// Panics in debug builds if `v < 0`, `v_floor < 0` or `v_cap < v_floor`.
///
/// # Example
///
/// ```
/// use left_turn::time_to_cover;
///
/// // 10 m/s, no acceleration: 35 m takes 3.5 s.
/// assert!((time_to_cover(35.0, 10.0, 0.0, 0.0, 20.0) - 3.5).abs() < 1e-12);
/// // Full braking (-5 m/s²) from 10 m/s covers only 10 m: 35 m is never reached.
/// assert_eq!(time_to_cover(35.0, 10.0, -5.0, 0.0, 20.0), left_turn::TAU_CAP);
/// ```
pub fn time_to_cover(d: f64, v: f64, a: f64, v_floor: f64, v_cap: f64) -> f64 {
    debug_assert!(v >= 0.0, "speed must be nonnegative, got {v}");
    debug_assert!(v_floor >= 0.0, "v_floor must be nonnegative");
    debug_assert!(v_cap >= v_floor, "v_cap must be >= v_floor");
    if d <= 0.0 {
        return 0.0;
    }
    let v = v.clamp(v_floor, v_cap);
    if a > 0.0 {
        // Accelerate to v_cap, then cruise.
        let t_sat = (v_cap - v) / a;
        let d_sat = v * t_sat + 0.5 * a * t_sat * t_sat;
        if d <= d_sat {
            ((-v + (v * v + 2.0 * a * d).sqrt()) / a).min(TAU_CAP)
        } else if v_cap > 0.0 {
            (t_sat + (d - d_sat) / v_cap).min(TAU_CAP)
        } else {
            TAU_CAP
        }
    } else if a < 0.0 {
        // Decelerate to v_floor, then cruise.
        let t_sat = (v_floor - v) / a; // >= 0 since v >= v_floor, a < 0
        let d_sat = v * t_sat + 0.5 * a * t_sat * t_sat;
        if d <= d_sat {
            // First passage of d during the deceleration phase:
            // ½at² + vt = d, smaller root of the downward parabola.
            let disc = v * v + 2.0 * a * d;
            debug_assert!(disc >= -1e-9, "first passage must exist when d <= d_sat");
            ((-v + disc.max(0.0).sqrt()) / a).min(TAU_CAP)
        } else if v_floor > 0.0 {
            (t_sat + (d - d_sat) / v_floor).min(TAU_CAP)
        } else {
            TAU_CAP
        }
    } else if v > 0.0 {
        (d / v).min(TAU_CAP)
    } else {
        TAU_CAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_instant() {
        assert_eq!(time_to_cover(0.0, 5.0, 1.0, 0.0, 10.0), 0.0);
        assert_eq!(time_to_cover(-3.0, 5.0, 1.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn accelerating_branch_pre_saturation() {
        // v=4, a=2: d = 4t + t². d=12 -> t=2.
        let t = time_to_cover(12.0, 4.0, 2.0, 0.0, 100.0);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn accelerating_branch_with_saturation() {
        // v=8, a=2, cap=10: saturates at t=1 having covered 9 m; 19 m total
        // needs one more second at 10 m/s.
        let t = time_to_cover(19.0, 8.0, 2.0, 0.0, 10.0);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn decelerating_branch_first_passage() {
        // v=10, a=-2: d = 10t - t². d=9 -> t=1.
        let t = time_to_cover(9.0, 10.0, -2.0, 0.0, 20.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decelerating_branch_with_floor_cruise() {
        // v=10, a=-2, floor=6: decelerates for 2 s covering 16 m, then
        // cruises at 6 m/s; 28 m total takes 2 + 2 = 4 s.
        let t = time_to_cover(28.0, 10.0, -2.0, 6.0, 20.0);
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stopping_short_returns_cap() {
        // v=10, a=-5, floor 0: stops after 10 m; 11 m is unreachable.
        assert_eq!(time_to_cover(11.0, 10.0, -5.0, 0.0, 20.0), TAU_CAP);
        // Standing still with no acceleration never covers anything.
        assert_eq!(time_to_cover(1.0, 0.0, 0.0, 0.0, 20.0), TAU_CAP);
    }

    #[test]
    fn paper_eq7_two_branch_agreement_at_threshold() {
        // At exactly d = d_th the two branches of Eq. 7 must agree.
        let (v, a, v_max) = (8.0, 2.0, 12.0);
        let d_th = (v_max * v_max - v * v) / (2.0 * a);
        let t_quad = time_to_cover(d_th - 1e-12, v, a, 0.0, v_max);
        let t_lin = time_to_cover(d_th + 1e-12, v, a, 0.0, v_max);
        assert!((t_quad - t_lin).abs() < 1e-6);
        // And both equal the paper's first branch formula:
        let paper = (v_max - v) / a + (d_th - d_th) / v_max;
        assert!((t_lin - paper).abs() < 1e-6);
    }

    cv_rng::props! {
        /// The closed form must match step-wise numerical integration of the
        /// same saturated dynamics.
        fn matches_numerical_integration(
            d in 0.1..60.0f64,
            v in 0.0..14.0f64,
            a in -3.0..3.0f64,
        ) {
            let (v_floor, v_cap) = (1.0, 14.0);
            let t_closed = time_to_cover(d, v, a, v_floor, v_cap);
            // Integrate at 1 ms with trapezoidal position updates (exact for
            // the piecewise-linear velocity profile away from the single
            // saturation instant).
            let dt = 1e-3;
            let mut pos = 0.0;
            let mut vel = v.clamp(v_floor, v_cap);
            let mut t_num = TAU_CAP;
            let mut t = 0.0;
            while t < 80.0 {
                let v_next = (vel + a * dt).clamp(v_floor, v_cap);
                pos += 0.5 * (vel + v_next) * dt;
                vel = v_next;
                t += dt;
                if pos >= d {
                    t_num = t;
                    break;
                }
            }
            if t_closed < 70.0 {
                assert!((t_closed - t_num).abs() < 0.01,
                    "closed {t_closed} vs numeric {t_num} (d={d}, v={v}, a={a})");
            }
        }

        /// More distance never takes less time.
        fn monotone_in_distance(
            d1 in 0.0..50.0f64,
            extra in 0.0..20.0f64,
            v in 0.0..14.0f64,
            a in -3.0..3.0f64,
        ) {
            let t1 = time_to_cover(d1, v, a, 1.0, 14.0);
            let t2 = time_to_cover(d1 + extra, v, a, 1.0, 14.0);
            assert!(t2 + 1e-9 >= t1);
        }

        /// Faster assumed acceleration never increases arrival time.
        fn monotone_in_accel(
            d in 0.1..50.0f64,
            v in 1.0..14.0f64,
            a1 in -3.0..3.0f64,
            bump in 0.0..3.0f64,
        ) {
            let t_slow = time_to_cover(d, v, a1, 1.0, 14.0);
            let t_fast = time_to_cover(d, v, a1 + bump, 1.0, 14.0);
            assert!(t_fast <= t_slow + 1e-9);
        }
    }
}
