//! Unprotected left turn case study (paper Section IV).
//!
//! The ego vehicle `C_0` turns left across the path of an oncoming vehicle
//! `C_1`; both paths are fixed, so the system is one-dimensional. A collision
//! is possible only inside the *conflict zone* (the paper's red rectangle),
//! the band `[p_f, p_b]` on the ego axis.
//!
//! This crate implements every closed form of Section IV on top of the
//! `safe-shield` framework:
//!
//! * slack `s(t)` and the projected passing window `[τ_0,min, τ_0,max]`
//!   (Eq. 5),
//! * the unsafe set `X_u` (Eq. 6) and the boundary safe set `X_b` with the
//!   derived one-step slack-decrease bound,
//! * conservative (Eq. 7), nominal, and aggressive (Eq. 8) estimates of
//!   `C_1`'s passing window `[τ_1,min, τ_1,max]`, all generalised to
//!   interval-valued state estimates,
//! * the emergency planner `κ_e` (least-required braking before the zone,
//!   full throttle inside it).
//!
//! # Frames
//!
//! `C_1` approaches from the opposite direction, so on the shared ego axis
//! its coordinate *decreases*. Internally `C_1` lives in its own forward
//! frame (position increases from 0); the scenario stores where the conflict
//! zone lies in that frame ([`LeftTurnScenario::other_entry`] /
//! [`LeftTurnScenario::other_exit`]). V2V messages and sensor readings carry
//! forward-frame values, so no conversion is needed anywhere in the
//! estimation pipeline.
//!
//! # Example
//!
//! ```
//! use left_turn::LeftTurnScenario;
//! use safe_shield::Scenario;
//! use cv_dynamics::VehicleState;
//!
//! // C1 starts 52 m down the shared axis (37 m from entering the zone).
//! let scenario = LeftTurnScenario::paper_default(52.0)?;
//! // The ego has passed the zone once beyond the back line.
//! assert!(scenario.target_reached(10.0, &VehicleState::new(15.1, 5.0, 0.0)));
//! # Ok::<(), left_turn::ScenarioError>(())
//! ```

mod geometry;
mod scenario;
mod tau;
pub mod verify;

pub use geometry::{Geometry, ScenarioError};
pub use scenario::LeftTurnScenario;
pub use tau::{time_to_cover, TAU_CAP};
