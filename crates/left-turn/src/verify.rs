//! Offline verification of the shield's two inductive properties.
//!
//! The paper's safety argument (§III-E) rests on two facts about the
//! scenario implementation:
//!
//! 1. **Boundary coverage** (Eq. 3): from any state that is neither unsafe
//!    nor flagged by the monitor, no admissible one-step control reaches the
//!    unsafe set.
//! 2. **Emergency invariance** (Eq. 4): from any state the monitor flags
//!    (while stopping is still possible), the emergency planner keeps the
//!    ego out of the conflict zone forever.
//!
//! The paper argues these on paper; [`check_invariants`] checks them
//! *computationally* over a dense grid of ego states and window
//! configurations — the offline counterpart of the paper's claim that *"it
//! does not require extra resources for safety verification during
//! runtime"*. Run it once per scenario parameterisation (it is also wired
//! into the test suite and a criterion bench).

use cv_dynamics::VehicleState;
use cv_estimation::Interval;
use safe_shield::Scenario;

use crate::LeftTurnScenario;

/// Grid resolution for [`check_invariants`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyGrid {
    /// Ego positions checked, from `p_min` to the back line.
    pub p_min: f64,
    /// Position step (m).
    pub p_step: f64,
    /// Velocity step (m/s).
    pub v_step: f64,
    /// Acceleration samples per one-step successor check.
    pub accel_samples: usize,
    /// Window start offsets (s, relative to now) checked.
    pub window_offsets: Vec<f64>,
    /// Window lengths (s) checked.
    pub window_lengths: Vec<f64>,
}

impl Default for VerifyGrid {
    fn default() -> Self {
        Self {
            p_min: -25.0,
            p_step: 0.25,
            v_step: 0.25,
            accel_samples: 12,
            window_offsets: vec![0.0, 0.5, 1.0, 2.0, 4.0, 8.0],
            window_lengths: vec![0.5, 1.5, 3.0, 8.0, 1e5],
        }
    }
}

impl VerifyGrid {
    /// A coarse grid for quick smoke checks (tests, benches).
    pub fn coarse() -> Self {
        Self {
            p_step: 1.0,
            v_step: 1.0,
            accel_samples: 6,
            window_offsets: vec![0.0, 1.0, 4.0],
            window_lengths: vec![1.0, 1e5],
            ..Self::default()
        }
    }
}

/// One counterexample found by the verifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Violation {
    /// Which property failed.
    pub kind: ViolationKind,
    /// Ego state at the violation.
    pub ego: VehicleState,
    /// The window configuration.
    pub window: Interval,
    /// The control input that broke boundary coverage (`None` for
    /// emergency-invariance violations).
    pub accel: Option<f64>,
}

/// The two checkable properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A nominal (NN-controlled) state reached the unsafe set in one step.
    BoundaryCoverage,
    /// The emergency planner let a flagged state cross the front line while
    /// a stop was still owed.
    EmergencyInvariance,
}

/// Verification report: states checked and any counterexamples (capped).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Number of `(state, window)` pairs examined.
    pub states_checked: u64,
    /// Committed `(state, window)` pairs pruned as unreachable (the shield
    /// only creates *certified* commitments; see
    /// [`LeftTurnScenario::commitment_is_certified`]).
    pub unreachable_pruned: u64,
    /// Counterexamples found (at most [`VerifyReport::MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// The report stops collecting after this many counterexamples.
    pub const MAX_VIOLATIONS: usize = 32;

    /// `true` when no property was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "verified: {} state/window pairs, no violations",
                self.states_checked
            )
        } else {
            write!(
                f,
                "FAILED: {} violations in {} state/window pairs (first: {:?})",
                self.violations.len(),
                self.states_checked,
                self.violations[0]
            )
        }
    }
}

/// Checks boundary coverage and emergency invariance over a state grid.
///
/// For every grid state and window:
///
/// * if the monitor would let the NN drive, every sampled one-step control
///   must stay out of the estimated unsafe set **or** end in a state the
///   monitor itself protects (the inductive step) — covering both the paper
///   Eq. 3 obligation and the dive/creep exceptions;
/// * if the monitor flags the state while a stop is still physically owed,
///   rolling `κ_e` forward must never cross the real front line before the
///   window is re-evaluated (we roll with the window frozen, the worst
///   case).
///
/// # Example
///
/// ```
/// use left_turn::{LeftTurnScenario, verify};
///
/// let scenario = LeftTurnScenario::paper_default(52.0)?;
/// let report = verify::check_invariants(&scenario, &verify::VerifyGrid::coarse());
/// assert!(report.is_clean(), "{report}");
/// # Ok::<(), left_turn::ScenarioError>(())
/// ```
pub fn check_invariants(scenario: &LeftTurnScenario, grid: &VerifyGrid) -> VerifyReport {
    let lims = scenario.ego_limits();
    let mut report = VerifyReport {
        states_checked: 0,
        unreachable_pruned: 0,
        violations: Vec::new(),
    };

    let p_max = scenario.geometry().p_b;
    let mut windows = Vec::new();
    for &off in &grid.window_offsets {
        for &len in &grid.window_lengths {
            windows.push(Interval::new(off, (off + len).min(1e6)));
        }
    }

    let mut p = grid.p_min;
    while p <= p_max {
        let mut v = lims.v_min();
        while v <= lims.v_max() {
            let ego = VehicleState::new(p, v, 0.0);
            for w in &windows {
                if report.violations.len() >= VerifyReport::MAX_VIOLATIONS {
                    return report;
                }
                report.states_checked += 1;
                let window = Some(*w);
                if scenario.in_unsafe_set(0.0, &ego, window) {
                    continue; // already lost: not reachable under the shield
                }
                if scenario.is_committed(&ego) && !scenario.commitment_is_certified(0.0, &ego, w) {
                    // The shield never creates uncertified commitments.
                    report.unreachable_pruned += 1;
                    continue;
                }
                if scenario.requires_emergency(0.0, &ego, window) {
                    check_emergency(scenario, ego, *w, &mut report);
                } else {
                    check_coverage(scenario, ego, *w, grid.accel_samples, &mut report);
                }
            }
            v += grid.v_step;
        }
        p += grid.p_step;
    }
    report
}

/// Rolls the emergency planner forward from `start` with the window frozen
/// at its pessimal interpretation, and reports whether the ego ever occupies
/// the conflict zone while the window is open. A vehicle that stops before
/// the front line, or that clears the back line outside the window, is safe.
fn emergency_rolls_clear(scenario: &LeftTurnScenario, start: VehicleState, w: Interval) -> bool {
    let lims = scenario.ego_limits();
    let dt = scenario.dt_c();
    let geometry = scenario.geometry();
    let mut cur = start;
    for step in 0..8000 {
        let t = step as f64 * dt;
        if geometry.contains_ego(cur.position) && w.overlaps(&Interval::new(t, t)) {
            return false; // in the zone while the window is open
        }
        if cur.position > geometry.p_b {
            return true; // cleared the zone
        }
        if cur.velocity <= 1e-3 && !geometry.contains_ego(cur.position) && t > w.hi() {
            return true; // parked at/before the line past the window
        }
        let a = scenario.emergency_accel(t, &cur, Some(w));
        cur = lims.step(&cur, a, dt);
        if cur.velocity <= 1e-3 && !geometry.contains_ego(cur.position) {
            // Stopped at/before the stop line (up to the entry tolerance):
            // it stays there until the window clears; never inside the zone.
            return true;
        }
    }
    false // did not conclusively clear within the horizon
}

/// Inductive step for NN-controlled states: every one-step successor must
/// either stay out of the (estimated) unsafe set, or be a monitor-protected
/// state from which the emergency planner physically avoids co-occupying
/// the zone with the window. (The latter covers the dive exception, whose
/// successors enter the paper's over-approximate `X_u` while provably
/// clearing before the window's earliest arrival.)
fn check_coverage(
    scenario: &LeftTurnScenario,
    ego: VehicleState,
    w: Interval,
    accel_samples: usize,
    report: &mut VerifyReport,
) {
    let lims = scenario.ego_limits();
    let dt = scenario.dt_c();
    for i in 0..=accel_samples {
        let a = lims.a_min() + (lims.a_max() - lims.a_min()) * i as f64 / accel_samples as f64;
        let next = lims.step(&ego, a, dt);
        let window = Some(w);
        if !scenario.in_unsafe_set(dt, &next, window) {
            continue;
        }
        let protected = scenario.requires_emergency(dt, &next, window)
            && emergency_rolls_clear(scenario, next, w);
        if !protected {
            report.violations.push(Violation {
                kind: ViolationKind::BoundaryCoverage,
                ego,
                window: w,
                accel: Some(a),
            });
            return;
        }
    }
}

/// Every monitor-flagged state must be physically recoverable by `κ_e`.
fn check_emergency(
    scenario: &LeftTurnScenario,
    ego: VehicleState,
    w: Interval,
    report: &mut VerifyReport,
) {
    if !emergency_rolls_clear(scenario, ego, w) {
        report.violations.push(Violation {
            kind: ViolationKind::EmergencyInvariance,
            ego,
            window: w,
            accel: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_scenario_verifies_cleanly() {
        let scenario = LeftTurnScenario::paper_default(52.0).unwrap();
        let report = check_invariants(&scenario, &VerifyGrid::coarse());
        assert!(report.is_clean(), "{report}");
        assert!(report.states_checked > 1_000);
    }

    #[test]
    fn several_start_positions_verify_cleanly() {
        for start in [50.5, 55.0, 60.0] {
            let scenario = LeftTurnScenario::paper_default(start).unwrap();
            let report = check_invariants(&scenario, &VerifyGrid::coarse());
            assert!(report.is_clean(), "start {start}: {report}");
        }
    }

    #[test]
    fn report_display_is_informative() {
        let clean = VerifyReport {
            states_checked: 10,
            unreachable_pruned: 0,
            violations: vec![],
        };
        assert!(clean.to_string().contains("verified"));
        let dirty = VerifyReport {
            states_checked: 10,
            unreachable_pruned: 0,
            violations: vec![Violation {
                kind: ViolationKind::BoundaryCoverage,
                ego: VehicleState::at_rest(),
                window: Interval::new(0.0, 1.0),
                accel: Some(1.0),
            }],
        };
        assert!(dirty.to_string().contains("FAILED"));
        assert!(!dirty.is_clean());
    }

    /// A denser grid over the critical approach band (slow, so bounded).
    #[test]
    fn dense_grid_near_the_line_verifies_cleanly() {
        let scenario = LeftTurnScenario::paper_default(52.0).unwrap();
        let grid = VerifyGrid {
            p_min: -8.0,
            p_step: 0.1,
            v_step: 0.5,
            accel_samples: 8,
            window_offsets: vec![0.0, 0.3, 1.0, 3.0],
            window_lengths: vec![0.5, 2.0, 1e5],
        };
        let report = check_invariants(&scenario, &grid);
        assert!(report.is_clean(), "{report}");
    }
}
