/// Location of the conflict zone on the shared (ego) axis.
///
/// `p_f` is the *front line* (the ego enters the zone crossing it) and `p_b`
/// the *back line* (the ego leaves the zone crossing it). The paper's
/// experiments place the zone at `[5, 15]` metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Front line `p_f` (m) — where the ego enters the conflict zone.
    pub p_f: f64,
    /// Back line `p_b` (m) — where the ego exits the conflict zone.
    pub p_b: f64,
}

impl Geometry {
    /// The paper's conflict zone `[5, 15]`.
    pub fn paper() -> Self {
        Self {
            p_f: 5.0,
            p_b: 15.0,
        }
    }

    /// Zone length `p_b − p_f`.
    pub fn length(&self) -> f64 {
        self.p_b - self.p_f
    }

    /// Sub-millimetre tolerance on the entry side: penetrations below this
    /// are floating-point artifacts of the exact-stop trajectory, not
    /// physical occupancy.
    pub const ENTRY_EPS: f64 = 1e-9;

    /// Returns `true` if an ego-axis position is inside the zone.
    ///
    /// Half-open on the entry side: the front line *is* the stop line, so a
    /// vehicle whose nose rests exactly on it (up to [`Self::ENTRY_EPS`])
    /// has not entered the zone. This removes a measure-zero boundary
    /// artifact from evaluation and the offline verifier: a vehicle stopped
    /// on the line is not "occupying" the conflict area.
    pub fn contains_ego(&self, position: f64) -> bool {
        position > self.p_f + Self::ENTRY_EPS && position <= self.p_b
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::paper()
    }
}

/// Errors constructing a [`crate::LeftTurnScenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `p_f >= p_b`: the conflict zone is empty or inverted.
    EmptyConflictZone,
    /// `C_1` must start beyond the back line of the zone.
    OtherStartsInsideZone,
    /// The control period must be positive and finite.
    InvalidControlPeriod,
    /// Vehicle limits were rejected.
    Limits(cv_dynamics::LimitsError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::EmptyConflictZone => write!(f, "conflict zone is empty (p_f >= p_b)"),
            ScenarioError::OtherStartsInsideZone => {
                write!(f, "oncoming vehicle must start beyond the conflict zone")
            }
            ScenarioError::InvalidControlPeriod => {
                write!(f, "control period must be positive and finite")
            }
            ScenarioError::Limits(e) => write!(f, "invalid vehicle limits: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Limits(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cv_dynamics::LimitsError> for ScenarioError {
    fn from(e: cv_dynamics::LimitsError) -> Self {
        ScenarioError::Limits(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let g = Geometry::paper();
        assert_eq!(g.length(), 10.0);
        assert!(!g.contains_ego(5.0)); // the stop line itself is outside
        assert!(g.contains_ego(5.01));
        assert!(g.contains_ego(15.0));
        assert!(!g.contains_ego(4.99));
        assert!(!g.contains_ego(15.01));
    }

    #[test]
    fn errors_display() {
        assert!(!ScenarioError::EmptyConflictZone.to_string().is_empty());
        let e: ScenarioError = cv_dynamics::LimitsError::NonFinite.into();
        assert!(e.to_string().contains("limits"));
    }
}
