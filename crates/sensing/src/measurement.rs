/// One sensor measurement of another vehicle, taken at `stamp`.
///
/// Unlike a V2V [`cv_comm::Message`] the values here are *inaccurate*
/// (bounded uniform noise) but never delayed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Index of the measured vehicle.
    pub target: usize,
    /// Time of the measurement, in seconds (no delay).
    pub stamp: f64,
    /// Measured position `p_s` (target's forward frame), in metres.
    pub position: f64,
    /// Measured velocity `v_s`, in m/s.
    pub velocity: f64,
    /// Measured acceleration `a_s`, in m/s².
    pub acceleration: f64,
}

impl Measurement {
    /// Creates a measurement record.
    pub fn new(target: usize, stamp: f64, position: f64, velocity: f64, acceleration: f64) -> Self {
        Self {
            target,
            stamp,
            position,
            velocity,
            acceleration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_roundtrip() {
        let m = Measurement::new(2, 1.5, 40.0, 9.0, -0.5);
        assert_eq!(m.target, 2);
        assert_eq!(m.stamp, 1.5);
        assert_eq!(m.position, 40.0);
    }
}
