use cv_dynamics::VehicleState;
use cv_rng::{Rng, SplitMix64};

use crate::Measurement;

/// Sensor noise bounds `(δ_p, δ_v, δ_a)`.
///
/// Each measured quantity is the true value plus noise drawn uniformly from
/// `[−δ, +δ]`. The paper's "messages lost" sweep uses
/// `δ_p = δ_v = δ_a = 1 + 0.2·j` (see [`SensorNoise::uniform`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorNoise {
    /// Position uncertainty bound `δ_p` (m).
    pub delta_p: f64,
    /// Velocity uncertainty bound `δ_v` (m/s).
    pub delta_v: f64,
    /// Acceleration uncertainty bound `δ_a` (m/s²).
    pub delta_a: f64,
}

impl SensorNoise {
    /// Creates noise bounds from the three deltas.
    ///
    /// # Panics
    ///
    /// Panics if any bound is negative or non-finite.
    pub fn new(delta_p: f64, delta_v: f64, delta_a: f64) -> Self {
        assert!(
            delta_p >= 0.0 && delta_v >= 0.0 && delta_a >= 0.0,
            "noise bounds must be nonnegative"
        );
        assert!(
            delta_p.is_finite() && delta_v.is_finite() && delta_a.is_finite(),
            "noise bounds must be finite"
        );
        Self {
            delta_p,
            delta_v,
            delta_a,
        }
    }

    /// Equal bounds on all three quantities, as in the paper's sensor
    /// uncertainty sweep (`δ_p = δ_v = δ_a = δ`).
    pub fn uniform(delta: f64) -> Self {
        Self::new(delta, delta, delta)
    }

    /// A noiseless sensor (useful for tests and for "perfect information"
    /// baselines).
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Measurement-noise variance of a quantity with bound `δ`:
    /// `Var[U(−δ, δ)] = δ²/3`. This is the diagonal of the paper's `R`.
    pub fn variance(delta: f64) -> f64 {
        delta * delta / 3.0
    }
}

impl Default for SensorNoise {
    fn default() -> Self {
        Self::uniform(1.0)
    }
}

/// Sensor producing measurements with i.i.d. bounded uniform noise.
///
/// The RNG is seeded so that paired experiments (same episode evaluated under
/// different planners) observe identical noise realisations.
///
/// # Example
///
/// ```
/// use cv_dynamics::VehicleState;
/// use cv_sensing::{SensorNoise, UniformNoiseSensor};
///
/// let mut s = UniformNoiseSensor::new(SensorNoise::none(), 0);
/// let truth = VehicleState::new(10.0, 5.0, 1.0);
/// let m = s.measure(1, 2.0, &truth);
/// assert_eq!(m.position, 10.0); // zero noise bound => exact
/// ```
#[derive(Debug, Clone)]
pub struct UniformNoiseSensor {
    noise: SensorNoise,
    dropout: f64,
    rng: SplitMix64,
}

impl UniformNoiseSensor {
    /// Creates a sensor with the given noise bounds and RNG seed.
    pub fn new(noise: SensorNoise, seed: u64) -> Self {
        Self {
            noise,
            dropout: 0.0,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Adds an i.i.d. per-measurement dropout probability (occlusion,
    /// detector misses). Dropped measurements are reported through
    /// [`UniformNoiseSensor::try_measure`] as `None`.
    ///
    /// # Panics
    ///
    /// Panics if `dropout ∉ [0, 1]`.
    pub fn with_dropout(mut self, dropout: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&dropout),
            "dropout must be in [0, 1], got {dropout}"
        );
        self.dropout = dropout;
        self
    }

    /// The configured noise bounds.
    pub fn noise(&self) -> SensorNoise {
        self.noise
    }

    /// The configured dropout probability.
    pub fn dropout(&self) -> f64 {
        self.dropout
    }

    /// Measures `truth` (the state of vehicle `target`) at time `stamp`.
    ///
    /// Ignores dropout — use [`UniformNoiseSensor::try_measure`] when
    /// dropout is configured.
    pub fn measure(&mut self, target: usize, stamp: f64, truth: &VehicleState) -> Measurement {
        Measurement {
            target,
            stamp,
            position: truth.position + self.draw(self.noise.delta_p),
            velocity: truth.velocity + self.draw(self.noise.delta_v),
            acceleration: truth.acceleration + self.draw(self.noise.delta_a),
        }
    }

    /// Like [`UniformNoiseSensor::measure`], but subject to dropout:
    /// returns `None` when this sensing period produced no detection.
    ///
    /// The dropout decision is drawn even when `dropout == 0`, so sweeping
    /// the dropout probability keeps the noise stream aligned across runs.
    pub fn try_measure(
        &mut self,
        target: usize,
        stamp: f64,
        truth: &VehicleState,
    ) -> Option<Measurement> {
        let dropped = self.rng.random_f64() < self.dropout;
        let m = self.measure(target, stamp, truth);
        (!dropped).then_some(m)
    }

    fn draw(&mut self, delta: f64) -> f64 {
        if delta == 0.0 {
            0.0
        } else {
            self.rng.random_range(-delta..=delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_stays_within_bounds() {
        let mut s = UniformNoiseSensor::new(SensorNoise::new(1.0, 0.5, 0.1), 3);
        let truth = VehicleState::new(100.0, 10.0, 1.0);
        for i in 0..1000 {
            let m = s.measure(1, i as f64 * 0.1, &truth);
            assert!((m.position - 100.0).abs() <= 1.0);
            assert!((m.velocity - 10.0).abs() <= 0.5);
            assert!((m.acceleration - 1.0).abs() <= 0.1);
        }
    }

    #[test]
    fn noise_mean_is_near_zero() {
        let mut s = UniformNoiseSensor::new(SensorNoise::uniform(2.0), 11);
        let truth = VehicleState::new(0.0, 0.0, 0.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| s.measure(1, i as f64, &truth).position)
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn empirical_variance_matches_delta_sq_over_3() {
        let delta = 3.0;
        let mut s = UniformNoiseSensor::new(SensorNoise::uniform(delta), 5);
        let truth = VehicleState::new(0.0, 0.0, 0.0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| s.measure(1, i as f64, &truth).velocity)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let expect = SensorNoise::variance(delta);
        assert!(
            (var - expect).abs() / expect < 0.05,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn seeded_sensor_is_reproducible() {
        let truth = VehicleState::new(1.0, 2.0, 3.0);
        let mut a = UniformNoiseSensor::new(SensorNoise::uniform(1.0), 42);
        let mut b = UniformNoiseSensor::new(SensorNoise::uniform(1.0), 42);
        for i in 0..10 {
            assert_eq!(
                a.measure(1, i as f64, &truth),
                b.measure(1, i as f64, &truth)
            );
        }
    }

    #[test]
    #[should_panic]
    fn negative_bound_panics() {
        let _ = SensorNoise::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn dropout_rate_is_roughly_respected() {
        let mut s = UniformNoiseSensor::new(SensorNoise::uniform(1.0), 4).with_dropout(0.3);
        let truth = VehicleState::new(0.0, 5.0, 0.0);
        let n = 10_000;
        let detections = (0..n)
            .filter(|i| s.try_measure(1, *i as f64, &truth).is_some())
            .count();
        let rate = detections as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.03, "detection rate {rate}");
    }

    #[test]
    fn zero_dropout_always_detects() {
        let mut s = UniformNoiseSensor::new(SensorNoise::uniform(1.0), 4);
        let truth = VehicleState::new(0.0, 5.0, 0.0);
        assert!((0..100).all(|i| s.try_measure(1, i as f64, &truth).is_some()));
    }

    #[test]
    #[should_panic]
    fn invalid_dropout_panics() {
        let _ = UniformNoiseSensor::new(SensorNoise::uniform(1.0), 0).with_dropout(1.5);
    }
}
