//! Onboard sensor substrate.
//!
//! Models the ego vehicle's sensors from paper Section II-A: every `Δt_s`
//! seconds the ego obtains `(p, v, a)` of each other vehicle without delay,
//! but corrupted by *bounded uniform* noise — the measured position lies in
//! `[p − δ_p, p + δ_p]` (uniformly distributed), and likewise `δ_v`, `δ_a`
//! for velocity and acceleration.
//!
//! The bounded support is what lets the information filter derive *hard*
//! intervals from measurements (soundness of the runtime monitor), while the
//! uniform distribution fixes the Kalman filter's measurement covariance to
//! `δ²/3` (variance of `U(−δ, δ)`), exactly the `R` matrix in paper §III-B.
//!
//! # Example
//!
//! ```
//! use cv_dynamics::VehicleState;
//! use cv_sensing::{SensorNoise, UniformNoiseSensor};
//!
//! let mut sensor = UniformNoiseSensor::new(SensorNoise::uniform(2.0), 42);
//! let truth = VehicleState::new(50.0, 10.0, 0.5);
//! let m = sensor.measure(1, 0.0, &truth);
//! assert!((m.position - truth.position).abs() <= 2.0);
//! assert!((m.velocity - truth.velocity).abs() <= 2.0);
//! ```

mod measurement;
mod sensor;

pub use measurement::Measurement;
pub use sensor::{SensorNoise, UniformNoiseSensor};
