//! Deterministic in-process TCP fault-injection proxy.
//!
//! `cv-chaos` sits between a client and a server on loopback and injects
//! network faults according to a seeded, per-connection schedule — the
//! same adversary the paper models *inside* the simulation (delay `Δt_d`,
//! drop `p_d`) turned loose on the service layer itself. Zero external
//! dependencies: `std::net` relay threads plus `cv-rng` for the schedule.
//!
//! # Fault taxonomy
//!
//! Each accepted connection gets a [`ConnPlan`] — one [`Fault`] per
//! direction (client→server and server→client):
//!
//! * [`Fault::Delay`] — added one-shot latency before the first relayed
//!   chunk (a slow path, not a broken one);
//! * [`Fault::Throttle`] — the stream trickles through in small chunks
//!   with pauses (partial writes, tiny congestion window);
//! * [`Fault::Truncate`] — the first `after_bytes` bytes are relayed, then
//!   both directions close cleanly: the peer sees EOF mid-frame;
//! * [`Fault::Reset`] — like truncate but abrupt: sockets are torn down
//!   with data still in flight, so the peer typically observes a reset or
//!   an unexpected EOF with its last write unacknowledged;
//! * [`Fault::SilentDrop`] — after `after_bytes` bytes the relay keeps
//!   *consuming* but stops forwarding: bytes vanish without any signal;
//! * [`Fault::Stall`] — half-open: the connection is accepted and then
//!   nothing is relayed in this direction and no close ever arrives.
//!
//! Cutoffs are *byte counts*, not timers, so where a stream is cut is
//! exactly reproducible from the seed regardless of thread scheduling or
//! read chunking; the time-shaped faults (delay, throttle) use parameters
//! small enough that a sanely-configured client never conflates them with
//! a dead peer.
//!
//! # Determinism contract
//!
//! [`FaultSchedule`] maps `(seed, connection index)` to a plan via
//! `cv-rng` streams. Connections through one proxy are indexed in accept
//! order, so a *sequential* client (connect → fail → reconnect) sees a
//! reproducible plan sequence. For concurrent sessions, give each session
//! its own proxy seeded from a master seed — accept order across
//! concurrent sessions is scheduler noise, per-session proxies make it
//! irrelevant.
//!
//! ```no_run
//! use cv_chaos::{ChaosProxy, ConnPlan, Fault, FaultSchedule};
//!
//! let upstream: std::net::SocketAddr = "127.0.0.1:7878".parse().unwrap();
//! // First two connections get their responses cut after 64 bytes, the
//! // rest pass through clean — a client with retry must converge.
//! let schedule = FaultSchedule::fixed(
//!     ConnPlan::downstream(Fault::Truncate { after_bytes: 64 }),
//!     2,
//! );
//! let proxy = ChaosProxy::start(upstream, schedule).unwrap();
//! let addr = proxy.local_addr(); // point the client here
//! # let _ = addr;
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cv_rng::{derive_seed, split_stream, Rng, SplitMix64};

/// Poll interval for shutdown/abort checks inside relay loops.
const POLL: Duration = Duration::from_millis(25);

/// Deadline for the proxy's own upstream connect.
const UPSTREAM_CONNECT: Duration = Duration::from_secs(5);

/// One injected fault on one direction of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass-through.
    None,
    /// Sleep once before relaying the first chunk.
    Delay {
        /// Added latency in milliseconds.
        millis: u64,
    },
    /// Relay in `chunk`-byte pieces with `pause_millis` between them.
    Throttle {
        /// Bytes per partial write (minimum 1).
        chunk: usize,
        /// Pause between partial writes, in milliseconds.
        pause_millis: u64,
    },
    /// Relay exactly `after_bytes` bytes, then close both directions
    /// cleanly (EOF mid-frame for whatever was in flight).
    Truncate {
        /// Bytes relayed before the cut.
        after_bytes: usize,
    },
    /// Relay exactly `after_bytes` bytes, then tear the connection down
    /// abruptly (reset-style: no orderly half-close sequence).
    Reset {
        /// Bytes relayed before the reset.
        after_bytes: usize,
    },
    /// Relay `after_bytes` bytes, then keep consuming the source but stop
    /// forwarding: bytes disappear with no close and no error.
    SilentDrop {
        /// Bytes relayed before the drop begins.
        after_bytes: usize,
    },
    /// Half-open: relay nothing in this direction, never close it.
    Stall,
}

impl Fault {
    /// Short machine-readable name, for labelling matrix cells and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Delay { .. } => "delay",
            Fault::Throttle { .. } => "throttle",
            Fault::Truncate { .. } => "truncate",
            Fault::Reset { .. } => "reset",
            Fault::SilentDrop { .. } => "silent_drop",
            Fault::Stall => "stall",
        }
    }
}

/// The pair of per-direction faults applied to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPlan {
    /// Fault on the client→server direction.
    pub upstream: Fault,
    /// Fault on the server→client direction.
    pub downstream: Fault,
}

impl ConnPlan {
    /// A clean pass-through plan.
    pub fn clean() -> Self {
        ConnPlan {
            upstream: Fault::None,
            downstream: Fault::None,
        }
    }

    /// Fault on requests only; responses pass through.
    pub fn upstream(fault: Fault) -> Self {
        ConnPlan {
            upstream: fault,
            downstream: Fault::None,
        }
    }

    /// Fault on responses only; requests pass through.
    pub fn downstream(fault: Fault) -> Self {
        ConnPlan {
            upstream: Fault::None,
            downstream: fault,
        }
    }
}

/// Deterministic map from connection index to [`ConnPlan`].
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    seed: u64,
    mode: Mode,
}

#[derive(Debug, Clone)]
enum Mode {
    Clean,
    /// The same plan for the first `conns` connections, clean after.
    Fixed {
        plan: ConnPlan,
        conns: u32,
    },
    /// A seeded random plan for each of the first `conns` connections,
    /// clean after.
    Random {
        conns: u32,
    },
}

impl FaultSchedule {
    /// No faults at all (a transparent proxy — the control cell).
    pub fn clean() -> Self {
        FaultSchedule {
            seed: 0,
            mode: Mode::Clean,
        }
    }

    /// The same `plan` for the first `conns` connections, clean after —
    /// the building block of the fault-matrix tests: a bounded number of
    /// identical faults that a retrying client must ride out.
    pub fn fixed(plan: ConnPlan, conns: u32) -> Self {
        FaultSchedule {
            seed: 0,
            mode: Mode::Fixed { plan, conns },
        }
    }

    /// A seeded random plan (fault kind, direction, parameters) for each
    /// of the first `conns` connections, clean after. Identical seeds give
    /// identical plan sequences.
    pub fn random(seed: u64, conns: u32) -> Self {
        FaultSchedule {
            seed,
            mode: Mode::Random { conns },
        }
    }

    /// The plan for the `index`-th accepted connection (0-based).
    /// Deterministic in `(self, index)`.
    pub fn plan_for(&self, index: u32) -> ConnPlan {
        match &self.mode {
            Mode::Clean => ConnPlan::clean(),
            Mode::Fixed { plan, conns } => {
                if index < *conns {
                    *plan
                } else {
                    ConnPlan::clean()
                }
            }
            Mode::Random { conns } => {
                if index >= *conns {
                    return ConnPlan::clean();
                }
                let stream = split_stream(derive_seed(self.seed, "cv-chaos.plan"), index as u64);
                let mut rng = SplitMix64::seed_from_u64(stream);
                let fault = random_fault(&mut rng);
                // Truncating the request vs the response exercises the two
                // ends' robustness separately; both must converge.
                if rng.random_bool(0.5) {
                    ConnPlan::upstream(fault)
                } else {
                    ConnPlan::downstream(fault)
                }
            }
        }
    }
}

/// Draws one of the six non-trivial fault kinds with deterministic
/// parameters. Time-shaped faults keep their parameters small (≤ 200 ms
/// added latency, ≥ 64-byte throttle chunks) so they slow a session down
/// without mimicking a dead peer; byte-shaped cutoffs land inside the
/// first kilobyte, where every protocol exchange has traffic.
fn random_fault(rng: &mut SplitMix64) -> Fault {
    match rng.random_range(0..6u32) {
        0 => Fault::Delay {
            millis: rng.random_range(20..=200u64),
        },
        1 => Fault::Throttle {
            chunk: rng.random_range(64..=256usize),
            pause_millis: rng.random_range(2..=10u64),
        },
        2 => Fault::Truncate {
            after_bytes: rng.random_range(1..=512usize),
        },
        3 => Fault::Reset {
            after_bytes: rng.random_range(0..=512usize),
        },
        4 => Fault::SilentDrop {
            after_bytes: rng.random_range(0..=512usize),
        },
        _ => Fault::Stall,
    }
}

/// A running fault-injection proxy.
///
/// Dropping (or calling [`ChaosProxy::shutdown`]) closes the listener,
/// tears down every relayed connection — including stalled ones — and
/// joins all proxy threads.
pub struct ChaosProxy {
    local: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU32>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts relaying to `upstream` under
    /// `schedule`.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(upstream: SocketAddr, schedule: FaultSchedule) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU32::new(0));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                accept_loop(&listener, upstream, &schedule, &shutdown, &accepted, &conns);
            })
        };
        Ok(ChaosProxy {
            local,
            shutdown,
            accepted,
            accept: Some(accept),
            conns,
        })
    }

    /// The proxy's listening address (point the client here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Connections accepted so far — after a run, this is how many attempts
    /// the client actually made through the proxy.
    pub fn connections(&self) -> u32 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops accepting, tears down every relay (stalled ones included) and
    /// joins all proxy threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocked accept call.
            let _ = TcpStream::connect(self.local);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.finish();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    schedule: &FaultSchedule,
    shutdown: &Arc<AtomicBool>,
    accepted: &Arc<AtomicU32>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((client, _peer)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let index = accepted.fetch_add(1, Ordering::SeqCst);
        let plan = schedule.plan_for(index);
        let Ok(server) = TcpStream::connect_timeout(&upstream, UPSTREAM_CONNECT) else {
            // Upstream gone: drop the client connection (it sees EOF).
            continue;
        };
        let abort = Arc::new(AtomicBool::new(false));
        let mut spawned = Vec::with_capacity(2);
        for (fault, src, dst) in [
            (plan.upstream, &client, &server),
            (plan.downstream, &server, &client),
        ] {
            let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
                continue;
            };
            let shutdown = Arc::clone(shutdown);
            let abort = Arc::clone(&abort);
            spawned.push(std::thread::spawn(move || {
                relay(&src, &dst, fault, &shutdown, &abort);
            }));
        }
        conns.lock().expect("conns poisoned").extend(spawned);
    }
}

/// Sleeps `millis` in [`POLL`]-sized increments, bailing early on
/// shutdown/abort. Returns `false` if interrupted.
fn interruptible_sleep(millis: u64, shutdown: &AtomicBool, abort: &AtomicBool) -> bool {
    let mut remaining = Duration::from_millis(millis);
    while remaining > Duration::ZERO {
        if shutdown.load(Ordering::SeqCst) || abort.load(Ordering::SeqCst) {
            return false;
        }
        let step = remaining.min(POLL);
        std::thread::sleep(step);
        remaining -= step;
    }
    true
}

/// Relays `src` → `dst` applying `fault`. Runs until EOF, a socket error,
/// the fault's cutoff, proxy shutdown, or the connection's shared abort.
fn relay(
    src: &TcpStream,
    dst: &TcpStream,
    fault: Fault,
    shutdown: &AtomicBool,
    abort: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(POLL));
    let _ = dst.set_write_timeout(Some(Duration::from_secs(2)));
    let mut src_reader = match src.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut dst_writer = match dst.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };

    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    let mut delayed = false;

    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if abort.load(Ordering::SeqCst) {
            // The other direction hit its cutoff: finish the close.
            let _ = dst_writer.flush();
            let _ = dst.shutdown(Shutdown::Write);
            return;
        }
        if matches!(fault, Fault::Stall) {
            // Half-open: do not read, do not write, do not close.
            std::thread::sleep(POLL);
            continue;
        }
        let n = match src_reader.read(&mut buf) {
            Ok(0) => {
                // Source is done; propagate the FIN downstream.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                abort.store(true, Ordering::SeqCst);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        let chunk = &buf[..n];
        let done = match fault {
            Fault::None | Fault::Stall => forward(&mut dst_writer, chunk).is_err(),
            Fault::Delay { millis } => {
                if !delayed {
                    delayed = true;
                    interruptible_sleep(millis, shutdown, abort);
                }
                forward(&mut dst_writer, chunk).is_err()
            }
            Fault::Throttle {
                chunk: piece,
                pause_millis,
            } => {
                let mut failed = false;
                for part in chunk.chunks(piece.max(1)) {
                    if forward(&mut dst_writer, part).is_err() {
                        failed = true;
                        break;
                    }
                    if !interruptible_sleep(pause_millis, shutdown, abort) {
                        break;
                    }
                }
                failed
            }
            Fault::Truncate { after_bytes } | Fault::Reset { after_bytes } => {
                let budget = after_bytes.saturating_sub(forwarded);
                let take = budget.min(chunk.len());
                let failed = take > 0 && forward(&mut dst_writer, &chunk[..take]).is_err();
                forwarded += take;
                if failed || forwarded >= after_bytes {
                    abort.store(true, Ordering::SeqCst);
                    if matches!(fault, Fault::Reset { .. }) {
                        // Abrupt: both sockets, both halves, no draining.
                        let _ = src.shutdown(Shutdown::Both);
                        let _ = dst.shutdown(Shutdown::Both);
                    } else {
                        let _ = dst_writer.flush();
                        let _ = dst.shutdown(Shutdown::Write);
                        let _ = src.shutdown(Shutdown::Read);
                    }
                    return;
                }
                false
            }
            Fault::SilentDrop { after_bytes } => {
                let budget = after_bytes.saturating_sub(forwarded);
                let take = budget.min(chunk.len());
                let failed = take > 0 && forward(&mut dst_writer, &chunk[..take]).is_err();
                forwarded += take;
                // Past the cutoff: keep consuming, forward nothing — the
                // bytes silently vanish and the connection stays open.
                failed
            }
        };
        if done {
            abort.store(true, Ordering::SeqCst);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if !matches!(
            fault,
            Fault::Truncate { .. } | Fault::Reset { .. } | Fault::SilentDrop { .. }
        ) {
            forwarded += n;
        }
    }
}

fn forward(dst: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    dst.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// A trivial line-echo server for exercising the proxy without pulling
    /// in cv-server (which depends on this crate for *its* tests).
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => return,
                            Ok(_) => {
                                if line.trim() == "quit" {
                                    return;
                                }
                                if writer.write_all(line.as_bytes()).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    fn request_line(
        addr: SocketAddr,
        line: &str,
        read_timeout: Duration,
    ) -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.write_all(format!("{line}\n").as_bytes())?;
        let mut reader = std::io::BufReader::new(stream);
        let mut reply = String::new();
        let n = reader.read_line(&mut reply)?;
        if n == 0 || !reply.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed mid-line",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    #[test]
    fn clean_schedule_is_transparent() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start(addr, FaultSchedule::clean()).unwrap();
        let reply = request_line(proxy.local_addr(), "hello", Duration::from_secs(2)).unwrap();
        assert_eq!(reply, "hello");
        assert_eq!(proxy.connections(), 1);
        proxy.shutdown();
    }

    #[test]
    fn delay_and_throttle_deliver_intact_but_slow() {
        let (addr, _server) = echo_server();
        for fault in [
            Fault::Delay { millis: 80 },
            Fault::Throttle {
                chunk: 2,
                pause_millis: 5,
            },
        ] {
            let proxy =
                ChaosProxy::start(addr, FaultSchedule::fixed(ConnPlan::downstream(fault), 1))
                    .unwrap();
            let t0 = std::time::Instant::now();
            let reply = request_line(
                proxy.local_addr(),
                "payload-payload",
                Duration::from_secs(5),
            )
            .unwrap();
            assert_eq!(reply, "payload-payload", "{fault:?}");
            assert!(
                t0.elapsed() >= Duration::from_millis(20),
                "{fault:?} added no latency"
            );
            proxy.shutdown();
        }
    }

    #[test]
    fn truncate_cuts_the_response_mid_line() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            FaultSchedule::fixed(
                ConnPlan::downstream(Fault::Truncate { after_bytes: 3 }),
                u32::MAX,
            ),
        )
        .unwrap();
        let mut stream = TcpStream::connect(proxy.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        stream.write_all(b"hello-world\n").unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => panic!("expected clean EOF after truncation, got {e}"),
            }
        }
        assert_eq!(got, b"hel", "exactly after_bytes relayed");
        proxy.shutdown();
    }

    #[test]
    fn reset_tears_the_connection_down() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            FaultSchedule::fixed(ConnPlan::downstream(Fault::Reset { after_bytes: 0 }), 1),
        )
        .unwrap();
        let mut stream = TcpStream::connect(proxy.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        stream.write_all(b"hello\n").unwrap();
        let mut buf = [0u8; 64];
        // Either an error (reset) or EOF — never data.
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("reset relayed {n} bytes"),
        }
        proxy.shutdown();
    }

    #[test]
    fn silent_drop_and_stall_starve_the_reader_without_closing() {
        let (addr, _server) = echo_server();
        for fault in [Fault::SilentDrop { after_bytes: 0 }, Fault::Stall] {
            let proxy =
                ChaosProxy::start(addr, FaultSchedule::fixed(ConnPlan::downstream(fault), 1))
                    .unwrap();
            let err = request_line(
                proxy.local_addr(),
                "anyone-there",
                Duration::from_millis(300),
            )
            .expect_err("reader must starve");
            assert!(
                matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "{fault:?}: expected a read timeout, got {err:?}"
            );
            proxy.shutdown(); // must not hang on the stalled relay
        }
    }

    #[test]
    fn fixed_schedule_clears_after_budget_so_retry_succeeds() {
        let (addr, _server) = echo_server();
        let proxy = ChaosProxy::start(
            addr,
            FaultSchedule::fixed(ConnPlan::downstream(Fault::Truncate { after_bytes: 1 }), 2),
        )
        .unwrap();
        let mut failures = 0;
        let mut reply = None;
        for _attempt in 0..4 {
            match request_line(proxy.local_addr(), "eventually", Duration::from_secs(2)) {
                Ok(r) => {
                    reply = Some(r);
                    break;
                }
                Err(_) => failures += 1,
            }
        }
        assert_eq!(failures, 2, "exactly the scheduled number of faults");
        assert_eq!(reply.as_deref(), Some("eventually"));
        proxy.shutdown();
    }

    #[test]
    fn random_schedules_are_reproducible_and_seed_sensitive() {
        let a: Vec<ConnPlan> = (0..16)
            .map(|i| FaultSchedule::random(7, 16).plan_for(i))
            .collect();
        let b: Vec<ConnPlan> = (0..16)
            .map(|i| FaultSchedule::random(7, 16).plan_for(i))
            .collect();
        let c: Vec<ConnPlan> = (0..16)
            .map(|i| FaultSchedule::random(8, 16).plan_for(i))
            .collect();
        assert_eq!(a, b, "same seed, same plans");
        assert_ne!(a, c, "different seed, different plans");
        // Past the budget the schedule is clean.
        assert_eq!(FaultSchedule::random(7, 4).plan_for(4), ConnPlan::clean());
        // All six fault kinds appear across a modest index range.
        let mut kinds = std::collections::BTreeSet::new();
        for i in 0..64 {
            let plan = FaultSchedule::random(1, 64).plan_for(i);
            for f in [plan.upstream, plan.downstream] {
                if f != Fault::None {
                    kinds.insert(f.name());
                }
            }
        }
        assert_eq!(kinds.len(), 6, "kinds seen: {kinds:?}");
    }
}
