//! Regenerates **Table II**: the aggressive NN planner `κ_n,aggr` vs. its
//! basic (`κ_cb,aggr`) and ultimate (`κ_cu,aggr`) compound planners under
//! the three communication settings. Reaching time counts safe episodes
//! only (the table's `*` footnote).
//!
//! Usage: `cargo run --release -p bench --bin exp_table2 [--sims N] [--seed S]`

use bench::{evaluate_block, planners, table_header, CommScenario, Family};

fn main() {
    let sims = bench::arg_usize("--sims", 2000);
    let seed = bench::arg_usize("--seed", 1) as u64;
    eprintln!("training/loading planners...");
    let (_cons, aggr) = planners();

    println!("\nTABLE II — aggressive family ({sims} simulations per cell)");
    println!("{}", table_header());
    for scenario in CommScenario::all() {
        for row in evaluate_block(&aggr, Family::Aggressive, scenario, sims, seed) {
            println!("{}", row.format());
        }
    }
}
