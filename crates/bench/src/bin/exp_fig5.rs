//! Regenerates **Figure 5**: the impact of communication disturbance on the
//! conservative planner family (`κ_n,cons`, `κ_cb,cons`, `κ_cu,cons`).
//!
//! * panels a/b — reaching time and emergency frequency vs the transmission
//!   time step `Δt_m = Δt_s`;
//! * panels c/d — vs the message drop probability `p_d` (with
//!   `Δt_d = 0.25 s`);
//! * panels e/f — vs the sensor uncertainty `δ` under "messages lost".
//!
//! Each sweep prints one row per x-value with the reaching time (panel
//! a/c/e) *and* the emergency frequency (panel b/d/f) of all three planners,
//! so one run regenerates both panels of a pair.
//!
//! Usage:
//! `cargo run --release -p bench --bin exp_fig5 [--panel a|c|e|all] [--sims N]`

use bench::{planners, stacks_for, Family};
use cv_comm::CommSetting;
use cv_sensing::SensorNoise;
use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, StackSpec};

struct SweepPoint {
    x: f64,
    rows: Vec<(String, BatchSummary)>,
}

fn sweep(
    stacks: &[(&'static str, StackSpec)],
    sims: usize,
    seed: u64,
    xs: &[f64],
    configure: impl Fn(&mut EpisodeConfig, f64),
) -> Vec<SweepPoint> {
    xs.iter()
        .map(|&x| {
            let mut template = EpisodeConfig::paper_default(seed);
            configure(&mut template, x);
            let batch = BatchConfig::new(template, sims);
            let rows = stacks
                .iter()
                .map(|(label, spec)| {
                    (
                        label.to_string(),
                        BatchSummary::from_results(&run_batch(&batch, spec).expect("valid batch")),
                    )
                })
                .collect();
            SweepPoint { x, rows }
        })
        .collect()
}

fn print_sweep(title: &str, x_name: &str, points: &[SweepPoint]) {
    println!("\n{title}");
    print!("{x_name:>8}");
    for (label, _) in &points[0].rows {
        print!(
            " {:>10} {:>9}",
            format!("reach:{label}"),
            format!("emrg:{label}")
        );
    }
    println!();
    for p in points {
        print!("{:8.3}", p.x);
        for (_, s) in &p.rows {
            let reach = if s.reaching_time.is_nan() {
                "    --".to_string()
            } else {
                format!("{:9.3}s", s.reaching_time)
            };
            print!(" {reach} {:8.2}%", 100.0 * s.emergency_frequency);
        }
        println!();
    }
}

fn main() {
    let sims = bench::arg_usize("--sims", 300);
    let seed = bench::arg_usize("--seed", 1) as u64;
    let panel = bench::arg_string("--panel", "all");
    eprintln!("training/loading planners...");
    let (cons, _) = planners();
    let stacks = stacks_for(&cons, Family::Conservative);

    if panel == "a" || panel == "b" || panel == "all" {
        // Fig. 5a/5b: transmission time step sweep (Δt_m = Δt_s).
        let xs: Vec<f64> = (1..=10).map(|i| 0.1 * i as f64).collect();
        let pts = sweep(&stacks, sims, seed, &xs, |cfg, x| {
            cfg.dt_m = x;
            cfg.dt_s = x;
            cfg.comm = CommSetting::NoDisturbance;
        });
        print_sweep(
            "FIG 5a/5b — reaching time & emergency frequency vs transmission time step",
            "dt_m[s]",
            &pts,
        );
    }
    if panel == "c" || panel == "d" || panel == "all" {
        // Fig. 5c/5d: drop probability sweep, Δt_d = 0.25 s.
        let xs: Vec<f64> = (0..20).map(|j| 0.05 * j as f64).collect();
        let pts = sweep(&stacks, sims, seed, &xs, |cfg, x| {
            cfg.comm = CommSetting::Delayed {
                delay: 0.25,
                drop_prob: x,
            };
        });
        print_sweep(
            "FIG 5c/5d — reaching time & emergency frequency vs message drop probability",
            "p_d",
            &pts,
        );
    }
    if panel == "e" || panel == "f" || panel == "all" {
        // Fig. 5e/5f: sensor uncertainty sweep under messages lost.
        let xs: Vec<f64> = (0..20).map(|j| 1.0 + 0.2 * j as f64).collect();
        let pts = sweep(&stacks, sims, seed, &xs, |cfg, x| {
            cfg.comm = CommSetting::Lost;
            cfg.noise = SensorNoise::uniform(x);
        });
        print_sweep(
            "FIG 5e/5f — reaching time & emergency frequency vs sensor uncertainty",
            "delta",
            &pts,
        );
    }
}
