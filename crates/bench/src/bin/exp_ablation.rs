//! Ablation study (DESIGN.md A1/A2): which of the ultimate compound
//! planner's two techniques — the Kalman information filter and the
//! aggressive unsafe-set estimation — contributes what.
//!
//! * A1: basic → +filter-only → +aggressive-only → ultimate, under the three
//!   communication settings (conservative family).
//! * A2 (`--buffers`): sensitivity of the ultimate planner to the
//!   `a_buf`/`v_buf` buffers of paper Eq. 8.
//!
//! Usage: `cargo run --release -p bench --bin exp_ablation [--sims N] [--buffers]`

use bench::{planners, CommScenario};
use cv_estimation::FilterMode;
use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, StackSpec};
use safe_shield::{AggressiveConfig, WindowSource};

fn summarise(spec: &StackSpec, scenario: CommScenario, sims: usize, seed: u64) -> BatchSummary {
    let mut template = EpisodeConfig::paper_default(seed);
    scenario.apply(&mut template);
    let batch = BatchConfig::new(template, sims);
    BatchSummary::from_results(&run_batch(&batch, spec).expect("valid batch"))
}

fn main() {
    let sims = bench::arg_usize("--sims", 500);
    let seed = bench::arg_usize("--seed", 1) as u64;
    let buffers = std::env::args().any(|a| a == "--buffers");
    eprintln!("training/loading planners...");
    let (cons, _) = planners();

    if buffers {
        println!("\nABLATION A2 — buffer sensitivity of the ultimate planner (no disturbance)");
        println!(
            "{:>6} {:>6} {:>8} {:>8} {:>8}",
            "a_buf", "v_buf", "reach", "safe", "emerg"
        );
        for (a_buf, v_buf) in [(0.25, 0.5), (0.5, 1.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)] {
            let spec = StackSpec::ultimate(cons.clone(), AggressiveConfig::new(a_buf, v_buf));
            let s = summarise(&spec, CommScenario::NoDisturbance, sims, seed);
            println!(
                "{a_buf:6.2} {v_buf:6.2} {:7.3}s {:7.2}% {:7.2}%",
                s.reaching_time,
                100.0 * s.safe_rate,
                100.0 * s.emergency_frequency
            );
        }
        return;
    }

    println!("\nABLATION A1 — contribution of each technique (conservative family, {sims} sims)");
    let variants: [(&str, StackSpec); 4] = [
        ("basic (neither)", StackSpec::basic(cons.clone())),
        (
            "+filter only",
            StackSpec::Compound {
                planner: cons.clone(),
                filter_mode: FilterMode::Fused,
                window_source: WindowSource::Conservative,
            },
        ),
        (
            "+aggressive only",
            StackSpec::Compound {
                planner: cons.clone(),
                filter_mode: FilterMode::HardOnly,
                window_source: WindowSource::Aggressive(AggressiveConfig::default()),
            },
        ),
        (
            "ultimate (both)",
            StackSpec::ultimate(cons.clone(), AggressiveConfig::default()),
        ),
    ];
    println!(
        "{:<18} {:<18} {:>8} {:>8} {:>8} {:>8}",
        "settings", "variant", "reach", "safe", "eta", "emerg"
    );
    for scenario in CommScenario::all() {
        for (label, spec) in &variants {
            let s = summarise(spec, scenario, sims, seed);
            println!(
                "{:<18} {:<18} {:7.3}s {:7.2}% {:8.3} {:7.2}%",
                scenario.label(),
                label,
                s.reaching_time,
                100.0 * s.safe_rate,
                s.eta_mean,
                100.0 * s.emergency_frequency
            );
        }
    }
}
