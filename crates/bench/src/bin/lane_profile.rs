//! Profiling harness: runs ONLY the K=8 lane-batched path (or the
//! per-episode path with `--per-episode`) in a loop so a sampling profiler
//! sees nothing but the code under study. Not part of any experiment.

use cv_nn::{Activation, Mlp};
use cv_planner::{FeatureScaling, NnPlanner};
use cv_sim::{run_batch_lanes, BatchConfig, BatchMode, EpisodeConfig, StackSpec, WindowKind};

fn main() {
    let per_episode = std::env::args().any(|a| a == "--per-episode");
    let template = EpisodeConfig::paper_default(1);
    let ego_limits = template.scenario().expect("paper geometry").ego_limits();
    let planner = NnPlanner::new(
        Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, 1).unwrap(),
        ego_limits,
        FeatureScaling::left_turn(),
        "lane-profile",
    );
    let spec = StackSpec::PureNn {
        planner,
        window: WindowKind::Conservative,
    };
    let mut batch = BatchConfig::new(template, 500);
    batch.threads = 1;
    let mode = if per_episode {
        BatchMode::PerEpisode
    } else {
        BatchMode::Lanes(8)
    };
    let mut total = 0u64;
    for _ in 0..60 {
        let results = run_batch_lanes(&batch, &spec, mode, None, None)
            .expect("batch")
            .into_results()
            .expect("complete");
        total += results.iter().map(|r| r.total_steps).sum::<u64>();
    }
    println!("total steps: {total}");
}
