//! Offline shield verification at full grid resolution: checks boundary
//! coverage (paper Eq. 3) and emergency invariance (Eq. 4) over a dense
//! state × window grid for every start position in the paper's sweep.
//!
//! Usage: `cargo run --release -p bench --bin verify_shield`

use left_turn::verify::{check_invariants, VerifyGrid};
use left_turn::LeftTurnScenario;

fn main() {
    let grid = VerifyGrid::default();
    let mut total_states = 0u64;
    let mut total_violations = 0usize;
    for start in cv_sim::EpisodeConfig::paper_start_grid() {
        let scenario = LeftTurnScenario::paper_default(start).expect("valid scenario");
        let t0 = std::time::Instant::now();
        let report = check_invariants(&scenario, &grid);
        println!(
            "start {start:5.1} m: {report} (pruned {} unreachable) in {:.2?}",
            report.unreachable_pruned,
            t0.elapsed()
        );
        total_states += report.states_checked;
        total_violations += report.violations.len();
    }
    println!("\ntotal: {total_states} state/window pairs, {total_violations} violations");
    if total_violations > 0 {
        std::process::exit(1);
    }
}
