//! Safety fuzzer: sweeps thousands of randomized episodes over every
//! communication setting, planner family, and compound configuration,
//! hunting for violations of the `η(κ_c) ≥ 0` guarantee. Prints a detailed
//! monitor trace for any failure it finds.
//!
//! Usage: `cargo run --release -p bench --bin hunt [--sims N]`

use cv_comm::CommSetting;
use cv_sensing::SensorNoise;
use cv_sim::{run_episode, BatchConfig, EpisodeConfig, StackSpec};
use safe_shield::{AggressiveConfig, Outcome, PlannerSource};

fn dump_trace(cfg: &EpisodeConfig, spec: &StackSpec) {
    let r = run_episode(cfg, spec, true).expect("valid episode");
    let tr = r.traces.expect("traces requested");
    let scenario = cfg.scenario().expect("valid scenario");
    let t_crash = match r.outcome {
        Outcome::Collision { time } => time,
        _ => cfg.horizon,
    };
    for ((e, o), (w, d)) in tr
        .ego
        .iter()
        .zip(tr.primary_other().iter())
        .zip(tr.windows.iter().zip(tr.decisions.iter()))
    {
        if e.time >= t_crash - 2.5 {
            let cw = w
                .conservative
                .map(|i| format!("[{:6.2},{:6.2}]", i.lo(), i.hi()))
                .unwrap_or_else(|| "--".into());
            let src = match d.source {
                PlannerSource::Emergency => "EMG",
                PlannerSource::NeuralNetwork => "nn ",
            };
            println!(
                "t={:.2} {src} a={:6.2} | ego p={:7.3} v={:6.3} slack={:8.3} cmt={} | C1={:7.3} v={:5.2} | cons={cw}",
                e.time,
                d.accel,
                e.state.position,
                e.state.velocity,
                scenario.slack(&e.state),
                scenario.is_committed(&e.state),
                o.state.position,
                o.state.velocity,
            );
        }
    }
}

fn main() {
    let sims = bench::arg_usize("--sims", 2000);
    let (cons, aggr) = bench::planners();
    let settings: [(&str, CommSetting, f64); 4] = [
        ("no-dist", CommSetting::NoDisturbance, 1.0),
        (
            "delayed",
            CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.25,
            },
            1.0,
        ),
        (
            "heavy-drop",
            CommSetting::Delayed {
                delay: 0.5,
                drop_prob: 0.9,
            },
            2.0,
        ),
        ("lost", CommSetting::Lost, 3.0),
    ];
    let mut violations = 0usize;
    for (nn_name, nn) in [("cons", &cons), ("aggr", &aggr)] {
        for (stack_name, spec) in [
            ("basic", StackSpec::basic(nn.clone())),
            (
                "ultimate",
                StackSpec::ultimate(nn.clone(), AggressiveConfig::default()),
            ),
            (
                "zero-buffers",
                StackSpec::ultimate(nn.clone(), AggressiveConfig::new(0.0, 0.0)),
            ),
        ] {
            for (setting_name, comm, delta) in &settings {
                let mut template = EpisodeConfig::paper_default(1);
                template.comm = *comm;
                template.noise = SensorNoise::uniform(*delta);
                let batch = BatchConfig::new(template, sims);
                let mut bad = 0usize;
                for i in 0..sims {
                    let cfg = batch.episode(i);
                    let r = run_episode(&cfg, &spec, false).expect("valid episode");
                    if !r.outcome.is_safe() {
                        bad += 1;
                        violations += 1;
                        println!(
                            "VIOLATION {nn_name}/{stack_name}/{setting_name} idx {i} seed {} start {}: {:?}",
                            cfg.seed, cfg.other_start_shared, r.outcome
                        );
                        if bad == 1 {
                            dump_trace(&cfg, &spec);
                        }
                    }
                }
                println!(
                    "{nn_name:<5} {stack_name:<12} {setting_name:<10}: {sims} episodes, {bad} violations"
                );
            }
        }
    }
    if violations == 0 {
        println!("\nall clean — the shield held everywhere");
    } else {
        println!("\n{violations} VIOLATIONS FOUND");
        std::process::exit(1);
    }
}
