//! Regenerates **Figure 6**: effectiveness of the information filter and of
//! the aggressive unsafe-set estimation.
//!
//! * panel a — measured vs filtered velocity of `C_1` along one sensing-only
//!   episode, plus the RMSE reduction of position/velocity estimates over
//!   200 sampled trajectories (the paper reports −69 % / −76 %);
//! * panel b — conservative (Eq. 7) vs aggressive (Eq. 8) passing-window
//!   estimates along one episode, against `C_1`'s *actual* passing times.
//!
//! Usage: `cargo run --release -p bench --bin exp_fig6 [--panel a|b|all]`

use cv_dynamics::{VehicleLimits, VehicleState};
use cv_estimation::TrackingFilter;
use cv_rng::{Rng, SplitMix64};
use cv_sensing::{Measurement, SensorNoise, UniformNoiseSensor};
use cv_sim::{run_episode, EpisodeConfig, StackSpec};
use safe_shield::AggressiveConfig;

/// Simulates one random `C_1` trajectory and returns per-sensing-period
/// `(t, truth, measurement, filtered)` samples.
fn filter_run(
    seed: u64,
    delta: f64,
    duration: f64,
) -> Vec<(f64, VehicleState, Measurement, (f64, f64))> {
    let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits");
    let dt_c = 0.05;
    let dt_s = 0.1;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut sensor = UniformNoiseSensor::new(SensorNoise::uniform(delta), seed ^ 0xABCD);
    let mut truth = VehicleState::new(0.0, 10.0, 0.0);
    let half_range = 0.5 * (limits.a_max() - limits.a_min());
    let mut filter = TrackingFilter::new(SensorNoise::uniform(delta), 0.0, 0.0, 10.0)
        .with_process_accel_var(half_range * half_range / 3.0);
    let mut out = Vec::new();
    let steps = (duration / dt_c).round() as usize;
    for step in 0..=steps {
        let t = step as f64 * dt_c;
        if step % ((dt_s / dt_c).round() as usize) == 0 {
            let m = sensor.measure(1, t, &truth);
            filter.on_measurement(&m);
            let (mean, _) = filter.predicted(t);
            out.push((t, truth, m, (mean.x, mean.y)));
        }
        let a = rng.random_range(limits.a_min()..=limits.a_max());
        truth = limits.step(&truth, a, dt_c);
    }
    out
}

fn panel_a() {
    println!("\nFIG 6a — sensor-measured vs filtered velocity (one sensing-only episode, δ = 2)");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "t[s]", "true v", "measured v", "filtered v"
    );
    for (t, truth, meas, (_, v_filt)) in filter_run(7, 2.0, 8.0) {
        if (t * 10.0).round() as i64 % 5 == 0 {
            println!(
                "{t:6.2} {:10.3} {:10.3} {:10.3}",
                truth.velocity, meas.velocity, v_filt
            );
        }
    }

    // RMSE reduction over 200 sampled trajectories (paper: −69 % position,
    // −76 % velocity).
    let trajectories = 200;
    let (mut raw_p, mut raw_v, mut fil_p, mut fil_v) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut tru_p, mut tru_v) = (Vec::new(), Vec::new());
    for seed in 0..trajectories {
        for (_, truth, meas, (p_f, v_f)) in filter_run(1000 + seed, 2.0, 8.0) {
            tru_p.push(truth.position);
            tru_v.push(truth.velocity);
            raw_p.push(meas.position);
            raw_v.push(meas.velocity);
            fil_p.push(p_f);
            fil_v.push(v_f);
        }
    }
    let rmse_raw_p = cv_sim::rmse(&raw_p, &tru_p);
    let rmse_fil_p = cv_sim::rmse(&fil_p, &tru_p);
    let rmse_raw_v = cv_sim::rmse(&raw_v, &tru_v);
    let rmse_fil_v = cv_sim::rmse(&fil_v, &tru_v);
    println!("\nRMSE over {trajectories} trajectories (paper: −69% position, −76% velocity):");
    println!(
        "  position: raw {rmse_raw_p:.3} m  -> filtered {rmse_fil_p:.3} m  ({:+.1}%)",
        100.0 * (rmse_fil_p / rmse_raw_p - 1.0)
    );
    println!(
        "  velocity: raw {rmse_raw_v:.3} m/s -> filtered {rmse_fil_v:.3} m/s ({:+.1}%)",
        100.0 * (rmse_fil_v / rmse_raw_v - 1.0)
    );
}

fn panel_b() {
    println!("\nFIG 6b — conservative vs aggressive passing-window estimates (one episode)");
    let mut cfg = EpisodeConfig::paper_default(11);
    cfg.comm = cv_comm::CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    let (_, aggr_planner) = bench::planners();
    let spec = StackSpec::ultimate(aggr_planner, AggressiveConfig::default());
    let result = run_episode(&cfg, &spec, true).expect("valid episode");
    let traces = result.traces.expect("traces requested");

    // C1's actual occupancy of the conflict zone.
    let scenario = cfg.scenario().expect("valid scenario");
    let inside: Vec<f64> = traces
        .primary_other()
        .iter()
        .filter(|s| (scenario.other_entry()..=scenario.other_exit()).contains(&s.state.position))
        .map(|s| s.time)
        .collect();
    match (inside.first(), inside.last()) {
        (Some(first), Some(last)) => {
            println!("actual passing window of C1: [{first:.2}, {last:.2}] s")
        }
        _ => println!("C1 did not enter the zone during the episode"),
    }

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}",
        "t[s]", "cons.lo", "cons.hi", "aggr.lo", "aggr.hi"
    );
    for w in traces
        .windows
        .iter()
        .filter(|w| (w.time * 10.0).round() as i64 % 5 == 0)
    {
        let fmt = |i: Option<cv_estimation::Interval>, hi: bool| match i {
            Some(iv) => format!("{:9.2}", if hi { iv.hi() } else { iv.lo() }),
            None => "       --".to_string(),
        };
        println!(
            "{:6.2} {} {} {} {}",
            w.time,
            fmt(w.conservative, false),
            fmt(w.conservative, true),
            fmt(w.aggressive, false),
            fmt(w.aggressive, true),
        );
    }
    println!("(outcome: {})", result.outcome);
}

fn main() {
    let panel = bench::arg_string("--panel", "all");
    if panel == "a" || panel == "all" {
        panel_a();
    }
    if panel == "b" || panel == "all" {
        panel_b();
    }
}
