//! Regenerates **Table I**: the conservative NN planner `κ_n,cons` vs. its
//! basic (`κ_cb,cons`) and ultimate (`κ_cu,cons`) compound planners under
//! the three communication settings.
//!
//! Usage: `cargo run --release -p bench --bin exp_table1 [--sims N] [--seed S]`

use bench::{evaluate_block, planners, table_header, CommScenario, Family};

fn main() {
    let sims = bench::arg_usize("--sims", 2000);
    let seed = bench::arg_usize("--seed", 1) as u64;
    eprintln!("training/loading planners...");
    let (cons, _aggr) = planners();

    println!("\nTABLE I — conservative family ({sims} simulations per cell)");
    println!("{}", table_header());
    for scenario in CommScenario::all() {
        for row in evaluate_block(&cons, Family::Conservative, scenario, sims, seed) {
            println!("{}", row.format());
        }
    }
}
