//! Machine-readable throughput benchmark for the episode-engine overhaul.
//!
//! Runs a batch matrix (planner stack × thread count), timing the
//! pre-overhaul path (`run_batch_static`: contiguous chunks, fresh episode
//! build per run) against the current one (`run_batch`: dynamic
//! claim-by-index scheduler + per-worker reused [`cv_sim::EpisodeWorkspace`])
//! over the full paper start grid, and cross-checks that both produce
//! bit-identical results. The batch matrix includes the NN planner stack
//! (pure and basic-compound) so the zero-allocation NN compute layer shows
//! up in episode throughput, and N-vehicle platoon cells (n ∈ {2, 4, 8},
//! `PlatoonSpec::paper_default`) so the multi-vehicle shield's per-vehicle
//! cost is a tracked number under the same bit-identity cross-check, an `nn` section times the case-study forward
//! pass (pre-PR allocating path vs scratch-backed fused path) and the
//! behaviour-cloning trainer (allocating vs in-place), and a kernel section
//! micro-benchmarks `cv-nn`'s matmul family on the in-tree timing shim.
//! A `cache` section times a repeated batch against the content-addressed
//! episode-result cache (cold vs warm) and asserts the cache contract
//! inline: 100% hits, bit-identical summary, ≥10× under the cold wall time.
//! A `lanes` section times the lane-batched execution mode
//! (`cv_sim::run_batch_lanes`) on the pure-NN stack at a single worker
//! thread for K ∈ {1, 2, 4, 8}, asserting the numeric contract inline:
//! K = 1 bit-identical to the per-episode path, K > 1 within the
//! per-field tolerance gate (`cv_sim::lane_tolerance_check`). An `events`
//! section times `BatchMode::EventDriven` (the time-wheel engine,
//! DESIGN.md §18) against the fixed-step dynamic path on the n = 8 platoon
//! cells — the dense paper default and a sparse-disturbance variant
//! (`platoon-n8-sparse/comm-lost`: ego 150 m upstream, leader at the zone's
//! edge, 6 m gaps, all V2V channels lost) where pairs retire early in a
//! long approach episode and the event engine's
//! quiescent-span skipping pays — asserting bit-identity with the
//! fixed-step oracle inline and recording `event_speedup` per cell.
//!
//! Output: `results/BENCH_throughput.json` (schema `bench.throughput/v5`)
//! plus a human-readable table on stdout.
//!
//! Usage:
//! `cargo run --release -p bench --bin exp_throughput -- [--sims N] [--reps R] [--threads 1,2,4,8] [--out PATH] [--baseline PATH] [--nn-baseline PATH]`
//!
//! `--baseline` points at a baseline file of episodes/sec from an earlier
//! engine (the committed `results/BENCH_throughput_seed.json` was measured
//! at the growth-seed commit, before the engine overhaul); matching cells
//! gain a `speedup_vs_baseline` field, and the run **exits non-zero** if
//! any matching cell regresses more than 10% below its baseline.
//!
//! `--nn-baseline` does the same for the NN and platoon cells, which the
//! growth-seed baseline predates (their `speedup_vs_baseline` was always
//! null): on the first run the file is *written* from this run's NN, lane,
//! and platoon cells, and every later run compares against it under the
//! same 10% regression gate. The committed
//! `results/BENCH_throughput_nn_baseline.json` was first recorded by the
//! lane-batching PR and re-recorded when the platoon cells landed (the
//! original capture predated them, and the raw single-run numbers carry no
//! headroom for box-speed drift — delete the file to re-record on the
//! current machine). When the loaded file predates a cell family this run
//! produced (a new platoon size, the event-engine cells), the run does not
//! silently skip the gate: it warns naming exactly which cells were newly
//! seeded, records them at this run's rate (1.00x), and rewrites the file
//! so the next run gates them.
//!
//! Each cell is timed `--reps` times per path (interleaved) and the best
//! wall time kept, so one noisy sample on a shared box cannot flip a
//! comparison; `--sims 8 --threads 2 --reps 2` is the CI smoke
//! configuration.

use std::sync::atomic::AtomicBool;
use std::time::Instant;

use bench::timing::measure_ns;
use cv_comm::CommSetting;
use cv_nn::{Activation, Matrix, Mlp, MlpScratch, Optimizer, TrainConfig, Trainer};
use cv_planner::{FeatureScaling, NnPlanner};
use cv_rng::{Rng, SplitMix64};
use cv_server::wire::Json;
use cv_server::{run_sharded_cached, JobLimits, JobOutcome};
use cv_sim::{
    lane_tolerance_check, run_batch, run_batch_lanes, run_batch_static, BatchConfig, BatchMode,
    BatchSummary, EpisodeCache, EpisodeConfig, EpisodeResult, PlatoonFollower, PlatoonSpec,
    StackSpec, WindowKind, DEFAULT_CACHE_BYTES,
};

/// One cell of the batch matrix.
struct Cell {
    stack: &'static str,
    threads: usize,
    episodes: usize,
    static_secs: f64,
    dynamic_secs: f64,
    static_eps: f64,
    dynamic_eps: f64,
    ns_per_step: f64,
    total_steps: u64,
    speedup: f64,
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// The case-study MLP: 5 scenario features → [32, 32] → 1, as trained by
/// behaviour cloning. Untrained weights (deterministic from `seed`) — for
/// throughput only the shape matters.
fn case_study_net(seed: u64) -> Mlp {
    Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, seed).expect("case-study shape")
}

/// The batch matrix: the two teacher stacks of the engine-overhaul
/// comparison — a no-disturbance conservative baseline (long, uniform
/// episodes) and the aggressive teacher under heavy disturbance
/// (early-exit-heavy: the static scheduler's worst case) — plus the NN
/// planner stack, unshielded and wrapped in the basic compound planner, so
/// the scratch-backed inference path is measured on the episode hot path,
/// plus the N-vehicle platoon workload (n ∈ {2, 4, 8}: leader + gap-tracking
/// followers, one V2V channel per pair) so per-vehicle cost at scale is a
/// tracked number.
/// `(name, template, stack, starts)`: `starts` overrides the batch's
/// `C_1` start grid (`None` = the paper grid). The sparse event cell needs
/// it — the paper grid would put the leader back at 50.5–60 m and undo the
/// early-retirement geometry.
type MatrixEntry = (&'static str, EpisodeConfig, StackSpec, Option<Vec<f64>>);

fn stack_matrix(seed: u64) -> Vec<MatrixEntry> {
    let cons_template = EpisodeConfig::paper_default(seed);
    let cons = StackSpec::pure_teacher_conservative(&cons_template).expect("paper geometry");
    let mut aggr_template = EpisodeConfig::paper_default(seed);
    aggr_template.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.5,
    };
    let aggr = StackSpec::pure_teacher_aggressive(&aggr_template).expect("paper geometry");
    let nn_template = EpisodeConfig::paper_default(seed);
    let ego_limits = nn_template.scenario().expect("paper geometry").ego_limits();
    let planner = NnPlanner::new(
        case_study_net(seed),
        ego_limits,
        FeatureScaling::left_turn(),
        "bench-nn",
    );
    let nn_pure = StackSpec::PureNn {
        planner: planner.clone(),
        window: WindowKind::Conservative,
    };
    let nn_basic = StackSpec::basic(planner);
    let mut matrix = vec![
        ("teacher-cons/no-disturbance", cons_template, cons, None),
        ("teacher-aggr/delayed-0.25-0.5", aggr_template, aggr, None),
        ("nn-pure/no-disturbance", nn_template.clone(), nn_pure, None),
        ("nn-basic/no-disturbance", nn_template, nn_basic, None),
    ];
    for (name, n) in [
        ("platoon-n2/teacher-cons", 2usize),
        ("platoon-n4/teacher-cons", 4),
        ("platoon-n8/teacher-cons", 8),
    ] {
        let template = PlatoonSpec::paper_default(n, seed)
            .expect("n >= 2")
            .episode();
        let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
        matrix.push((name, template, spec, None));
    }
    {
        let template = sparse_platoon(seed);
        let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
        // Leader start grid hugging the zone exit (p_b = 15): every
        // episode keeps the early-retirement geometry while still varying
        // per index like the other cells.
        let starts = (0..20).map(|j| 16.0 + 0.25 * j as f64).collect();
        matrix.push(("platoon-n8-sparse/comm-lost", template, spec, Some(starts)));
    }
    matrix
}

/// The sparse-disturbance n=8 platoon: the ego far upstream of a platoon
/// already at the zone's edge with close followers, all V2V channels lost.
/// Every pair clears the conflict zone (and permanently retires under the
/// event engine) in the first quarter of a long approach episode, so most
/// of its wall time is quiescent per-pair work — the regime the
/// event-driven engine exists for.
fn sparse_platoon(seed: u64) -> EpisodeConfig {
    let mut platoon = PlatoonSpec::paper_default(8, seed).expect("n >= 2");
    platoon.leader_start_shared = 16.0;
    platoon.comm = CommSetting::Lost;
    for f in &mut platoon.followers {
        *f = PlatoonFollower {
            gap: 6.0,
            ..PlatoonFollower::paper_default()
        };
    }
    let mut cfg = platoon.episode();
    cfg.ego_init.position = -150.0;
    cfg
}

fn run_cell(
    stack: &'static str,
    template: &EpisodeConfig,
    spec: &StackSpec,
    starts: Option<&[f64]>,
    episodes: usize,
    threads: usize,
    reps: usize,
) -> Cell {
    let mut batch = BatchConfig::new(template.clone(), episodes);
    batch.threads = threads;
    if let Some(s) = starts {
        batch.starts = s.to_vec();
    }

    // Warm the scenario/planner caches and page in the code before timing.
    let _ = run_batch(&batch, spec).expect("valid batch");

    // Interleave the two paths and keep each one's best wall time: on a
    // shared box a single 4–40 ms sample is dominated by scheduler noise
    // and thread-spawn jitter, and the minimum is the standard
    // least-noise throughput estimator.
    let mut static_secs = f64::INFINITY;
    let mut dynamic_secs = f64::INFINITY;
    let mut static_results = Vec::new();
    let mut dynamic_results = Vec::new();
    for _ in 0..reps.max(1) {
        let (s, s_secs) = timed(|| run_batch_static(&batch, spec));
        static_results = s.expect("valid batch");
        static_secs = static_secs.min(s_secs);
        let (d, d_secs) = timed(|| run_batch(&batch, spec));
        dynamic_results = d.expect("valid batch");
        dynamic_secs = dynamic_secs.min(d_secs);
    }

    assert_eq!(
        static_results, dynamic_results,
        "{stack} @ {threads} threads: dynamic scheduler diverged from static baseline"
    );
    let sa = BatchSummary::from_results(&static_results);
    let sb = BatchSummary::from_results(&dynamic_results);
    assert!(sa.stats_eq(&sb), "summary stats diverged");

    let total_steps: u64 = dynamic_results
        .iter()
        .map(|r: &EpisodeResult| r.total_steps)
        .sum();
    Cell {
        stack,
        threads,
        episodes,
        static_secs,
        dynamic_secs,
        static_eps: episodes as f64 / static_secs,
        dynamic_eps: episodes as f64 / dynamic_secs,
        ns_per_step: dynamic_secs * 1e9 / total_steps.max(1) as f64,
        total_steps,
        speedup: static_secs / dynamic_secs,
    }
}

/// One cell of the event-engine comparison: the fixed-step dynamic path
/// vs [`BatchMode::EventDriven`] on the same batch.
struct EventCell {
    stack: &'static str,
    threads: usize,
    episodes: usize,
    fixed_secs: f64,
    event_secs: f64,
    fixed_eps: f64,
    event_eps: f64,
    event_speedup: f64,
}

/// Times the fixed-step dynamic path against the event-driven engine
/// (interleaved best-of-reps, like [`run_cell`]) and asserts the
/// bit-identity contract inline: the event engine is an execution
/// strategy, not an approximation, so every [`EpisodeResult`] must match
/// the fixed-step oracle exactly (DESIGN.md §18).
fn event_cell(
    stack: &'static str,
    template: &EpisodeConfig,
    spec: &StackSpec,
    starts: Option<&[f64]>,
    episodes: usize,
    threads: usize,
    reps: usize,
) -> EventCell {
    let mut batch = BatchConfig::new(template.clone(), episodes);
    batch.threads = threads;
    if let Some(s) = starts {
        batch.starts = s.to_vec();
    }

    let _ = run_batch_lanes(&batch, spec, BatchMode::EventDriven, None, None).expect("valid batch");

    let mut fixed_secs = f64::INFINITY;
    let mut event_secs = f64::INFINITY;
    let mut fixed_results = Vec::new();
    let mut event_results = Vec::new();
    for _ in 0..reps.max(1) {
        let (f, f_secs) = timed(|| run_batch(&batch, spec));
        fixed_results = f.expect("valid batch");
        fixed_secs = fixed_secs.min(f_secs);
        let (e, e_secs) =
            timed(|| run_batch_lanes(&batch, spec, BatchMode::EventDriven, None, None));
        event_results = e
            .expect("valid batch")
            .into_results()
            .expect("no quarantine, no interrupt");
        event_secs = event_secs.min(e_secs);
    }

    assert_eq!(
        fixed_results, event_results,
        "{stack} @ {threads} threads: event-driven engine diverged from the fixed-step oracle"
    );

    EventCell {
        stack,
        threads,
        episodes,
        fixed_secs,
        event_secs,
        fixed_eps: episodes as f64 / fixed_secs,
        event_eps: episodes as f64 / event_secs,
        event_speedup: fixed_secs / event_secs,
    }
}

/// Writes a `bench.throughput.baseline/v1` file from
/// `(stack, threads, episodes/sec)` points — the first `--nn-baseline`
/// recording, and the warn-and-record rewrite when a loaded baseline
/// predates a cell family this run produced.
fn write_nn_baseline(path: &str, sims: usize, seed: u64, points: &[(String, usize, f64)]) {
    let json = Json::obj(vec![
        ("schema", Json::str("bench.throughput.baseline/v1")),
        ("sims_per_cell", Json::Int(sims as i128)),
        ("base_seed", Json::Int(seed as i128)),
        (
            "cells",
            Json::Arr(
                points
                    .iter()
                    .map(|(s, t, e)| {
                        Json::obj(vec![
                            ("stack", Json::str(s.as_str())),
                            ("threads", Json::Int(*t as i128)),
                            ("episodes_per_sec", Json::num_or_null(*e)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create nn-baseline directory");
        }
    }
    std::fs::write(path, json.encode()).expect("write nn baseline");
}

/// Loads a `bench.throughput.baseline/v1` file (episodes/sec measured on a
/// previous engine — see `results/BENCH_throughput_seed.json` for the
/// pre-overhaul engine at the growth-seed commit) and returns
/// `(stack, threads) → episodes_per_sec`.
///
/// Older artifacts predate some comparison sections; a baseline missing its
/// `cells` array, or containing cells without the compared fields, loses
/// only those comparisons (logged to stderr) — an old-but-valid artifact
/// must never panic the benchmark that consumes it.
fn load_baseline(path: &str) -> Vec<(String, usize, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
    let json = Json::parse(&text).unwrap_or_else(|e| panic!("--baseline {path}: {e:?}"));
    let Some(cells) = json.get("cells").and_then(Json::as_arr) else {
        eprintln!(
            "warning: --baseline {path}: no `cells` array (older artifact schema); \
             skipping the throughput comparison"
        );
        return Vec::new();
    };
    cells
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let stack = c.get("stack").and_then(Json::as_str);
            let threads = c.get("threads").and_then(Json::as_usize);
            let eps = c.get("episodes_per_sec").and_then(Json::as_f64_lossy);
            match (stack, threads, eps) {
                (Some(s), Some(t), Some(e)) => Some((s.to_string(), t, e)),
                _ => {
                    eprintln!(
                        "warning: --baseline {path}: cell {i} lacks \
                         stack/threads/episodes_per_sec; skipping its comparison"
                    );
                    None
                }
            }
        })
        .collect()
}

/// The warm-cache cell: the same batch submitted twice against one
/// content-addressed episode cache.
struct CacheSection {
    episodes: usize,
    threads: usize,
    cold_wall_secs: f64,
    warm_wall_secs: f64,
    warm_speedup: f64,
    warm_hits: usize,
    bit_identical: bool,
}

/// Times a cold batch (every episode simulated, results inserted) against
/// an immediately repeated warm batch (every episode answered from the
/// cache without touching a worker), asserting the cache contract inline:
/// the warm run must hit on 100% of its episodes, return a bit-identical
/// summary, and land at least 10× under the cold wall time.
fn cache_rates(seed: u64, episodes: usize, threads: usize) -> CacheSection {
    let template = EpisodeConfig::paper_default(seed);
    let spec = StackSpec::pure_teacher_conservative(&template).expect("paper geometry");
    let mut batch = BatchConfig::new(template, episodes);
    batch.threads = threads;
    let cache = EpisodeCache::new(DEFAULT_CACHE_BYTES);
    let cancel = AtomicBool::new(false);
    let run = || {
        let t0 = Instant::now();
        let outcome = run_sharded_cached(
            &batch,
            &spec,
            JobLimits::new(threads),
            &cancel,
            None,
            Some(&cache),
            |_| {},
        );
        let secs = t0.elapsed().as_secs_f64();
        match outcome {
            JobOutcome::Completed(summary) => (summary, secs),
            other => panic!("cache cell: expected completion, got {other:?}"),
        }
    };
    let (cold, cold_wall_secs) = run();
    let (warm, warm_wall_secs) = run();

    assert_eq!(
        (cold.cache_hits, cold.cache_misses),
        (0, episodes),
        "cold run must miss on every episode"
    );
    assert_eq!(
        (warm.cache_hits, warm.cache_misses),
        (episodes, 0),
        "warm run must hit on 100% of its episodes"
    );
    let bit_identical = cold.stats_eq(&warm)
        && cold
            .etas
            .iter()
            .zip(&warm.etas)
            .all(|(a, b)| a.to_bits() == b.to_bits())
        && cold
            .reaching_times
            .iter()
            .zip(&warm.reaching_times)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "warm summary diverged from the cold run");
    // An unmeasurably fast warm run (wall time rounds to zero) is an
    // infinite speedup, not a division hazard.
    let warm_speedup = if warm_wall_secs > 0.0 {
        cold_wall_secs / warm_wall_secs
    } else {
        f64::INFINITY
    };
    assert!(
        warm_speedup >= 10.0,
        "warm cache must be >=10x faster than cold: {cold_wall_secs:.6}s cold \
         vs {warm_wall_secs:.6}s warm ({warm_speedup:.1}x)"
    );
    CacheSection {
        episodes,
        threads,
        cold_wall_secs,
        warm_wall_secs,
        warm_speedup,
        warm_hits: warm.cache_hits,
        bit_identical,
    }
}

/// One lane width's timing against the per-episode reference.
struct LaneCell {
    k: usize,
    wall_secs: f64,
    eps: f64,
    speedup_vs_per_episode: f64,
    within_tolerance: bool,
}

/// The lane-batched execution mode on the pure-NN stack, single worker.
struct LaneSection {
    stack: &'static str,
    episodes: usize,
    per_episode_secs: f64,
    per_episode_eps: f64,
    cells: Vec<LaneCell>,
}

/// Times `run_batch_lanes` on the pure-NN stack for K ∈ {1, 2, 4, 8} at a
/// single worker thread (so the per-K speedup comes from lane batching
/// alone, not parallelism) against the per-episode supervised path, and
/// asserts the numeric contract inline: `Lanes(1)` bit-identical to the
/// reference, K > 1 within the per-field tolerance gate on every episode.
fn lane_rates(seed: u64, episodes: usize, reps: usize) -> LaneSection {
    const KS: [usize; 4] = [1, 2, 4, 8];
    let template = EpisodeConfig::paper_default(seed);
    let ego_limits = template.scenario().expect("paper geometry").ego_limits();
    let planner = NnPlanner::new(
        case_study_net(seed),
        ego_limits,
        FeatureScaling::left_turn(),
        "bench-nn",
    );
    let spec = StackSpec::PureNn {
        planner,
        window: WindowKind::Conservative,
    };
    let mut batch = BatchConfig::new(template, episodes);
    batch.threads = 1;

    // Warm the scenario/planner caches and page in the code before timing.
    let _ = run_batch_lanes(&batch, &spec, BatchMode::PerEpisode, None, None).expect("valid batch");

    // Interleave the reference and every K per rep, keeping each one's
    // best wall time (same least-noise estimator as the batch matrix).
    let mut per_episode_secs = f64::INFINITY;
    let mut reference: Vec<EpisodeResult> = Vec::new();
    let mut lane_secs = [f64::INFINITY; KS.len()];
    let mut lane_results: Vec<Vec<EpisodeResult>> = vec![Vec::new(); KS.len()];
    for _ in 0..reps.max(1) {
        let (r, s) = timed(|| run_batch_lanes(&batch, &spec, BatchMode::PerEpisode, None, None));
        reference = r.expect("valid batch").into_results().expect("clean batch");
        per_episode_secs = per_episode_secs.min(s);
        for (j, &k) in KS.iter().enumerate() {
            let (r, s) = timed(|| run_batch_lanes(&batch, &spec, BatchMode::Lanes(k), None, None));
            lane_results[j] = r.expect("valid batch").into_results().expect("clean batch");
            lane_secs[j] = lane_secs[j].min(s);
        }
    }

    let cells = KS
        .iter()
        .zip(lane_secs)
        .zip(&lane_results)
        .map(|((&k, wall_secs), results)| {
            assert_eq!(results.len(), reference.len(), "lane K={k} lost episodes");
            if k == 1 {
                assert_eq!(
                    results, &reference,
                    "Lanes(1) must be bit-identical to the per-episode path"
                );
            }
            let mut within_tolerance = true;
            for (r, b) in reference.iter().zip(results) {
                if let Err(e) = lane_tolerance_check(r, b) {
                    within_tolerance = false;
                    eprintln!("lane K={k}: tolerance violation: {e}");
                }
            }
            assert!(
                within_tolerance,
                "lane K={k} violated the tolerance contract"
            );
            LaneCell {
                k,
                wall_secs,
                eps: episodes as f64 / wall_secs,
                speedup_vs_per_episode: per_episode_secs / wall_secs,
                within_tolerance,
            }
        })
        .collect();

    LaneSection {
        stack: "nn-pure/no-disturbance",
        episodes,
        per_episode_secs,
        per_episode_eps: episodes as f64 / per_episode_secs,
        cells,
    }
}

/// Measured rates of the NN compute layer (forward pass + training loop).
struct NnSection {
    ns_per_forward_alloc: f64,
    ns_per_forward_scratch: f64,
    forward_speedup: f64,
    forward_bit_identical: bool,
    clone_epochs: usize,
    clone_epochs_per_sec_alloc: f64,
    clone_epochs_per_sec_in_place: f64,
    training_speedup: f64,
    training_bit_identical: bool,
}

/// Times the case-study forward pass — the pre-PR allocating path
/// (`from_vec` → per-layer `forward` → `to_vec`, exactly the old
/// `Mlp::predict`) against the scratch-backed fused `predict_into` — and a
/// behaviour-cloning-shaped training run through the allocating reference
/// trainer (`fit_alloc`) vs the in-place trainer (`fit`). Both comparisons
/// also verify bit-identity, which lands in the JSON artifact.
fn nn_rates(seed: u64) -> NnSection {
    let net = case_study_net(seed);
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x00D1_5EA5);
    let inputs: Vec<[f64; 5]> = (0..256)
        .map(|_| std::array::from_fn(|_| rng.random_range(-1.0..1.0)))
        .collect();

    // Bit identity on every probe input before timing anything.
    let mut scratch = MlpScratch::for_net(&net);
    let mut out = [0.0];
    let mut forward_bit_identical = true;
    for input in &inputs {
        // Reference = the pre-PR `Mlp::predict`: naive kernel, separate
        // bias/activation passes (also what the alloc timing below runs).
        let x = Matrix::from_vec(1, 5, input.to_vec()).expect("probe shape");
        let mut reference = x.clone();
        for layer in net.layers() {
            reference = reference
                .matmul_naive(layer.weights())
                .expect("probe matmul")
                .add_row_broadcast(layer.bias())
                .expect("probe bias");
            let act = layer.activation();
            reference = reference.map(|v| act.apply(v));
        }
        net.predict_into(input, &mut scratch, &mut out)
            .expect("probe predict");
        forward_bit_identical &= reference.as_slice()[0].to_bits() == out[0].to_bits();
    }

    // ns per forward, amortised over the probe set inside the timed routine
    // so input staging varies realistically. The two paths are interleaved
    // so clock-frequency drift biases neither; the minimum over rounds is
    // the least-disturbed run of each.
    let (mut alloc_batch_ns, mut scratch_batch_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..4 {
        alloc_batch_ns = alloc_batch_ns.min(measure_ns(3, || {
            let mut acc = 0.0;
            for input in &inputs {
                // The pre-PR `Mlp::predict`, reconstructed from the
                // retained naive kernel: staging copy, input clone, three
                // allocating layer ops, output copy.
                let x = Matrix::from_vec(1, 5, input.to_vec()).expect("probe shape");
                let mut cur = x.clone();
                for layer in net.layers() {
                    cur = cur
                        .matmul_naive(layer.weights())
                        .expect("probe matmul")
                        .add_row_broadcast(layer.bias())
                        .expect("probe bias");
                    let act = layer.activation();
                    cur = cur.map(|v| act.apply(v));
                }
                acc += cur.as_slice().to_vec()[0];
            }
            acc
        }));
        scratch_batch_ns = scratch_batch_ns.min(measure_ns(3, || {
            let mut acc = 0.0;
            for input in &inputs {
                net.predict_into(input, &mut scratch, &mut out)
                    .expect("probe predict");
                acc += out[0];
            }
            acc
        }));
    }
    let ns_per_forward_alloc = alloc_batch_ns / inputs.len() as f64;
    let ns_per_forward_scratch = scratch_batch_ns / inputs.len() as f64;

    // Behaviour-cloning-shaped workload: 512 samples over the 5 scenario
    // features, mini-batch 128, Adam — the `clone_behaviour` defaults.
    let x = Matrix::from_fn(512, 5, |_, _| rng.random_range(-1.0..1.0));
    let y = Matrix::from_fn(512, 1, |_, _| rng.random_range(-1.0..1.0));
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 128,
        seed: seed ^ 0x5EED,
        ..TrainConfig::default()
    };
    let trainer = Trainer::new(Optimizer::adam(5e-3), cfg);

    let mut net_a = net.clone();
    trainer.fit(&mut net_a, &x, &y).expect("in-place fit");
    let mut net_b = net.clone();
    trainer
        .fit_alloc(&mut net_b, &x, &y)
        .expect("allocating fit");
    let training_bit_identical = net_a.layers().iter().zip(net_b.layers()).all(|(a, b)| {
        a.weights()
            .as_slice()
            .iter()
            .zip(b.weights().as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits())
            && a.bias()
                .iter()
                .zip(b.bias())
                .all(|(p, q)| p.to_bits() == q.to_bits())
    });

    // Interleave the two timings so clock-frequency drift biases neither
    // side; the minimum over rounds is the least-disturbed run of each.
    let (mut alloc_run_ns, mut in_place_run_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..4 {
        alloc_run_ns = alloc_run_ns.min(measure_ns(3, || {
            let mut n = net.clone();
            trainer.fit_alloc(&mut n, &x, &y).expect("allocating fit");
        }));
        in_place_run_ns = in_place_run_ns.min(measure_ns(3, || {
            let mut n = net.clone();
            trainer.fit(&mut n, &x, &y).expect("in-place fit");
        }));
    }

    NnSection {
        ns_per_forward_alloc,
        ns_per_forward_scratch,
        forward_speedup: ns_per_forward_alloc / ns_per_forward_scratch,
        forward_bit_identical,
        clone_epochs: cfg.epochs,
        clone_epochs_per_sec_alloc: cfg.epochs as f64 / (alloc_run_ns * 1e-9),
        clone_epochs_per_sec_in_place: cfg.epochs as f64 / (in_place_run_ns * 1e-9),
        training_speedup: alloc_run_ns / in_place_run_ns,
        training_bit_identical,
    }
}

/// Micro-benchmarks the matmul kernel family; returns
/// `(matmul_gflops, tr_matmul_speedup_64, tr_matmul_speedup_training)`.
///
/// `tr_matmul` is the transpose-free `xᵀ·δ` weight-gradient kernel; it is
/// compared against materialise-the-transpose-then-`matmul` both on a
/// square 64×64 case and on the behaviour-cloning mini-batch shape
/// (64-row batch, 16-wide hidden layer).
fn kernel_rates() -> (f64, f64, f64) {
    // Best of three shim runs per routine: a single mean is still at the
    // mercy of a noisy neighbour on a shared box.
    fn best_ns<R>(mut routine: impl FnMut() -> R) -> f64 {
        (0..3)
            .map(|_| measure_ns(5, &mut routine))
            .fold(f64::INFINITY, f64::min)
    }

    let n = 64usize;
    let mut rng = SplitMix64::seed_from_u64(7);
    let a = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));
    let b = Matrix::from_fn(n, n, |_, _| rng.random_range(-1.0..1.0));

    let matmul_ns = best_ns(|| a.matmul(&b).unwrap());
    let flops = 2.0 * (n * n * n) as f64;
    let gflops = flops / matmul_ns;

    let sq_fast_ns = best_ns(|| a.tr_matmul(&b).unwrap());
    let sq_ref_ns = best_ns(|| a.transpose().matmul(&b).unwrap());

    let x = Matrix::from_fn(64, 16, |_, _| rng.random_range(-1.0..1.0));
    let d = Matrix::from_fn(64, 16, |_, _| rng.random_range(-1.0..1.0));
    let tr_fast_ns = best_ns(|| x.tr_matmul(&d).unwrap());
    let tr_ref_ns = best_ns(|| x.transpose().matmul(&d).unwrap());
    (gflops, sq_ref_ns / sq_fast_ns, tr_ref_ns / tr_fast_ns)
}

fn main() {
    let sims = bench::arg_usize("--sims", 2000);
    let reps = bench::arg_usize("--reps", 7);
    let seed = bench::arg_usize("--seed", 1) as u64;
    let threads: Vec<usize> = bench::arg_string("--threads", "1,2,4,8")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let out_path = bench::arg_string("--out", "results/BENCH_throughput.json");
    let baseline_path = bench::arg_string("--baseline", "");
    let nn_baseline_path = bench::arg_string("--nn-baseline", "");
    let baseline = if baseline_path.is_empty() {
        Vec::new()
    } else {
        load_baseline(&baseline_path)
    };
    assert!(
        !threads.is_empty(),
        "--threads must name at least one count"
    );

    println!("episode throughput: {sims} episodes/cell, threads {threads:?}");
    println!(
        "{:<30} {:>7} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "stack", "threads", "static ep/s", "dynamic ep/s", "speedup", "ns/step", "vs seed"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let matrix = stack_matrix(seed);
    for &(stack, ref template, ref spec, ref starts) in &matrix {
        for &t in &threads {
            let cell = run_cell(stack, template, spec, starts.as_deref(), sims, t, reps);
            let vs_baseline = baseline
                .iter()
                .find(|(s, bt, _)| s == cell.stack && *bt == cell.threads)
                .map_or("-".to_string(), |(_, _, eps)| {
                    format!("{:.2}x", cell.dynamic_eps / eps)
                });
            println!(
                "{:<30} {:>7} {:>12.1} {:>12.1} {:>8.2}x {:>10.0} {:>9}",
                cell.stack,
                cell.threads,
                cell.static_eps,
                cell.dynamic_eps,
                cell.speedup,
                cell.ns_per_step,
                vs_baseline
            );
            cells.push(cell);
        }
    }

    // WAIVER(nn-basic-dynamic-parity): the nn-basic cells have measured as
    // low as 0.995x vs the static scheduler at 2 threads — run-to-run
    // scheduler jitter on short shielded episodes, not a real regression
    // (measured cause in DESIGN.md §15). The gate therefore asserts the
    // waiver floor of 0.95x rather than strict parity, and only on
    // measurement-quality runs (≥200 episodes/cell) where the best-of-reps
    // estimator is stable; smoke runs stay shape checks.
    if sims >= 200 {
        for c in cells.iter().filter(|c| c.stack.starts_with("nn-basic")) {
            assert!(
                c.speedup >= 0.95,
                "{} @ {} threads: dynamic scheduler at {:.3}x vs static fell \
                 below the 0.95x waiver floor (DESIGN.md §15)",
                c.stack,
                c.threads,
                c.speedup
            );
        }
    }

    let lanes = lane_rates(seed, sims, reps);
    println!(
        "lane batching ({} episodes, 1 worker, {}): per-episode {:.1} ep/s",
        lanes.episodes, lanes.stack, lanes.per_episode_eps
    );
    for lc in &lanes.cells {
        println!(
            "  K={}: {:>10.1} ep/s ({:.2}x per-episode, within tolerance: {})",
            lc.k, lc.eps, lc.speedup_vs_per_episode, lc.within_tolerance
        );
    }

    // Event-driven engine: fixed-step dynamic path vs
    // `BatchMode::EventDriven` on the n = 8 platoon cells — the dense
    // paper-default platoon (late retirements: the engine's worst platoon
    // case) and the sparse-disturbance cell it is built for (early
    // retirements, lost channels: DESIGN.md §18).
    let event_stacks = ["platoon-n8/teacher-cons", "platoon-n8-sparse/comm-lost"];
    println!("event-driven engine (bit-identity vs fixed-step asserted per cell):");
    let mut event_cells: Vec<EventCell> = Vec::new();
    for &(stack, ref template, ref spec, ref starts) in matrix
        .iter()
        .filter(|(s, _, _, _)| event_stacks.contains(s))
    {
        for &t in &threads {
            let ec = event_cell(stack, template, spec, starts.as_deref(), sims, t, reps);
            println!(
                "  {:<30} @ {} threads: fixed {:>8.1} ep/s -> event {:>8.1} ep/s ({:.2}x)",
                ec.stack, ec.threads, ec.fixed_eps, ec.event_eps, ec.event_speedup
            );
            event_cells.push(ec);
        }
    }

    // NN baseline: the growth-seed baseline predates the NN and platoon
    // stacks, so their `speedup_vs_baseline` was always null. The first run
    // with --nn-baseline records this run's NN, lane, and platoon cells;
    // later runs compare against the recorded file under the same 10%
    // regression gate as the seed baseline.
    let lane_cell_name = |k: usize| format!("nn-lanes-k{k}/no-disturbance");
    let event_cell_name = |stack: &str| format!("event-{stack}");
    let nn_points: Vec<(String, usize, f64)> = cells
        .iter()
        .filter(|c| c.stack.starts_with("nn-") || c.stack.starts_with("platoon-"))
        .map(|c| (c.stack.to_string(), c.threads, c.dynamic_eps))
        .chain(
            lanes
                .cells
                .iter()
                .map(|lc| (lane_cell_name(lc.k), 1, lc.eps)),
        )
        .chain(
            event_cells
                .iter()
                .map(|ec| (event_cell_name(ec.stack), ec.threads, ec.event_eps)),
        )
        .collect();
    let nn_baseline: Vec<(String, usize, f64)> = if nn_baseline_path.is_empty() {
        Vec::new()
    } else if std::path::Path::new(&nn_baseline_path).exists() {
        let mut loaded = load_baseline(&nn_baseline_path);
        // A baseline recorded before a new cell family landed (a new
        // platoon size, the lane cells, the event-engine cells) has no
        // entry for it, and silently skipping the comparison would leave
        // that family ungated forever. Seed every missing cell from this
        // run — it lands at exactly 1.00x now — name each one, and rewrite
        // the file so the next run gates them against today's numbers.
        let newly_seeded: Vec<(String, usize, f64)> = nn_points
            .iter()
            .filter(|(s, t, _)| !loaded.iter().any(|(bs, bt, _)| bs == s && bt == t))
            .cloned()
            .collect();
        if !newly_seeded.is_empty() {
            for (s, t, e) in &newly_seeded {
                println!(
                    "warning: nn baseline {nn_baseline_path} predates cell \
                     {s} @ {t} threads; seeding it at {e:.1} ep/s from this run"
                );
            }
            loaded.extend(newly_seeded.iter().cloned());
            write_nn_baseline(&nn_baseline_path, sims, seed, &loaded);
            println!(
                "re-recorded nn baseline {nn_baseline_path} with {} newly seeded cell(s)",
                newly_seeded.len()
            );
        }
        loaded
    } else {
        write_nn_baseline(&nn_baseline_path, sims, seed, &nn_points);
        println!("recorded nn baseline {nn_baseline_path}");
        // Compare this run against what it just wrote: every NN cell lands
        // at exactly 1.00x and the field stops being null from run one.
        nn_points.clone()
    };
    let baseline: Vec<(String, usize, f64)> = baseline.into_iter().chain(nn_baseline).collect();

    let cache = cache_rates(seed, sims, *threads.last().expect("non-empty threads"));
    println!(
        "warm cache ({} episodes): {:.4}s cold -> {:.6}s warm ({:.0}x, {} hits, bit-identical: {})",
        cache.episodes,
        cache.cold_wall_secs,
        cache.warm_wall_secs,
        cache.warm_speedup,
        cache.warm_hits,
        cache.bit_identical
    );

    let nn = nn_rates(seed);
    println!(
        "nn forward (5x32x32x1): {:.0} ns alloc -> {:.0} ns scratch ({:.2}x, bit-identical: {})",
        nn.ns_per_forward_alloc,
        nn.ns_per_forward_scratch,
        nn.forward_speedup,
        nn.forward_bit_identical
    );
    println!(
        "nn cloning ({} epochs): {:.1} ep/s alloc -> {:.1} ep/s in-place ({:.2}x, bit-identical: {})",
        nn.clone_epochs,
        nn.clone_epochs_per_sec_alloc,
        nn.clone_epochs_per_sec_in_place,
        nn.training_speedup,
        nn.training_bit_identical
    );

    let (gflops, tr_speedup_sq, tr_speedup_train) = kernel_rates();
    println!(
        "kernels: matmul {gflops:.2} GFLOP/s, tr_matmul vs transpose+matmul \
         {tr_speedup_sq:.2}x (64x64) / {tr_speedup_train:.2}x (training shape)"
    );

    let json = Json::obj(vec![
        ("schema", Json::str("bench.throughput/v5")),
        ("sims_per_cell", Json::Int(sims as i128)),
        ("reps_per_cell", Json::Int(reps as i128)),
        ("base_seed", Json::Int(seed as i128)),
        (
            "baseline_file",
            if baseline_path.is_empty() {
                Json::Null
            } else {
                Json::str(&baseline_path)
            },
        ),
        (
            "nn_baseline_file",
            if nn_baseline_path.is_empty() {
                Json::Null
            } else {
                Json::str(&nn_baseline_path)
            },
        ),
        (
            "threads",
            Json::Arr(threads.iter().map(|&t| Json::Int(t as i128)).collect()),
        ),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let vs_baseline = baseline
                            .iter()
                            .find(|(s, t, _)| s == c.stack && *t == c.threads)
                            .map(|(_, _, eps)| c.dynamic_eps / eps);
                        Json::obj(vec![
                            ("stack", Json::str(c.stack)),
                            ("threads", Json::Int(c.threads as i128)),
                            ("episodes", Json::Int(c.episodes as i128)),
                            ("total_steps", Json::Int(c.total_steps as i128)),
                            ("static_wall_secs", Json::num_or_null(c.static_secs)),
                            ("dynamic_wall_secs", Json::num_or_null(c.dynamic_secs)),
                            ("static_episodes_per_sec", Json::num_or_null(c.static_eps)),
                            ("dynamic_episodes_per_sec", Json::num_or_null(c.dynamic_eps)),
                            ("dynamic_ns_per_step", Json::num_or_null(c.ns_per_step)),
                            ("speedup_vs_static", Json::num_or_null(c.speedup)),
                            (
                                "speedup_vs_baseline",
                                Json::num_or_null(vs_baseline.unwrap_or(f64::NAN)),
                            ),
                            ("bit_identical", Json::Bool(true)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "lanes",
            Json::obj(vec![
                ("stack", Json::str(lanes.stack)),
                ("episodes", Json::Int(lanes.episodes as i128)),
                ("threads", Json::Int(1)),
                (
                    "per_episode_wall_secs",
                    Json::num_or_null(lanes.per_episode_secs),
                ),
                ("per_episode_eps", Json::num_or_null(lanes.per_episode_eps)),
                (
                    "cells",
                    Json::Arr(
                        lanes
                            .cells
                            .iter()
                            .map(|lc| {
                                let vs_baseline = baseline
                                    .iter()
                                    .find(|(s, t, _)| *s == lane_cell_name(lc.k) && *t == 1)
                                    .map(|(_, _, eps)| lc.eps / eps);
                                Json::obj(vec![
                                    ("k", Json::Int(lc.k as i128)),
                                    ("wall_secs", Json::num_or_null(lc.wall_secs)),
                                    ("episodes_per_sec", Json::num_or_null(lc.eps)),
                                    (
                                        "speedup_vs_per_episode",
                                        Json::num_or_null(lc.speedup_vs_per_episode),
                                    ),
                                    (
                                        "speedup_vs_baseline",
                                        Json::num_or_null(vs_baseline.unwrap_or(f64::NAN)),
                                    ),
                                    ("within_tolerance", Json::Bool(lc.within_tolerance)),
                                    ("bit_identical", Json::Bool(lc.k == 1)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "events",
            Json::obj(vec![(
                "cells",
                Json::Arr(
                    event_cells
                        .iter()
                        .map(|ec| {
                            let vs_baseline = baseline
                                .iter()
                                .find(|(s, t, _)| {
                                    *s == event_cell_name(ec.stack) && *t == ec.threads
                                })
                                .map(|(_, _, eps)| ec.event_eps / eps);
                            Json::obj(vec![
                                ("stack", Json::str(ec.stack)),
                                ("threads", Json::Int(ec.threads as i128)),
                                ("episodes", Json::Int(ec.episodes as i128)),
                                ("fixed_wall_secs", Json::num_or_null(ec.fixed_secs)),
                                ("event_wall_secs", Json::num_or_null(ec.event_secs)),
                                ("fixed_episodes_per_sec", Json::num_or_null(ec.fixed_eps)),
                                ("event_episodes_per_sec", Json::num_or_null(ec.event_eps)),
                                ("event_speedup", Json::num_or_null(ec.event_speedup)),
                                (
                                    "speedup_vs_baseline",
                                    Json::num_or_null(vs_baseline.unwrap_or(f64::NAN)),
                                ),
                                ("bit_identical", Json::Bool(true)),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("episodes", Json::Int(cache.episodes as i128)),
                ("threads", Json::Int(cache.threads as i128)),
                ("cold_wall_secs", Json::num_or_null(cache.cold_wall_secs)),
                ("warm_wall_secs", Json::num_or_null(cache.warm_wall_secs)),
                ("warm_speedup", Json::num_or_null(cache.warm_speedup)),
                ("warm_hits", Json::Int(cache.warm_hits as i128)),
                ("bit_identical", Json::Bool(cache.bit_identical)),
            ]),
        ),
        (
            "nn",
            Json::obj(vec![
                ("shape", Json::str("5x32x32x1")),
                (
                    "ns_per_forward_alloc",
                    Json::num_or_null(nn.ns_per_forward_alloc),
                ),
                (
                    "ns_per_forward_scratch",
                    Json::num_or_null(nn.ns_per_forward_scratch),
                ),
                ("forward_speedup", Json::num_or_null(nn.forward_speedup)),
                ("bit_identical", Json::Bool(nn.forward_bit_identical)),
                ("clone_epochs", Json::Int(nn.clone_epochs as i128)),
                (
                    "clone_epochs_per_sec_alloc",
                    Json::num_or_null(nn.clone_epochs_per_sec_alloc),
                ),
                (
                    "clone_epochs_per_sec_in_place",
                    Json::num_or_null(nn.clone_epochs_per_sec_in_place),
                ),
                ("training_speedup", Json::num_or_null(nn.training_speedup)),
                (
                    "training_bit_identical",
                    Json::Bool(nn.training_bit_identical),
                ),
            ]),
        ),
        (
            "kernels",
            Json::obj(vec![
                ("matmul_gflops_64", Json::num_or_null(gflops)),
                (
                    "tr_matmul_speedup_vs_transpose_matmul_64",
                    Json::num_or_null(tr_speedup_sq),
                ),
                (
                    "tr_matmul_speedup_vs_transpose_matmul_training_shape",
                    Json::num_or_null(tr_speedup_train),
                ),
            ]),
        ),
    ]);

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, json.encode()).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // Regression gate: any matrix or lane cell more than 10% below its
    // recorded baseline fails the run (after the artifact is written, so
    // the numbers that triggered the failure are on disk for inspection).
    let mut regressions: Vec<String> = cells
        .iter()
        .filter_map(|c| {
            let (_, _, base_eps) = baseline
                .iter()
                .find(|(s, t, _)| *s == c.stack && *t == c.threads)?;
            (c.dynamic_eps < 0.9 * base_eps).then(|| {
                format!(
                    "{} @ {} threads: {:.1} ep/s vs baseline {:.1} ep/s ({:.0}%)",
                    c.stack,
                    c.threads,
                    c.dynamic_eps,
                    base_eps,
                    100.0 * c.dynamic_eps / base_eps
                )
            })
        })
        .collect();
    for lc in &lanes.cells {
        let Some((_, _, base_eps)) = baseline
            .iter()
            .find(|(s, t, _)| *s == lane_cell_name(lc.k) && *t == 1)
        else {
            continue;
        };
        if lc.eps < 0.9 * base_eps {
            regressions.push(format!(
                "{} @ 1 thread: {:.1} ep/s vs baseline {:.1} ep/s ({:.0}%)",
                lane_cell_name(lc.k),
                lc.eps,
                base_eps,
                100.0 * lc.eps / base_eps
            ));
        }
    }
    for ec in &event_cells {
        let Some((_, _, base_eps)) = baseline
            .iter()
            .find(|(s, t, _)| *s == event_cell_name(ec.stack) && *t == ec.threads)
        else {
            continue;
        };
        if ec.event_eps < 0.9 * base_eps {
            regressions.push(format!(
                "{} @ {} threads: {:.1} ep/s vs baseline {:.1} ep/s ({:.0}%)",
                event_cell_name(ec.stack),
                ec.threads,
                ec.event_eps,
                base_eps,
                100.0 * ec.event_eps / base_eps
            ));
        }
    }
    if !regressions.is_empty() {
        eprintln!("THROUGHPUT REGRESSION (>10% below baseline):");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
