//! Shared experiment harness for regenerating the paper's tables & figures.
//!
//! Every binary in `src/bin/` (one per paper artifact) and every micro-
//! bench builds on these helpers:
//!
//! * [`planners`] — loads (or trains once, cached under
//!   `target/planner-cache/`) the conservative and aggressive NN planners.
//! * [`CommScenario`] — the three communication settings of Section V with
//!   the paper's parameters.
//! * [`evaluate_block`] / [`TableRow`] — run one (setting × planner-stack)
//!   cell of Tables I/II and format it like the paper.
//!
//! Binaries accept `--sims N` to scale the Monte-Carlo size (the paper used
//! 80,000 per setting; the default here is 2,000, which already stabilises
//! every qualitative ordering).

pub mod timing;

use cv_comm::CommSetting;
use cv_planner::NnPlanner;
use cv_sensing::SensorNoise;
use cv_sim::training::{load_or_train_planners, TrainSetup};
use cv_sim::{
    run_batch, winning_percentage, BatchConfig, BatchSummary, EpisodeConfig, StackSpec, WindowKind,
};
use safe_shield::AggressiveConfig;
use std::path::PathBuf;

/// Directory used to cache trained planner weights between runs.
pub fn planner_cache_dir() -> PathBuf {
    // Keep the cache inside the workspace target dir so `cargo clean`
    // removes it.
    let mut dir = std::env::current_dir().expect("cwd");
    // Walk up to the workspace root (directory containing Cargo.toml with
    // [workspace]); fall back to cwd.
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    break;
                }
            }
        }
        if !dir.pop() {
            dir = std::env::current_dir().expect("cwd");
            break;
        }
    }
    dir.join("target").join("planner-cache")
}

/// Loads (or trains and caches) the two NN planners of Section V-A:
/// `(κ_n,cons, κ_n,aggr)`.
pub fn planners() -> (NnPlanner, NnPlanner) {
    load_or_train_planners(&planner_cache_dir(), &TrainSetup::default())
        .expect("planner training must succeed")
}

/// The three communication settings of the paper's tables, with their
/// default parameters (`Δt_d = 0.25 s`; table cells use `p_d = 0.25` and
/// `δ = 2` as representative mid-sweep values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommScenario {
    /// Perfect communication.
    NoDisturbance,
    /// Messages delayed 0.25 s and dropped with probability 0.25.
    Delayed,
    /// All messages lost; sensing only, `δ = 2`.
    Lost,
}

impl CommScenario {
    /// All three, in table order.
    pub fn all() -> [CommScenario; 3] {
        [
            CommScenario::NoDisturbance,
            CommScenario::Delayed,
            CommScenario::Lost,
        ]
    }

    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            CommScenario::NoDisturbance => "no disturbance",
            CommScenario::Delayed => "messages delayed",
            CommScenario::Lost => "messages lost",
        }
    }

    /// Applies the setting to an episode template.
    pub fn apply(&self, cfg: &mut EpisodeConfig) {
        match self {
            CommScenario::NoDisturbance => {
                cfg.comm = CommSetting::NoDisturbance;
                cfg.noise = SensorNoise::uniform(1.0);
            }
            CommScenario::Delayed => {
                cfg.comm = CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: 0.25,
                };
                cfg.noise = SensorNoise::uniform(1.0);
            }
            CommScenario::Lost => {
                cfg.comm = CommSetting::Lost;
                cfg.noise = SensorNoise::uniform(2.0);
            }
        }
    }
}

/// Planner personality (which NN is embedded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Conservative family (`Table I`).
    Conservative,
    /// Aggressive family (`Table II`).
    Aggressive,
}

impl Family {
    /// Window flavour the unshielded planner consumes.
    pub fn window_kind(&self) -> WindowKind {
        match self {
            Family::Conservative => WindowKind::Conservative,
            Family::Aggressive => WindowKind::Nominal,
        }
    }
}

/// The three stacks compared in each table block.
pub fn stacks_for(planner: &NnPlanner, family: Family) -> [(&'static str, StackSpec); 3] {
    [
        (
            "pure NN",
            StackSpec::PureNn {
                planner: planner.clone(),
                window: family.window_kind(),
            },
        ),
        ("basic", StackSpec::basic(planner.clone())),
        (
            "ultimate",
            StackSpec::ultimate(planner.clone(), AggressiveConfig::default()),
        ),
    ]
}

/// One row of Table I/II.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Communication setting label.
    pub setting: &'static str,
    /// Planner label.
    pub planner: &'static str,
    /// Summary statistics.
    pub summary: BatchSummary,
    /// Winning percentage of the ultimate planner against this row
    /// (`None` for the ultimate row itself).
    pub ultimate_wins: Option<f64>,
}

impl TableRow {
    /// Formats the row like the paper's tables.
    pub fn format(&self) -> String {
        let reaching = if self.summary.reaching_time.is_nan() {
            "   --  ".to_string()
        } else {
            format!("{:6.3}s", self.summary.reaching_time)
        };
        let winning = match self.ultimate_wins {
            Some(w) => format!("{:7.2}%", 100.0 * w),
            None => "     --".to_string(),
        };
        format!(
            "{:<18} {:<9} {} {:7.2}% {:8.3} {} {:7.2}%",
            self.setting,
            self.planner,
            reaching,
            100.0 * self.summary.safe_rate,
            self.summary.eta_mean,
            winning,
            100.0 * self.summary.emergency_frequency,
        )
    }
}

/// Table header matching [`TableRow::format`].
pub fn table_header() -> String {
    format!(
        "{:<18} {:<9} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "settings", "planner", "reach", "safe", "eta", "win%", "emerg"
    )
}

/// Runs the three stacks of one family under one communication scenario and
/// returns the three paired table rows.
pub fn evaluate_block(
    planner: &NnPlanner,
    family: Family,
    scenario: CommScenario,
    sims: usize,
    base_seed: u64,
) -> Vec<TableRow> {
    let mut template = EpisodeConfig::paper_default(base_seed);
    scenario.apply(&mut template);
    let batch = BatchConfig::new(template, sims);

    let stacks = stacks_for(planner, family);
    let results: Vec<(usize, BatchSummary)> = stacks
        .iter()
        .enumerate()
        .map(|(i, (_, spec))| {
            (
                i,
                BatchSummary::from_results(&run_batch(&batch, spec).expect("valid batch")),
            )
        })
        .collect();
    let ultimate_etas = results[2].1.etas.clone();
    results
        .into_iter()
        .map(|(i, summary)| TableRow {
            setting: scenario.label(),
            planner: stacks[i].0,
            ultimate_wins: (i != 2).then(|| winning_percentage(&ultimate_etas, &summary.etas)),
            summary,
        })
        .collect()
}

/// Parses a `--sims N` style flag from `std::env::args`, with a default.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--panel X` style string flag.
pub fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_scenarios_configure_templates() {
        let mut cfg = EpisodeConfig::paper_default(0);
        CommScenario::Lost.apply(&mut cfg);
        assert_eq!(cfg.comm, CommSetting::Lost);
        assert_eq!(cfg.noise.delta_p, 2.0);
        CommScenario::Delayed.apply(&mut cfg);
        assert!(matches!(cfg.comm, CommSetting::Delayed { .. }));
    }

    #[test]
    fn header_and_rows_align() {
        let header = table_header();
        assert!(header.contains("reach"));
        assert!(header.contains("emerg"));
    }
}
