//! Minimal `std::time`-based micro-benchmark harness.
//!
//! The offline build cannot depend on criterion, so the five bench targets
//! run on this shim instead. It keeps the slice of criterion's API the
//! benches use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], plus the
//! `criterion_group!`/`criterion_main!` macros re-exported from the crate
//! root — and reports mean ± standard deviation over a fixed number of
//! timed samples, each auto-sized to run long enough for the clock to
//! resolve.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Entry point object handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

/// Setup-size hint (API compatibility; the shim ignores it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; per-iteration setup is fine.
    SmallInput,
    /// Setup output is large.
    LargeInput,
}

impl Criterion {
    /// Times `f` and prints one report line for `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
            stats: None,
        };
        f(&mut b);
        match b.stats {
            Some(s) => println!(
                "bench: {name:<44} {:>12.1} ns/iter (± {:.1}, {} samples × {} iters)",
                s.mean_ns, s.std_ns, s.samples, s.iters_per_sample
            ),
            None => println!("bench: {name:<44} (no measurement)"),
        }
        self
    }

    /// Starts a named group (the shim just prefixes benchmark names).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = Some(n.max(2));
        self
    }

    /// Times `f` under `prefix/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = if name.starts_with(&self.prefix) {
            name.to_string()
        } else {
            format!("{}/{name}", self.prefix)
        };
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group, restoring the default sample size.
    pub fn finish(&mut self) {
        self.criterion.sample_size = None;
    }
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    std_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Passed to the closure given to [`Criterion::bench_function`]; runs and
/// times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `routine`, including nothing but the calls themselves.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and size one sample so it exceeds the clock resolution.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if t0.elapsed() >= SAMPLE_TARGET || iters >= (1 << 24) {
                break;
            }
            iters *= 2;
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarise(&per_iter, iters));
    }

    /// Times `routine` on fresh values from `setup`, excluding the setup
    /// cost from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut measure = |iters: u64| -> Duration {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                total += t0.elapsed();
            }
            total
        };
        let mut iters = 1u64;
        while measure(iters) < SAMPLE_TARGET && iters < (1 << 20) {
            iters *= 2;
        }
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            per_iter.push(measure(iters).as_nanos() as f64 / iters as f64);
        }
        self.stats = Some(summarise(&per_iter, iters));
    }
}

/// Machine-readable entry point: times `routine` with the same auto-sizing
/// and sampling as [`Bencher::iter`] and returns the mean ns per iteration
/// (instead of printing a report line). Used by `exp_throughput` to emit
/// kernel rates into its JSON artifact.
pub fn measure_ns<R, F: FnMut() -> R>(samples: usize, routine: F) -> f64 {
    let mut b = Bencher {
        samples: samples.max(2),
        stats: None,
    };
    b.iter(routine);
    b.stats.map_or(f64::NAN, |s| s.mean_ns)
}

fn summarise(per_iter_ns: &[f64], iters: u64) -> Stats {
    let n = per_iter_ns.len() as f64;
    let mean = per_iter_ns.iter().sum::<f64>() / n;
    let var = per_iter_ns
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    Stats {
        mean_ns: mean,
        std_ns: var.sqrt(),
        samples: per_iter_ns.len(),
        iters_per_sample: iters,
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::timing::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::timing::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
