//! Reduced-N versions of every paper artifact, so `cargo bench --workspace`
//! exercises the full pipeline behind each table and figure:
//!
//! * `experiments/table1_cell`, `experiments/table2_cell` — one
//!   (setting × stack-triple) block of Tables I/II;
//! * `experiments/fig5_point` — one sweep point of Fig. 5 (all three
//!   planners);
//! * `experiments/fig6a_filter_rmse` — the Fig. 6a RMSE computation;
//! * `experiments/fig6b_window_trace` — the Fig. 6b traced episode.

use bench::timing::Criterion;
use bench::{criterion_group, criterion_main};
use cv_comm::CommSetting;
use cv_dynamics::{VehicleLimits, VehicleState};
use cv_estimation::TrackingFilter;
use cv_rng::{Rng, SplitMix64};
use cv_sensing::{SensorNoise, UniformNoiseSensor};
use cv_sim::training::{train_planner, Personality, TrainSetup};
use cv_sim::{run_batch, run_episode, BatchConfig, EpisodeConfig, StackSpec, WindowKind};
use safe_shield::AggressiveConfig;
use std::hint::black_box;

const SIMS: usize = 8;

fn stacks(personality: Personality) -> [StackSpec; 3] {
    let nn = train_planner(&TrainSetup::smoke(), personality).expect("training ok");
    let window = match personality {
        Personality::Conservative => WindowKind::Conservative,
        Personality::Aggressive => WindowKind::Nominal,
    };
    [
        StackSpec::PureNn {
            planner: nn.clone(),
            window,
        },
        StackSpec::basic(nn.clone()),
        StackSpec::ultimate(nn, AggressiveConfig::default()),
    ]
}

fn table_cell(c: &mut Criterion, name: &str, personality: Personality) {
    let specs = stacks(personality);
    let mut template = EpisodeConfig::paper_default(1);
    template.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    let batch = BatchConfig::new(template, SIMS);
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| {
            for spec in &specs {
                black_box(run_batch(&batch, spec).expect("valid batch"));
            }
        })
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    table_cell(c, "table1_cell", Personality::Conservative);
}

fn bench_table2(c: &mut Criterion) {
    table_cell(c, "table2_cell", Personality::Aggressive);
}

fn bench_fig5_point(c: &mut Criterion) {
    let specs = stacks(Personality::Conservative);
    let mut template = EpisodeConfig::paper_default(1);
    template.comm = CommSetting::Lost;
    template.noise = SensorNoise::uniform(3.0);
    let batch = BatchConfig::new(template, SIMS);
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig5_point", |b| {
        b.iter(|| {
            for spec in &specs {
                black_box(run_batch(&batch, spec).expect("valid batch"));
            }
        })
    });
    group.finish();
}

fn bench_fig6a(c: &mut Criterion) {
    let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits");
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig6a_filter_rmse", |b| {
        b.iter(|| {
            // One filtered trajectory of the Fig. 6a kind.
            let mut rng = SplitMix64::seed_from_u64(7);
            let mut sensor = UniformNoiseSensor::new(SensorNoise::uniform(2.0), 8);
            let mut truth = VehicleState::new(0.0, 10.0, 0.0);
            let mut filter = TrackingFilter::new(SensorNoise::uniform(2.0), 0.0, 0.0, 10.0)
                .with_process_accel_var(3.0);
            let mut sq = 0.0;
            for step in 0..160u64 {
                let t = step as f64 * 0.05;
                if step % 2 == 0 {
                    filter.on_measurement(&sensor.measure(1, t, &truth));
                    let (mean, _) = filter.predicted(t);
                    sq += (mean.y - truth.velocity).powi(2);
                }
                let a = rng.random_range(-3.0..=3.0);
                truth = limits.step(&truth, a, 0.05);
            }
            black_box(sq)
        })
    });
    group.finish();
}

fn bench_fig6b(c: &mut Criterion) {
    let nn = train_planner(&TrainSetup::smoke(), Personality::Aggressive).expect("training ok");
    let spec = StackSpec::ultimate(nn, AggressiveConfig::default());
    let mut cfg = EpisodeConfig::paper_default(11);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig6b_window_trace", |b| {
        b.iter(|| black_box(run_episode(&cfg, &spec, true).expect("valid episode")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_fig5_point,
    bench_fig6a,
    bench_fig6b
);
criterion_main!(benches);
