//! Whole-episode throughput per planner stack — what determines how fast
//! the Monte-Carlo experiments run.

use bench::timing::Criterion;
use bench::{criterion_group, criterion_main};
use cv_comm::CommSetting;
use cv_sim::training::{train_planner, Personality, TrainSetup};
use cv_sim::{run_episode, EpisodeConfig, StackSpec, WindowKind};
use safe_shield::AggressiveConfig;
use std::hint::black_box;

fn bench_episodes(c: &mut Criterion) {
    let nn = train_planner(&TrainSetup::smoke(), Personality::Conservative).expect("training ok");
    let mut cfg = EpisodeConfig::paper_default(1);
    cfg.comm = CommSetting::Delayed {
        delay: 0.25,
        drop_prob: 0.25,
    };

    let stacks = [
        (
            "episode/pure_nn",
            StackSpec::PureNn {
                planner: nn.clone(),
                window: WindowKind::Conservative,
            },
        ),
        ("episode/basic", StackSpec::basic(nn.clone())),
        (
            "episode/ultimate",
            StackSpec::ultimate(nn.clone(), AggressiveConfig::default()),
        ),
        (
            "episode/teacher",
            StackSpec::pure_teacher_conservative(&cfg).expect("valid scenario"),
        ),
    ];
    let mut group = c.benchmark_group("episode");
    group.sample_size(20);
    for (name, spec) in stacks {
        group.bench_function(name, |b| {
            b.iter(|| run_episode(black_box(&cfg), &spec, false).expect("valid episode"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_episodes);
criterion_main!(benches);
