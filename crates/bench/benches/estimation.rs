//! Micro-benchmarks of the information-filter substrate: these run once per
//! control step per tracked vehicle, so their cost bounds how much traffic a
//! real deployment could monitor.

use bench::timing::{BatchSize, Criterion};
use bench::{criterion_group, criterion_main};
use cv_comm::Message;
use cv_dynamics::VehicleLimits;
use cv_estimation::{
    reachability, Estimator, FilterMode, InformationFilter, Interval, KalmanFilter, Mat2, Prior,
    TrackingFilter, Vec2,
};
use cv_sensing::{Measurement, SensorNoise};
use std::hint::black_box;

fn limits() -> VehicleLimits {
    VehicleLimits::new(3.0, 14.0, -3.0, 3.0).expect("valid limits")
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("estimation/kf_predict_update", |b| {
        b.iter_batched(
            || {
                KalmanFilter::new(
                    SensorNoise::uniform(2.0),
                    Vec2::new(0.0, 10.0),
                    Mat2::diag(4.0, 4.0),
                )
            },
            |mut kf| {
                kf.predict(black_box(0.5), 0.1);
                kf.update(black_box(Vec2::new(1.0, 10.1)));
                kf
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rollback(c: &mut Criterion) {
    // A tracker with a full measurement history absorbing a stale message —
    // the most expensive single event in the pipeline.
    let mut tracker = TrackingFilter::new(SensorNoise::uniform(2.0), 0.0, 0.0, 10.0);
    for i in 1..=100 {
        let t = i as f64 * 0.1;
        tracker.on_measurement(&Measurement::new(1, t, 10.0 * t, 10.0, 0.0));
    }
    let msg = Message::new(1, 5.0, 50.0, 10.0, 0.0);
    c.bench_function("estimation/rollback_replay_50_measurements", |b| {
        b.iter_batched(
            || tracker.clone(),
            |mut t| {
                t.on_message(black_box(&msg));
                t
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_reachability(c: &mut Criterion) {
    let lim = limits();
    c.bench_function("estimation/reach_interval", |b| {
        b.iter(|| {
            reachability::reach(
                black_box(Interval::new(9.0, 11.0)),
                black_box(Interval::new(9.5, 10.5)),
                black_box(0.75),
                &lim,
            )
        })
    });
}

fn bench_filter_estimate(c: &mut Criterion) {
    let mut filt = InformationFilter::new(
        limits(),
        SensorNoise::uniform(2.0),
        FilterMode::Fused,
        Prior::exact(0.0, 0.0, 10.0),
    );
    for i in 1..=20 {
        let t = i as f64 * 0.1;
        filt.on_measurement(&Measurement::new(1, t, 10.0 * t, 10.0, 0.0));
        if i % 3 == 0 {
            filt.on_message(&Message::new(1, t - 0.25, 10.0 * (t - 0.25), 10.0, 0.0));
        }
    }
    c.bench_function("estimation/information_filter_estimate", |b| {
        b.iter(|| filt.estimate(black_box(2.3)))
    });
}

criterion_group!(
    benches,
    bench_kalman,
    bench_rollback,
    bench_reachability,
    bench_filter_estimate
);
criterion_main!(benches);
