//! Micro-benchmarks of the from-scratch NN library: inference cost (what a
//! planner pays per control step) and training throughput.

use bench::timing::{BatchSize, Criterion};
use bench::{criterion_group, criterion_main};
use cv_nn::{Activation, Matrix, Mlp, Optimizer, TrainConfig, Trainer};
use std::hint::black_box;

fn planner_net() -> Mlp {
    Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, 7).expect("valid arch")
}

fn bench_forward(c: &mut Criterion) {
    let net = planner_net();
    let input = [0.1, -0.5, 0.6, 0.3, 0.5];
    c.bench_function("nn/predict_single", |b| {
        b.iter(|| net.predict(black_box(&input)).expect("arity ok"))
    });

    let batch = Matrix::from_fn(128, 5, |r, c| ((r * 5 + c) as f64).sin());
    c.bench_function("nn/forward_batch128", |b| {
        b.iter(|| net.forward(black_box(&batch)).expect("arity ok"))
    });
}

fn bench_training(c: &mut Criterion) {
    let x = Matrix::from_fn(256, 5, |r, c| ((r * 5 + c) as f64).sin());
    let y = Matrix::from_fn(256, 1, |r, _| ((r as f64) * 0.1).cos());
    let trainer = Trainer::new(
        Optimizer::adam(1e-3),
        TrainConfig {
            epochs: 1,
            batch_size: 64,
            ..TrainConfig::default()
        },
    );
    c.bench_function("nn/train_epoch_256x5", |b| {
        b.iter_batched(
            planner_net,
            |mut net| trainer.fit(&mut net, &x, &y).expect("training ok"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_serialization(c: &mut Criterion) {
    let net = planner_net();
    let text = net.to_text();
    c.bench_function("nn/to_text", |b| b.iter(|| black_box(&net).to_text()));
    c.bench_function("nn/from_text", |b| {
        b.iter(|| Mlp::from_text(black_box(&text)).expect("roundtrip"))
    });
}

criterion_group!(benches, bench_forward, bench_training, bench_serialization);
criterion_main!(benches);
