//! Per-control-step planning cost: the paper argues the framework "does not
//! require extra resources for safety verification during runtime" — these
//! benches quantify the (small) overhead of the monitor + compound planner
//! over the bare NN planner.

use bench::timing::Criterion;
use bench::{criterion_group, criterion_main};
use cv_dynamics::VehicleState;
use cv_estimation::VehicleEstimate;
use cv_planner::TeacherPolicy;
use cv_sim::training::{train_planner, Personality, TrainSetup};
use left_turn::LeftTurnScenario;
use safe_shield::{
    AggressiveConfig, CompoundPlanner, Observation, Planner, RuntimeMonitor, Scenario,
};
use std::hint::black_box;

fn fixtures() -> (LeftTurnScenario, VehicleState, VehicleEstimate) {
    let scenario = LeftTurnScenario::paper_default(52.0).expect("valid scenario");
    let ego = VehicleState::new(-18.0, 8.0, 0.0);
    let est = VehicleEstimate::exact(2.0, VehicleState::new(17.0, 10.0, 0.3));
    (scenario, ego, est)
}

fn bench_pure_nn_step(c: &mut Criterion) {
    let (scenario, ego, est) = fixtures();
    let mut nn =
        train_planner(&TrainSetup::smoke(), Personality::Conservative).expect("training ok");
    let window = scenario.conservative_window(2.0, &est);
    let obs = Observation::new(2.0, ego, window);
    c.bench_function("planner/pure_nn_step", |b| {
        b.iter(|| nn.plan(black_box(&obs)))
    });
}

fn bench_teacher_step(c: &mut Criterion) {
    let (scenario, ego, est) = fixtures();
    let mut teacher = TeacherPolicy::conservative(&scenario);
    let obs = Observation::new(2.0, ego, scenario.conservative_window(2.0, &est));
    c.bench_function("planner/teacher_step", |b| {
        b.iter(|| teacher.plan(black_box(&obs)))
    });
}

fn bench_monitor_check(c: &mut Criterion) {
    let (scenario, ego, est) = fixtures();
    let monitor = RuntimeMonitor::new();
    c.bench_function("planner/monitor_check", |b| {
        b.iter(|| monitor.check(&scenario, black_box(2.0), &ego, &est))
    });
}

fn bench_compound_step(c: &mut Criterion) {
    let (scenario, ego, est) = fixtures();
    let nn = train_planner(&TrainSetup::smoke(), Personality::Conservative).expect("training ok");
    let mut compound = CompoundPlanner::ultimate(scenario, nn, AggressiveConfig::default());
    c.bench_function("planner/compound_ultimate_step", |b| {
        b.iter(|| compound.plan(black_box(2.0), &ego, &est))
    });
}

fn bench_window_estimation(c: &mut Criterion) {
    let (scenario, _, est) = fixtures();
    let cfg = AggressiveConfig::default();
    c.bench_function("planner/conservative_window", |b| {
        b.iter(|| scenario.conservative_window(black_box(2.0), &est))
    });
    c.bench_function("planner/aggressive_window", |b| {
        b.iter(|| scenario.aggressive_window(black_box(2.0), &est, &cfg))
    });
}

criterion_group!(
    benches,
    bench_pure_nn_step,
    bench_teacher_step,
    bench_monitor_check,
    bench_compound_step,
    bench_window_estimation
);
criterion_main!(benches);
