use crate::{Channel, DelayDropChannel, LostChannel, Message, PerfectChannel};

/// The three communication settings evaluated in paper Section V.
///
/// Use [`CommSetting::channel`] to instantiate the corresponding channel with
/// a reproducible seed.
///
/// # Example
///
/// ```
/// use cv_comm::{Channel, CommSetting, Message};
///
/// let mut ch = CommSetting::Lost.channel(0);
/// ch.send(Message::new(1, 0.0, 0.0, 0.0, 0.0), 0.0);
/// assert!(ch.receive(10.0).is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommSetting {
    /// Messages always arrive instantly.
    NoDisturbance,
    /// Messages arrive `delay` seconds late and are dropped with probability
    /// `drop_prob` (paper: `Δt_d = 0.25 s`, `p_d ∈ {0, 0.05, …, 0.95}`).
    Delayed {
        /// Fixed delivery delay `Δt_d`, in seconds.
        delay: f64,
        /// Per-message drop probability `p_d`.
        drop_prob: f64,
    },
    /// All messages are lost; only sensor information is available.
    Lost,
}

impl CommSetting {
    /// The paper's default "messages delayed" configuration
    /// (`Δt_d = 0.25 s`) with the given drop probability.
    pub fn delayed_with_drop(drop_prob: f64) -> Self {
        CommSetting::Delayed {
            delay: 0.25,
            drop_prob,
        }
    }

    /// Builds a boxed channel implementing this setting.
    ///
    /// The `seed` drives the drop decisions of [`CommSetting::Delayed`]; it is
    /// ignored by the deterministic settings.
    pub fn channel(&self, seed: u64) -> Box<dyn Channel + Send> {
        match *self {
            CommSetting::NoDisturbance => Box::new(PerfectChannel::new()),
            CommSetting::Delayed { delay, drop_prob } => {
                Box::new(DelayDropChannel::new(delay, drop_prob, seed))
            }
            CommSetting::Lost => Box::new(LostChannel::new()),
        }
    }

    /// Returns `true` if any message can ever be delivered.
    pub fn is_connected(&self) -> bool {
        !matches!(self, CommSetting::Lost)
    }
}

impl std::fmt::Display for CommSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommSetting::NoDisturbance => write!(f, "no disturbance"),
            CommSetting::Delayed { delay, drop_prob } => {
                write!(f, "messages delayed (Δt_d={delay}s, p_d={drop_prob})")
            }
            CommSetting::Lost => write!(f, "messages lost"),
        }
    }
}

// The blanket impl lets `Box<dyn Channel + Send>` be used directly where a
// `Channel` is expected.
impl Channel for Box<dyn Channel + Send> {
    fn send(&mut self, msg: Message, now: f64) {
        (**self).send(msg, now);
    }

    fn receive_into(&mut self, now: f64, out: &mut Vec<Message>) {
        (**self).receive_into(now, out);
    }

    fn receive(&mut self, now: f64) -> Vec<Message> {
        (**self).receive(now)
    }

    fn reset(&mut self, seed: u64) {
        (**self).reset(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_produce_expected_channels() {
        let mut perfect = CommSetting::NoDisturbance.channel(0);
        perfect.send(Message::new(1, 0.0, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(perfect.receive(0.0).len(), 1);

        let mut delayed = CommSetting::delayed_with_drop(0.0).channel(0);
        delayed.send(Message::new(1, 0.0, 0.0, 0.0, 0.0), 0.0);
        assert!(delayed.receive(0.1).is_empty());
        assert_eq!(delayed.receive(0.25).len(), 1);

        let mut lost = CommSetting::Lost.channel(0);
        lost.send(Message::new(1, 0.0, 0.0, 0.0, 0.0), 0.0);
        assert!(lost.receive(100.0).is_empty());
    }

    #[test]
    fn connectivity_flag() {
        assert!(CommSetting::NoDisturbance.is_connected());
        assert!(CommSetting::delayed_with_drop(0.9).is_connected());
        assert!(!CommSetting::Lost.is_connected());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CommSetting::NoDisturbance.to_string(), "no disturbance");
        assert!(CommSetting::Lost.to_string().contains("lost"));
        assert!(CommSetting::delayed_with_drop(0.25)
            .to_string()
            .contains("delayed"));
    }
}
