use cv_rng::{Rng, SplitMix64};

use crate::Message;

/// What a channel resolved a scheduled send to ([`Channel::send_scheduled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// The message will arrive at exactly this absolute time.
    Delivered(f64),
    /// The channel dropped the message; it never arrives.
    Dropped,
    /// The channel delivers nothing, ever ([`LostChannel`]).
    Never,
    /// The channel cannot resolve delivery at send time; the message was
    /// enqueued internally (via [`Channel::send`]) and the caller must keep
    /// polling [`Channel::receive_into`].
    Unknown,
}

/// A one-way message channel from other vehicles to the ego vehicle.
///
/// Implementations decide when (and whether) a sent message is delivered.
/// [`Channel::receive`] returns every message whose delivery time has come,
/// ordered by sample stamp, each at most once.
pub trait Channel {
    /// Submits `msg` for transmission at time `now`.
    fn send(&mut self, msg: Message, now: f64);

    /// Resolves the fate of `msg` at send time instead of enqueuing it:
    /// event-driven callers schedule [`Arrival::Delivered`] times on their
    /// own wheel and never poll the channel. Implementations that know
    /// their delivery schedule MUST NOT also enqueue the message — and must
    /// consume exactly the same randomness as [`Channel::send`] would, so a
    /// channel driven through either entry point replays the identical
    /// drop-decision stream. The default falls back to [`Channel::send`]
    /// and reports [`Arrival::Unknown`], telling the caller to poll
    /// [`Channel::receive_into`] for this channel.
    fn send_scheduled(&mut self, msg: Message, now: f64) -> Arrival {
        self.send(msg, now);
        Arrival::Unknown
    }

    /// Appends all messages deliverable at or before `now` to `out`, in
    /// stamp order. The allocation-free form of [`Channel::receive`] for
    /// hot loops: callers keep one scratch buffer alive across steps.
    fn receive_into(&mut self, now: f64, out: &mut Vec<Message>);

    /// Drains all messages deliverable at or before `now`, in stamp order.
    fn receive(&mut self, now: f64) -> Vec<Message> {
        let mut due = Vec::new();
        self.receive_into(now, &mut due);
        due
    }

    /// Restores the channel to its freshly-constructed state with a new
    /// drop-decision seed: in-flight messages are discarded and any RNG is
    /// reseeded, so a reused channel is bit-identical to a new one.
    fn reset(&mut self, seed: u64);
}

/// In-flight message with its scheduled delivery time.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    deliver_at: f64,
    msg: Message,
}

fn drain_due_into(queue: &mut Vec<InFlight>, now: f64, due: &mut Vec<Message>) {
    let start = due.len();
    queue.retain(|entry| {
        if entry.deliver_at <= now + 1e-12 {
            due.push(entry.msg);
            false
        } else {
            true
        }
    });
    due[start..].sort_by(|a, b| a.stamp.partial_cmp(&b.stamp).expect("non-NaN stamps"));
}

/// Ideal channel: every message arrives instantly ("no disturbance").
///
/// # Example
///
/// ```
/// use cv_comm::{Channel, Message, PerfectChannel};
///
/// let mut ch = PerfectChannel::new();
/// ch.send(Message::new(1, 0.0, 0.0, 1.0, 0.0), 0.0);
/// assert_eq!(ch.receive(0.0).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfectChannel {
    queue: Vec<InFlight>,
}

impl PerfectChannel {
    /// Creates an empty perfect channel.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Channel for PerfectChannel {
    fn send(&mut self, msg: Message, now: f64) {
        self.queue.push(InFlight {
            deliver_at: now,
            msg,
        });
    }

    fn send_scheduled(&mut self, _msg: Message, now: f64) -> Arrival {
        Arrival::Delivered(now)
    }

    fn receive_into(&mut self, now: f64, out: &mut Vec<Message>) {
        drain_due_into(&mut self.queue, now, out);
    }

    fn reset(&mut self, _seed: u64) {
        self.queue.clear();
    }
}

/// Channel with fixed delivery delay `Δt_d` and i.i.d. drop probability `p_d`
/// ("messages delayed" setting of paper Section V).
///
/// Dropped messages vanish; surviving ones arrive exactly `delay` seconds
/// after they were sent. The drop decisions come from a seeded [`SplitMix64`] so
/// paired experiments can reproduce identical channel realisations.
///
/// # Example
///
/// ```
/// use cv_comm::{Channel, DelayDropChannel, Message};
///
/// let mut ch = DelayDropChannel::new(0.25, 0.0, 7);
/// ch.send(Message::new(1, 1.0, 0.0, 5.0, 0.0), 1.0);
/// assert!(ch.receive(1.2).is_empty());
/// assert_eq!(ch.receive(1.25).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DelayDropChannel {
    delay: f64,
    drop_prob: f64,
    rng: SplitMix64,
    queue: Vec<InFlight>,
}

impl DelayDropChannel {
    /// Creates a channel with delivery delay `delay` (s) and drop probability
    /// `drop_prob ∈ [0, 1]`, seeded for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `delay < 0` or `drop_prob ∉ [0, 1]`.
    pub fn new(delay: f64, drop_prob: f64, seed: u64) -> Self {
        assert!(delay >= 0.0, "delay must be nonnegative, got {delay}");
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "drop probability must be in [0, 1], got {drop_prob}"
        );
        Self {
            delay,
            drop_prob,
            rng: SplitMix64::seed_from_u64(seed),
            queue: Vec::new(),
        }
    }

    /// The fixed delivery delay `Δt_d` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// The drop probability `p_d`.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }
}

impl Channel for DelayDropChannel {
    fn send(&mut self, msg: Message, now: f64) {
        // Draw the drop decision even for p_d = 0 so that sweeping p_d keeps
        // the same per-message random stream alignment.
        let dropped = self.rng.random_f64() < self.drop_prob;
        if !dropped {
            self.queue.push(InFlight {
                deliver_at: now + self.delay,
                msg,
            });
        }
    }

    fn send_scheduled(&mut self, _msg: Message, now: f64) -> Arrival {
        // Same draw (and draw-even-at-p_d-0 rule) as `send`, so scheduled and
        // polled operation consume an identical drop-decision stream.
        let dropped = self.rng.random_f64() < self.drop_prob;
        if dropped {
            Arrival::Dropped
        } else {
            Arrival::Delivered(now + self.delay)
        }
    }

    fn receive_into(&mut self, now: f64, out: &mut Vec<Message>) {
        drain_due_into(&mut self.queue, now, out);
    }

    fn reset(&mut self, seed: u64) {
        self.queue.clear();
        self.rng = SplitMix64::seed_from_u64(seed);
    }
}

/// Channel that drops everything ("messages lost" setting: `Δt_d → ∞`).
///
/// With this channel the ego vehicle must rely purely on its onboard sensors,
/// which also models non-connected traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct LostChannel;

impl LostChannel {
    /// Creates the always-dropping channel.
    pub fn new() -> Self {
        Self
    }
}

impl Channel for LostChannel {
    fn send(&mut self, _msg: Message, _now: f64) {}

    fn send_scheduled(&mut self, _msg: Message, _now: f64) -> Arrival {
        Arrival::Never
    }

    fn receive_into(&mut self, _now: f64, _out: &mut Vec<Message>) {}

    fn reset(&mut self, _seed: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(stamp: f64) -> Message {
        Message::new(1, stamp, stamp * 10.0, 5.0, 0.0)
    }

    #[test]
    fn perfect_channel_delivers_immediately_in_stamp_order() {
        let mut ch = PerfectChannel::new();
        ch.send(msg(0.2), 0.2);
        ch.send(msg(0.1), 0.2);
        let out = ch.receive(0.2);
        assert_eq!(out.len(), 2);
        assert!(out[0].stamp < out[1].stamp);
        assert!(ch.receive(0.2).is_empty(), "messages delivered once");
    }

    #[test]
    fn delay_channel_holds_messages_until_due() {
        let mut ch = DelayDropChannel::new(0.25, 0.0, 1);
        ch.send(msg(0.0), 0.0);
        ch.send(msg(0.1), 0.1);
        assert!(ch.receive(0.24).is_empty());
        assert_eq!(ch.receive(0.25).len(), 1);
        assert_eq!(ch.receive(0.35).len(), 1);
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let mut ch = DelayDropChannel::new(0.0, 1.0, 1);
        for i in 0..100 {
            ch.send(msg(i as f64 * 0.1), i as f64 * 0.1);
        }
        assert!(ch.receive(1e9).is_empty());
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let mut ch = DelayDropChannel::new(0.0, 0.3, 12345);
        let n = 10_000;
        for i in 0..n {
            ch.send(msg(i as f64), i as f64);
        }
        let delivered = ch.receive(f64::MAX).len();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn same_seed_gives_same_drops() {
        let run = |seed: u64| {
            let mut ch = DelayDropChannel::new(0.0, 0.5, seed);
            (0..50).for_each(|i| ch.send(msg(i as f64), i as f64));
            ch.receive(f64::MAX)
                .iter()
                .map(|m| m.stamp as u64)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn reset_is_bit_identical_to_a_fresh_channel() {
        let deliveries = |ch: &mut DelayDropChannel| {
            (0..50).for_each(|i| ch.send(msg(i as f64), i as f64));
            ch.receive(f64::MAX)
                .iter()
                .map(|m| m.stamp.to_bits())
                .collect::<Vec<_>>()
        };
        let mut fresh = DelayDropChannel::new(0.25, 0.5, 42);
        let expected = deliveries(&mut fresh);
        // A dirty channel (different seed, message still in flight) reset to
        // seed 42 must replay the exact same drop decisions.
        let mut reused = DelayDropChannel::new(0.25, 0.5, 7);
        reused.send(msg(0.0), 0.0);
        reused.reset(42);
        assert!(reused.receive(f64::MAX).is_empty(), "in-flight not cleared");
        assert_eq!(deliveries(&mut reused), expected);
    }

    #[test]
    fn receive_into_appends_in_stamp_order() {
        let mut ch = PerfectChannel::new();
        ch.send(msg(0.2), 0.2);
        ch.send(msg(0.1), 0.2);
        let mut out = vec![msg(0.0)];
        ch.receive_into(0.2, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out[1].stamp < out[2].stamp);
        assert_eq!(out[0].stamp, 0.0, "existing entries untouched");
    }

    #[test]
    fn lost_channel_never_delivers() {
        let mut ch = LostChannel::new();
        ch.send(msg(0.0), 0.0);
        assert!(ch.receive(f64::MAX).is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_drop_prob_panics() {
        let _ = DelayDropChannel::new(0.0, 1.5, 0);
    }

    #[test]
    fn scheduled_send_resolves_without_enqueuing() {
        let mut perfect = PerfectChannel::new();
        assert_eq!(
            perfect.send_scheduled(msg(0.3), 0.3),
            Arrival::Delivered(0.3)
        );
        assert!(
            perfect.receive(f64::MAX).is_empty(),
            "must not also enqueue"
        );

        let mut delay = DelayDropChannel::new(0.25, 0.0, 1);
        assert_eq!(
            delay.send_scheduled(msg(0.1), 0.1),
            Arrival::Delivered(0.35)
        );
        assert!(delay.receive(f64::MAX).is_empty(), "must not also enqueue");

        let mut lost = LostChannel::new();
        assert_eq!(lost.send_scheduled(msg(0.0), 0.0), Arrival::Never);
    }

    #[test]
    fn scheduled_send_replays_the_polled_drop_stream() {
        // Decisions from repeated send_scheduled calls must equal the set of
        // survivors a polled channel with the same seed would deliver.
        let mut polled = DelayDropChannel::new(0.0, 0.5, 42);
        (0..50).for_each(|i| polled.send(msg(i as f64), i as f64));
        let survivors: Vec<u64> = polled
            .receive(f64::MAX)
            .iter()
            .map(|m| m.stamp as u64)
            .collect();

        let mut scheduled = DelayDropChannel::new(0.0, 0.5, 42);
        let resolved: Vec<u64> = (0..50)
            .filter(|&i| {
                matches!(
                    scheduled.send_scheduled(msg(i as f64), i as f64),
                    Arrival::Delivered(_)
                )
            })
            .collect();
        assert_eq!(resolved, survivors);
    }

    #[test]
    fn default_send_scheduled_enqueues_and_reports_unknown() {
        // A channel without its own schedule falls back to polling semantics.
        struct Opaque(PerfectChannel);
        impl Channel for Opaque {
            fn send(&mut self, msg: Message, now: f64) {
                self.0.send(msg, now);
            }
            fn receive_into(&mut self, now: f64, out: &mut Vec<Message>) {
                self.0.receive_into(now, out);
            }
            fn reset(&mut self, seed: u64) {
                self.0.reset(seed);
            }
        }
        let mut ch = Opaque(PerfectChannel::new());
        assert_eq!(ch.send_scheduled(msg(0.0), 0.0), Arrival::Unknown);
        assert_eq!(ch.receive(0.0).len(), 1, "fallback must enqueue");
    }
}
