use cv_dynamics::VehicleState;

/// A V2V beacon message.
///
/// Per paper Section II-A the message *content* is exact: it records the true
/// `(p, v, a)` of the sender at the stamped time. Disturbance happens in the
/// channel (delay or drop), never by corrupting the payload.
///
/// # Example
///
/// ```
/// use cv_comm::Message;
///
/// let m = Message::new(1, 0.5, 48.0, 10.0, -1.0);
/// assert_eq!(m.sender, 1);
/// assert_eq!(m.state().velocity, 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Index of the sending vehicle (`C_i`).
    pub sender: usize,
    /// Time at which the state was sampled by the sender, in seconds.
    pub stamp: f64,
    /// Sender's position at `stamp` (its own forward frame), in metres.
    pub position: f64,
    /// Sender's velocity at `stamp`, in m/s.
    pub velocity: f64,
    /// Sender's applied acceleration at `stamp`, in m/s².
    pub acceleration: f64,
}

impl Message {
    /// Creates a new message.
    pub fn new(sender: usize, stamp: f64, position: f64, velocity: f64, acceleration: f64) -> Self {
        Self {
            sender,
            stamp,
            position,
            velocity,
            acceleration,
        }
    }

    /// Builds a message from a vehicle state sampled at `stamp`.
    pub fn from_state(sender: usize, stamp: f64, state: &VehicleState) -> Self {
        Self::new(
            sender,
            stamp,
            state.position,
            state.velocity,
            state.acceleration,
        )
    }

    /// The payload as a [`VehicleState`].
    pub fn state(&self) -> VehicleState {
        VehicleState::new(self.position, self.velocity, self.acceleration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_state_roundtrips() {
        let s = VehicleState::new(1.0, 2.0, 3.0);
        let m = Message::from_state(7, 0.25, &s);
        assert_eq!(m.sender, 7);
        assert_eq!(m.stamp, 0.25);
        assert_eq!(m.state(), s);
    }
}
