//! V2V communication substrate.
//!
//! Models the message channel of paper Section II-A: every `Δt_m` seconds a
//! vehicle broadcasts its exact state `(p, v, a)`. The channel may deliver the
//! message immediately ([`PerfectChannel`]), delay it by `Δt_d` and/or drop it
//! with probability `p_d` ([`DelayDropChannel`]), or drop everything
//! ([`LostChannel`], the "messages lost" setting where only sensors remain).
//!
//! The three experimental settings of Section V map onto [`CommSetting`]:
//!
//! | Paper setting        | `CommSetting`                            |
//! |----------------------|------------------------------------------|
//! | "no disturbance"     | [`CommSetting::NoDisturbance`]           |
//! | "messages delayed"   | [`CommSetting::Delayed`] (`Δt_d`, `p_d`) |
//! | "messages lost"      | [`CommSetting::Lost`]                    |
//!
//! # Example
//!
//! ```
//! use cv_comm::{Channel, CommSetting, Message};
//!
//! let mut ch = CommSetting::Delayed { delay: 0.25, drop_prob: 0.0 }.channel(42);
//! ch.send(Message::new(1, 0.0, 50.0, 10.0, 0.0), 0.0);
//! assert!(ch.receive(0.1).is_empty());          // still in flight
//! let delivered = ch.receive(0.25);             // arrives Δt_d later
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].stamp, 0.0);
//! ```

mod channel;
mod message;
mod setting;

pub use channel::{Arrival, Channel, DelayDropChannel, LostChannel, PerfectChannel};
pub use message::Message;
pub use setting::CommSetting;
