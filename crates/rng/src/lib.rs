//! Std-only deterministic random-number substrate.
//!
//! Every stochastic component of the workspace (the `C_1` driver, the
//! delay/drop channel, the noisy sensor, NN weight initialisation, batch
//! shuffling) draws from the generators in this crate, so the whole
//! reproduction builds offline with zero external dependencies while keeping
//! the property the paper's paired Monte-Carlo comparisons rely on: *the same
//! seed always replays the same episode*.
//!
//! * [`SplitMix64`] — the workspace default: a 64-bit state, splittable,
//!   statistically solid generator (Steele et al., OOPSLA 2014). Seeding is
//!   trivially robust (any `u64`, including 0).
//! * [`Xorshift64Star`] — Marsaglia xorshift with a finalising multiply;
//!   kept as an independent second opinion for sanity-checking statistics.
//! * [`split_stream`] — derives decorrelated per-purpose sub-seeds from a
//!   master seed (used by `cv-sim` to give driving / channel / sensor their
//!   own streams).
//! * [`props!`] — a tiny property-test harness replacing `proptest` for the
//!   offline build: deterministic per-test seeds, uniform sampling over
//!   ranges, fixed case count.
//!
//! # Example
//!
//! ```
//! use cv_rng::{Rng, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let a = rng.random_range(-3.0..=3.0);
//! assert!((-3.0..=3.0).contains(&a));
//! let mut again = SplitMix64::seed_from_u64(42);
//! assert_eq!(a, again.random_range(-3.0..=3.0));
//! ```

use std::ops::{Range, RangeInclusive};

/// Number of cases each [`props!`] property test runs.
pub const PROP_CASES: usize = 256;

/// A deterministic, seedable pseudo-random generator.
///
/// Only [`Rng::next_u64`] is required; the sampling helpers are derived.
/// All helpers consume exactly one `next_u64` draw per scalar sample, so
/// streams stay aligned when sweeping parameters (e.g. a drop probability
/// of 0 still draws the per-message decision).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        // 53 high-quality bits -> the standard [0,1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (see [`SampleRange`] for supported types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`. Always consumes one draw.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random_f64() < p
    }

    /// Uniform index in `[0, n)` using an unbiased widening multiply.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn random_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// The workspace's default generator (Steele et al., "Fast Splittable
/// Pseudorandom Number Generators", OOPSLA 2014).
///
/// Period 2⁶⁴, one add + three xor-shift-multiplies per output, any seed is
/// a good seed. This is also the generator behind [`split_stream`], so
/// sub-seed derivation and sampling share one algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Seeds the generator. Every distinct seed yields an uncorrelated
    /// stream; 0 is a valid seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Forks an independent child generator, advancing this one by one draw.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

/// Marsaglia `xorshift64*`: three shifts and a finalising multiply.
///
/// Kept as an algorithmically independent generator so statistical tests can
/// cross-check [`SplitMix64`]. Note the all-zero state is degenerate, so
/// seeding remaps 0 internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Seeds the generator (seed 0 is remapped to a fixed nonzero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let state = if seed == 0 { GOLDEN_GAMMA } else { seed };
        Self { state }
    }
}

impl Rng for Xorshift64Star {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Derives the `stream`-th decorrelated sub-seed of `seed`.
///
/// This is one SplitMix64 output at gamma-scaled offset `stream`, so
/// sub-streams inherit the generator's equidistribution. `cv-sim` uses it to
/// give driving, channel and sensor noise independent streams from one
/// master episode seed.
pub fn split_stream(seed: u64, stream: u64) -> u64 {
    mix64(
        seed.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA))
            .wrapping_add(GOLDEN_GAMMA),
    )
}

/// Derives a decorrelated sub-seed from a master seed and a string label.
///
/// Equivalent to [`split_stream`] with the label hashed to a stream index,
/// so differently-labelled consumers of one master seed (e.g. the chaos
/// proxy's per-connection fault plans vs. a client's retry jitter) get
/// independent streams that are still fully reproducible from the master.
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    split_stream(seed, fnv1a(label.as_bytes()))
}

/// FNV-1a hash of a byte string; used by [`props!`] to derive a stable
/// per-test seed from the test's name.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    hash
}

/// The 64-bit FNV-1a offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// The 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental 64-bit FNV-1a hasher: the streaming form of [`fnv1a`].
///
/// Feeding a byte string in any number of chunks produces exactly the
/// one-shot [`fnv1a`] value, and the function is pure arithmetic over the
/// input bytes — no per-process randomisation, no platform dependence — so
/// hashes are stable across runs, machines, and compiler versions. That
/// stability is what content-addressed keys (`cv-cache`) build on.
///
/// Multi-byte integers are folded in little-endian order via
/// [`Fnv1a::write_u64`], which keeps the byte stream unambiguous as long as
/// callers fix the field order (length-prefix any variable-length data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher starting from the standard FNV-1a offset basis.
    pub const fn new() -> Self {
        Fnv1a {
            state: FNV_OFFSET_BASIS,
        }
    }

    /// A hasher starting from a custom basis — two streams over the same
    /// bytes with different bases stay decorrelated, which is how wider
    /// (128-bit) content keys are assembled from this 64-bit core.
    pub const fn with_basis(basis: u64) -> Self {
        Fnv1a { state: basis }
    }

    /// Folds a byte slice into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, byte: u8) {
        self.state ^= byte as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a `u64` into the state as eight little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

/// A range that [`Rng::random_range`] can sample uniformly.
pub trait SampleRange {
    /// The sampled scalar type.
    type Output;
    /// Draws one uniform sample (exactly one `next_u64` consumed).
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let x = self.start + rng.random_f64() * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        // random_f64() is [0,1); scale by the next representable multiplier
        // so hi is attainable.
        let x = lo + rng.random_f64() * (hi - lo) * (1.0 + f64::EPSILON);
        x.clamp(lo, hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {self:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// Declarative deterministic property tests — the offline stand-in for
/// `proptest!`.
///
/// Each test draws its variables uniformly from the given ranges for
/// [`PROP_CASES`] cases (override with a leading `cases = N,`), using a seed
/// derived from the test's name (stable across runs and platforms). Use
/// plain `assert!` in the body.
///
/// ```
/// cv_rng::props! {
///     fn addition_commutes(a in -100.0..100.0, b in -100.0..100.0) {
///         assert_eq!(a + b, b + a);
///     }
///     fn expensive_property(cases = 8, n in 1..100usize) {
///         assert!((1..=n).sum::<usize>() == n * (n + 1) / 2);
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    ($(#[$attr:meta])* fn $name:ident(cases = $cases:expr, $($var:ident in $range:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$attr])*
        fn $name() {
            let mut __rng =
                $crate::SplitMix64::seed_from_u64($crate::fnv1a(stringify!($name).as_bytes()));
            for __case in 0..$cases {
                $(let $var = $crate::Rng::random_range(&mut __rng, $range);)+
                $body
            }
        }
        $crate::props! { $($rest)* }
    };
    ($(#[$attr:meta])* fn $name:ident($($var:ident in $range:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $crate::props! {
            $(#[$attr])*
            fn $name(cases = $crate::PROP_CASES, $($var in $range),+) $body
            $($rest)*
        }
    };
    () => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 0x9E3779B97F4A7C15 from the public
        // SplitMix64 test vectors (Vigna's splitmix64.c).
        let mut rng = SplitMix64::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(first[1], 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(first[2], 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::seed_from_u64(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_samples_are_in_unit_interval_with_good_mean() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.0..=3.0);
            assert!((-3.0..=3.0).contains(&x));
            let y = rng.random_range(5.0..6.0);
            assert!((5.0..6.0).contains(&y));
            let i = rng.random_range(0..10usize);
            assert!(i < 10);
            let j = rng.random_range(0..=4u64);
            assert!(j <= 4);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage {seen:?}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = SplitMix64::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let mut rng = SplitMix64::seed_from_u64(6);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        SplitMix64::seed_from_u64(9).shuffle(&mut a);
        SplitMix64::seed_from_u64(9).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..100).collect();
        SplitMix64::seed_from_u64(10).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn split_produces_decorrelated_children() {
        let mut parent = SplitMix64::seed_from_u64(0);
        let mut kid_a = parent.split();
        let mut kid_b = parent.split();
        let a: Vec<u64> = (0..16).map(|_| kid_a.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| kid_b.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn split_stream_is_deterministic_and_distinct() {
        assert_eq!(split_stream(7, 1), split_stream(7, 1));
        assert_ne!(split_stream(7, 1), split_stream(7, 2));
        assert_ne!(split_stream(7, 1), split_stream(8, 1));
    }

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(7, "chaos"), derive_seed(7, "chaos"));
        assert_ne!(derive_seed(7, "chaos"), derive_seed(7, "jitter"));
        assert_ne!(derive_seed(7, "chaos"), derive_seed(8, "chaos"));
        // Matches the underlying split_stream algebra.
        assert_eq!(derive_seed(7, "chaos"), split_stream(7, fnv1a(b"chaos")));
    }

    #[test]
    fn xorshift_disagrees_with_splitmix() {
        let mut a = SplitMix64::seed_from_u64(12);
        let mut b = Xorshift64Star::seed_from_u64(12);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        let mean: f64 = {
            let mut r = Xorshift64Star::seed_from_u64(0);
            (0..50_000).map(|_| r.random_f64()).sum::<f64>() / 50_000.0
        };
        assert!((mean - 0.5).abs() < 0.01, "xorshift mean {mean}");
    }

    #[test]
    fn streaming_fnv1a_matches_one_shot() {
        let bytes = b"content-addressed episode key";
        let mut h = Fnv1a::new();
        h.write(bytes);
        assert_eq!(h.finish(), fnv1a(bytes));
        // Chunking must not change the hash.
        let mut split = Fnv1a::new();
        split.write(&bytes[..7]);
        split.write(&bytes[7..]);
        assert_eq!(split.finish(), fnv1a(bytes));
        // Byte-at-a-time too.
        let mut single = Fnv1a::new();
        for &b in bytes.iter() {
            single.write_u8(b);
        }
        assert_eq!(single.finish(), fnv1a(bytes));
    }

    #[test]
    fn fnv1a_matches_published_test_vectors() {
        // Reference values of the 64-bit FNV-1a function — a cross-process,
        // cross-platform stability anchor for the cache key derivation.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn custom_basis_decorrelates_streams() {
        let bytes = b"same input";
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::with_basis(FNV_OFFSET_BASIS ^ 0x9E37_79B9_7F4A_7C15);
        a.write(bytes);
        b.write(bytes);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }

    props! {
        fn props_macro_draws_within_ranges(x in -2.0..2.0, n in 1..10usize) {
            assert!((-2.0..2.0).contains(&x));
            assert!((1..10).contains(&n));
        }
    }
}
