use cv_dynamics::VehicleLimits;
use cv_estimation::Interval;
use left_turn::{time_to_cover, LeftTurnScenario};
use safe_shield::{Observation, Planner};

/// An analytic *pacing* policy for the unprotected left turn, used as the
/// behaviour-cloning teacher for the NN planners (and as an interpretable
/// baseline in its own right).
///
/// Decision rule at each step, given the ego state and the estimated
/// oncoming window `[τ_1,min, τ_1,max]`:
///
/// 1. If there is no window (the oncoming vehicle has cleared), **go**.
/// 2. Discount the early edge by `lead` (an *optimistic* policy bets the
///    oncoming car will not arrive at its earliest possible time — this
///    unsound optimism is what makes the aggressive preset unsafe).
/// 3. If the ego's projected occupancy of the zone (at `a_go`) ends at
///    least `margin_before` before the believed window opens, **go** —
///    the pass-before manoeuvre.
/// 4. If stopping before the zone is no longer possible, **commit**: full
///    throttle to minimise exposure.
/// 5. Otherwise **pace**: regulate speed so as to arrive at the front line
///    `margin_after` seconds after the believed window closes. The
///    conservative preset additionally caps its speed so that stopping
///    before the line stays feasible (`speed_cap_factor`), which is what
///    keeps it safe — and slow.
///
/// Because the paced arrival time tracks the window's late edge
/// *continuously*, a cloned network inherits the dependence — and planning
/// against the compact aggressive window (paper Eq. 8) automatically yields
/// earlier arrivals. This is the mechanism behind the ultimate compound
/// planner's efficiency gain in Tables I/II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeacherPolicy {
    p_f: f64,
    p_b: f64,
    limits: VehicleLimits,
    /// Required clearance (s) when passing *before* the window.
    margin_before: f64,
    /// Arrival buffer (s) after the believed window closes.
    margin_after: f64,
    /// Assumed lateness (s) of the oncoming vehicle's earliest arrival.
    lead: f64,
    /// Acceleration used when going (m/s²).
    a_go: f64,
    /// If set, cap the paced speed at
    /// `√(2·|a_min|·gap·factor)` so stopping before the line stays
    /// feasible. `None` disables the cap (reckless).
    speed_cap_factor: Option<f64>,
    /// First-order speed-tracking time constant (s).
    tau_smooth: f64,
    name: &'static str,
}

impl TeacherPolicy {
    /// Creates a policy with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the margins/lead are negative, `a_go` is outside the ego
    /// limits, or `tau_smooth` is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        scenario: &LeftTurnScenario,
        margin_before: f64,
        margin_after: f64,
        lead: f64,
        a_go: f64,
        speed_cap_factor: Option<f64>,
        name: &'static str,
    ) -> Self {
        let limits = scenario.ego_limits();
        assert!(margin_before >= 0.0, "margin_before must be nonnegative");
        assert!(margin_after >= 0.0, "margin_after must be nonnegative");
        assert!(lead >= 0.0, "lead must be nonnegative");
        assert!(
            (limits.a_min()..=limits.a_max()).contains(&a_go),
            "a_go {a_go} outside ego limits"
        );
        if let Some(f) = speed_cap_factor {
            assert!(f > 0.0, "speed cap factor must be positive");
        }
        Self {
            p_f: scenario.geometry().p_f,
            p_b: scenario.geometry().p_b,
            limits,
            margin_before,
            margin_after,
            lead,
            a_go,
            speed_cap_factor,
            tau_smooth: 0.5,
            name,
        }
    }

    /// The conservative preset: 1.5 s pass-before margin, 0.6 s arrival
    /// buffer, no optimism, half throttle, and a stopping-feasibility speed
    /// cap. Mirrors `κ_n,cons` — always safe, never fast.
    pub fn conservative(scenario: &LeftTurnScenario) -> Self {
        Self::new(
            scenario,
            1.5,
            0.6,
            0.0,
            0.5 * scenario.ego_limits().a_max(),
            Some(0.85),
            "teacher-cons",
        )
    }

    /// The aggressive preset: no margins, 0.4 s of unsound optimism, full
    /// throttle, and no stopping-feasibility cap. Mirrors `κ_n,aggr` —
    /// fast, and unsafe whenever the bet loses.
    pub fn aggressive(scenario: &LeftTurnScenario) -> Self {
        Self::new(
            scenario,
            0.0,
            0.1,
            0.4,
            scenario.ego_limits().a_max(),
            None,
            "teacher-aggr",
        )
    }

    /// Stable content-fingerprint material: every parameter that influences
    /// this policy's decisions, as IEEE-754 bit patterns in a fixed order,
    /// plus the policy name. An `Option` parameter contributes a presence
    /// tag followed by its bits (zero when absent). Two policies with equal
    /// material plan identically, which is what lets a result cache key
    /// teacher episodes by configuration instead of by identity.
    pub fn content_bits(&self) -> ([u64; 13], &'static str) {
        (
            [
                self.p_f.to_bits(),
                self.p_b.to_bits(),
                self.limits.v_min().to_bits(),
                self.limits.v_max().to_bits(),
                self.limits.a_min().to_bits(),
                self.limits.a_max().to_bits(),
                self.margin_before.to_bits(),
                self.margin_after.to_bits(),
                self.lead.to_bits(),
                self.a_go.to_bits(),
                u64::from(self.speed_cap_factor.is_some()),
                self.speed_cap_factor.map_or(0, f64::to_bits),
                self.tau_smooth.to_bits(),
            ],
            self.name,
        )
    }

    /// The ego's projected occupancy of the conflict zone if it cruises at
    /// `a_go` from the observed state, in absolute time.
    fn projected_occupancy(&self, obs: &Observation) -> Interval {
        let v = self.limits.clamp_velocity(obs.ego.velocity);
        let t_in = time_to_cover(
            self.p_f - obs.ego.position,
            v,
            self.a_go,
            self.limits.v_min(),
            self.limits.v_max(),
        );
        let t_out = time_to_cover(
            self.p_b - obs.ego.position,
            v,
            self.a_go,
            self.limits.v_min(),
            self.limits.v_max(),
        );
        Interval::new(obs.time + t_in.min(t_out), obs.time + t_out)
    }

    /// `true` if the ego can no longer stop before the front line.
    fn committed(&self, obs: &Observation) -> bool {
        if obs.ego.position > self.p_f {
            return true;
        }
        let v = self.limits.clamp_velocity(obs.ego.velocity);
        let d_b = cv_dynamics::braking_distance(v, self.limits.a_min());
        obs.ego.position + d_b > self.p_f
    }

    /// Speed regulation toward `v_tgt` with a first-order law.
    fn track_speed(&self, v: f64, v_tgt: f64) -> f64 {
        self.limits.clamp_accel((v_tgt - v) / self.tau_smooth)
    }
}

impl Planner for TeacherPolicy {
    fn plan(&mut self, obs: &Observation) -> f64 {
        let v = self.limits.clamp_velocity(obs.ego.velocity);
        // Past the zone: cruise on to the target.
        if obs.ego.position > self.p_b {
            return self.a_go;
        }
        let Some(window) = obs.window else {
            return self.a_go; // Oncoming traffic has cleared.
        };
        // Optimism: discount the earliest possible arrival.
        let believed = Interval::new((window.lo() + self.lead).min(window.hi()), window.hi());

        // Pass-before manoeuvre.
        let occupancy = self.projected_occupancy(obs);
        if occupancy.hi() + self.margin_before < believed.lo() {
            return self.a_go;
        }
        // Point of no return.
        if self.committed(obs) {
            return self.limits.a_max();
        }
        // Pace the arrival at the front line to just after the window.
        let t_arrive = believed.hi() + self.margin_after;
        let horizon = t_arrive - obs.time;
        let gap = self.p_f - obs.ego.position;
        if horizon <= 0.05 {
            return self.a_go; // Window (believed) is over by arrival.
        }
        let mut v_tgt = (gap / horizon).clamp(0.0, self.limits.v_max());
        if let Some(factor) = self.speed_cap_factor {
            let v_safe = (2.0 * -self.limits.a_min() * gap.max(0.0) * factor).sqrt();
            v_tgt = v_tgt.min(v_safe);
        }
        self.track_speed(v, v_tgt)
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;

    fn scenario() -> LeftTurnScenario {
        LeftTurnScenario::paper_default(52.0).unwrap()
    }

    fn obs(t: f64, p: f64, v: f64, window: Option<Interval>) -> Observation {
        Observation::new(t, VehicleState::new(p, v, 0.0), window)
    }

    #[test]
    fn goes_when_no_window() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        assert!(cons.plan(&obs(0.0, -30.0, 8.0, None)) > 0.0);
    }

    #[test]
    fn goes_when_window_far_in_future() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        // Ego at -10 doing 8 m/s clears the zone in ~3 s; window opens at 30 s.
        let a = cons.plan(&obs(0.0, -10.0, 8.0, Some(Interval::new(30.0, 40.0))));
        assert!(a > 0.0);
    }

    #[test]
    fn conservative_brakes_when_aggressive_goes() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        let mut aggr = TeacherPolicy::aggressive(&s);
        // At full throttle the ego clears the zone at ~3.1 s; with the
        // aggressive 0.4 s lead a window opening at 4.5 s is believed to
        // open at 4.9 s — a comfortable pass-before bet. The conservative
        // margin of 1.5 s rejects it and paces toward the window's end.
        let o = obs(0.0, -20.0, 8.0, Some(Interval::new(4.5, 8.0)));
        assert!(aggr.plan(&o) > 0.0, "aggressive should go");
        assert!(cons.plan(&o) < 0.0, "conservative should brake");
    }

    #[test]
    fn pacing_slows_down_for_distant_window_end() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        // Window closes far in the future: target speed ≈ 0 => brake hard.
        let a = cons.plan(&obs(0.0, -10.0, 8.0, Some(Interval::new(1.0, 100.0))));
        assert!(a < -2.0, "expected strong braking, got {a}");
        // Window closes soon: pace faster than the distant-close case.
        let a2 = cons.plan(&obs(0.0, -10.0, 8.0, Some(Interval::new(1.0, 2.0))));
        assert!(a2 > a, "closer window end must mean more speed");
    }

    #[test]
    fn pacing_never_crosses_line_while_window_blocks() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        let lims = s.ego_limits();
        // Blocked window covering the whole episode: must never enter.
        let window = Some(Interval::new(0.0, 1e5));
        let mut ego = VehicleState::new(-25.0, 8.0, 0.0);
        for i in 0..2000 {
            let t = i as f64 * 0.05;
            let a = cons.plan(&obs(t, ego.position, ego.velocity, window));
            ego = lims.step(&ego, a, 0.05);
            assert!(
                ego.position < s.geometry().p_f,
                "crossed the line while yielding at step {i}"
            );
        }
        assert!(ego.velocity < 0.5, "should be (nearly) stopped");
    }

    #[test]
    fn committed_ego_floors_it() {
        let s = scenario();
        let mut cons = TeacherPolicy::conservative(&s);
        // At 2 m before the line doing 12 m/s, stopping needs 12 m: committed.
        let a = cons.plan(&obs(0.0, 3.0, 12.0, Some(Interval::new(0.0, 10.0))));
        assert_eq!(a, s.ego_limits().a_max());
        // Inside the zone likewise.
        let a = cons.plan(&obs(0.0, 10.0, 5.0, Some(Interval::new(0.0, 10.0))));
        assert_eq!(a, s.ego_limits().a_max());
    }

    #[test]
    fn aggressive_arrives_earlier_than_conservative_when_paced() {
        let s = scenario();
        let lims = s.ego_limits();
        let window = Some(Interval::new(3.0, 6.0));
        let run = |mut teacher: TeacherPolicy| {
            let mut ego = VehicleState::new(-30.0, 8.0, 0.0);
            for i in 0..600 {
                let t = i as f64 * 0.05;
                let a = teacher.plan(&obs(t, ego.position, ego.velocity, window));
                ego = lims.step(&ego, a, 0.05);
                if ego.position >= s.geometry().p_f {
                    return t;
                }
            }
            f64::MAX
        };
        let t_cons = run(TeacherPolicy::conservative(&s));
        let t_aggr = run(TeacherPolicy::aggressive(&s));
        assert!(
            t_aggr + 0.25 < t_cons,
            "aggressive {t_aggr} not earlier than conservative {t_cons}"
        );
        // The conservative pacer arrives only after the window closes.
        assert!(t_cons >= 6.0, "conservative arrived at {t_cons}");
    }

    #[test]
    fn smaller_window_end_means_earlier_arrival() {
        // The property the ultimate compound planner exploits: pacing
        // against a more compact (aggressive) window ends earlier.
        let s = scenario();
        let lims = s.ego_limits();
        let run = |hi: f64| {
            let mut teacher = TeacherPolicy::conservative(&s);
            let mut ego = VehicleState::new(-30.0, 8.0, 0.0);
            for i in 0..600 {
                let t = i as f64 * 0.05;
                let a = teacher.plan(&obs(
                    t,
                    ego.position,
                    ego.velocity,
                    Some(Interval::new(2.0, hi)),
                ));
                ego = lims.step(&ego, a, 0.05);
                if ego.position >= s.geometry().p_f {
                    return t;
                }
            }
            f64::MAX
        };
        let arrive_tight = run(4.0);
        let arrive_loose = run(6.5);
        assert!(
            arrive_tight + 1.0 < arrive_loose,
            "tight {arrive_tight} vs loose {arrive_loose}"
        );
    }

    #[test]
    fn past_zone_keeps_cruising() {
        let s = scenario();
        let mut aggr = TeacherPolicy::aggressive(&s);
        assert!(aggr.plan(&obs(0.0, 16.0, 5.0, Some(Interval::new(0.0, 10.0)))) > 0.0);
    }

    #[test]
    fn names_differ() {
        let s = scenario();
        assert_ne!(
            TeacherPolicy::conservative(&s).name(),
            TeacherPolicy::aggressive(&s).name()
        );
    }
}
