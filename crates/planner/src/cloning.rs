use cv_dynamics::VehicleLimits;
use cv_nn::{Activation, Matrix, Mlp, NnError, Optimizer, TrainConfig, Trainer};
use safe_shield::Observation;

use crate::{FeatureScaling, NnPlanner};

/// A behaviour-cloning dataset: observations paired with the teacher's
/// acceleration commands.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    samples: Vec<(Observation, f64)>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one `(observation, teacher acceleration)` pair.
    pub fn push(&mut self, obs: Observation, accel: f64) {
        self.samples.push((obs, accel));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, (Observation, f64)> {
        self.samples.iter()
    }

    /// Converts into `(inputs, targets)` matrices with the given scaling and
    /// output convention of [`NnPlanner`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTrainingData`] if the dataset is empty.
    pub fn to_matrices(
        &self,
        scaling: &FeatureScaling,
        limits: &VehicleLimits,
    ) -> Result<(Matrix, Matrix), NnError> {
        if self.samples.is_empty() {
            return Err(NnError::InvalidTrainingData {
                context: "empty behaviour-cloning dataset".into(),
            });
        }
        let n = self.samples.len();
        let mut x = Vec::with_capacity(n * Observation::FEATURES);
        let mut y = Vec::with_capacity(n);
        for (obs, accel) in &self.samples {
            x.extend_from_slice(&NnPlanner::scaled_features(scaling, obs));
            y.push(NnPlanner::accel_to_output(limits, *accel));
        }
        Ok((
            Matrix::from_vec(n, Observation::FEATURES, x)?,
            Matrix::from_vec(n, 1, y)?,
        ))
    }
}

impl Extend<(Observation, f64)> for Dataset {
    fn extend<I: IntoIterator<Item = (Observation, f64)>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl FromIterator<(Observation, f64)> for Dataset {
    fn from_iter<I: IntoIterator<Item = (Observation, f64)>>(iter: I) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Hyperparameters for behaviour cloning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloneConfig {
    /// Hidden layer sizes (the input/output sizes are fixed at 5/1).
    pub hidden: [usize; 2],
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-init and shuffling seed.
    pub seed: u64,
}

impl Default for CloneConfig {
    fn default() -> Self {
        Self {
            hidden: [32, 32],
            epochs: 60,
            batch_size: 128,
            learning_rate: 5e-3,
            seed: 0,
        }
    }
}

/// Fits an [`NnPlanner`] to a teacher [`Dataset`] by supervised regression
/// (behaviour cloning). Returns the planner and the final training loss.
///
/// # Errors
///
/// Returns an [`NnError`] if the dataset is empty or training fails.
///
/// # Example
///
/// ```
/// use cv_planner::{clone_behaviour, CloneConfig, Dataset, FeatureScaling};
/// use cv_dynamics::{VehicleLimits, VehicleState};
/// use safe_shield::Observation;
///
/// let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0)?;
/// let mut data = Dataset::new();
/// // A toy rule: always brake gently.
/// for i in 0..200 {
///     let obs = Observation::new(i as f64 * 0.05, VehicleState::new(-30.0, 8.0, 0.0), None);
///     data.push(obs, -1.0);
/// }
/// let cfg = CloneConfig { epochs: 30, ..CloneConfig::default() };
/// let (planner, loss) = clone_behaviour(&data, limits, FeatureScaling::left_turn(), cfg, "demo")?;
/// assert!(loss < 0.05);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn clone_behaviour(
    data: &Dataset,
    limits: VehicleLimits,
    scaling: FeatureScaling,
    config: CloneConfig,
    name: impl Into<String>,
) -> Result<(NnPlanner, f64), NnError> {
    let (x, y) = data.to_matrices(&scaling, &limits)?;
    let mut net = Mlp::new(
        &[Observation::FEATURES, config.hidden[0], config.hidden[1], 1],
        Activation::Tanh,
        Activation::Tanh,
        config.seed,
    )?;
    let train_cfg = TrainConfig {
        epochs: config.epochs,
        batch_size: config.batch_size,
        seed: config.seed ^ 0x5EED,
        ..TrainConfig::default()
    };
    let history =
        Trainer::new(Optimizer::adam(config.learning_rate), train_cfg).fit(&mut net, &x, &y)?;
    let final_loss = *history.last().expect("at least one epoch");
    Ok((NnPlanner::new(net, limits, scaling, name), final_loss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;
    use cv_estimation::Interval;
    use safe_shield::Planner;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap()
    }

    /// A synthetic teacher: accelerate when the window is far, brake when it
    /// is close. The clone must reproduce the rule on held-out points.
    #[test]
    fn clone_learns_a_threshold_rule() {
        let mut data = Dataset::new();
        for i in 0..40 {
            for j in 0..40 {
                let p = -40.0 + i as f64;
                let w_start = 0.5 + j as f64 * 0.25;
                let obs = Observation::new(
                    0.0,
                    VehicleState::new(p, 8.0, 0.0),
                    Some(Interval::new(w_start, w_start + 2.0)),
                );
                let accel = if w_start > 6.0 { 2.0 } else { -3.0 };
                data.push(obs, accel);
            }
        }
        let cfg = CloneConfig {
            epochs: 80,
            seed: 3,
            ..CloneConfig::default()
        };
        let (mut planner, loss) =
            clone_behaviour(&data, limits(), FeatureScaling::left_turn(), cfg, "rule").unwrap();
        assert!(loss < 0.05, "training loss {loss}");
        // Held-out checks away from the threshold.
        let far = Observation::new(
            0.0,
            VehicleState::new(-20.5, 8.0, 0.0),
            Some(Interval::new(9.1, 11.1)),
        );
        let near = Observation::new(
            0.0,
            VehicleState::new(-20.5, 8.0, 0.0),
            Some(Interval::new(1.1, 3.1)),
        );
        assert!(planner.plan(&far) > 0.5, "far window -> accelerate");
        assert!(planner.plan(&near) < -1.0, "near window -> brake");
    }

    /// A full behaviour-cloning run through the in-place trainer must land
    /// on bit-identical weights to the allocating reference trainer given
    /// the same seed — the end-to-end check that the zero-allocation
    /// training path changes nothing but speed.
    #[test]
    fn cloning_run_is_bit_identical_to_allocating_trainer() {
        let mut data = Dataset::new();
        for i in 0..30 {
            for j in 0..10 {
                let obs = Observation::new(
                    i as f64 * 0.1,
                    VehicleState::new(-40.0 + i as f64, 8.0, 0.0),
                    Some(Interval::new(0.5 + j as f64 * 0.4, 2.5 + j as f64 * 0.4)),
                );
                data.push(obs, if j > 5 { 1.5 } else { -2.0 });
            }
        }
        let cfg = CloneConfig {
            epochs: 12,
            seed: 9,
            ..CloneConfig::default()
        };
        let (planner, loss) =
            clone_behaviour(&data, limits(), FeatureScaling::left_turn(), cfg, "ab").unwrap();

        // Replicate clone_behaviour with the allocating reference trainer.
        let (x, y) = data
            .to_matrices(&FeatureScaling::left_turn(), &limits())
            .unwrap();
        let mut reference = Mlp::new(
            &[Observation::FEATURES, cfg.hidden[0], cfg.hidden[1], 1],
            Activation::Tanh,
            Activation::Tanh,
            cfg.seed,
        )
        .unwrap();
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            seed: cfg.seed ^ 0x5EED,
            ..TrainConfig::default()
        };
        let history = Trainer::new(Optimizer::adam(cfg.learning_rate), train_cfg)
            .fit_alloc(&mut reference, &x, &y)
            .unwrap();
        assert_eq!(loss.to_bits(), history.last().unwrap().to_bits());
        for (la, lb) in planner.network().layers().iter().zip(reference.layers()) {
            for (a, b) in la.weights().as_slice().iter().zip(lb.weights().as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in la.bias().iter().zip(lb.bias()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_dataset_errors() {
        let res = clone_behaviour(
            &Dataset::new(),
            limits(),
            FeatureScaling::left_turn(),
            CloneConfig::default(),
            "x",
        );
        assert!(matches!(res, Err(NnError::InvalidTrainingData { .. })));
    }

    #[test]
    fn dataset_collects_and_converts() {
        let data: Dataset = (0..10)
            .map(|i| {
                (
                    Observation::new(i as f64, VehicleState::at_rest(), None),
                    1.0,
                )
            })
            .collect();
        assert_eq!(data.len(), 10);
        let (x, y) = data
            .to_matrices(&FeatureScaling::left_turn(), &limits())
            .unwrap();
        assert_eq!(x.rows(), 10);
        assert_eq!(x.cols(), Observation::FEATURES);
        assert_eq!(y.rows(), 10);
        // accel 1.0 in [-6, 3] maps to (1+6)/9*2-1 = 0.555...
        assert!((y.get(0, 0) - (2.0 * 7.0 / 9.0 - 1.0)).abs() < 1e-12);
    }
}
