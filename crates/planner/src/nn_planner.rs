use cv_dynamics::VehicleLimits;
use cv_nn::{Mlp, MlpScratch};
use safe_shield::{Observation, Planner};

/// Fixed input scaling applied before the MLP.
///
/// The five observation features `[t, p_0, v_0, τ_rel,min, τ_rel,max]` have
/// very different magnitudes; dividing by these constants keeps them roughly
/// in `[−1, 1]`, which matters for tanh networks. The scales are part of the
/// planner (serialized with it), not of the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureScaling {
    /// Divisor for the time feature.
    pub time: f64,
    /// Divisor for the position feature.
    pub position: f64,
    /// Divisor for the velocity feature.
    pub velocity: f64,
    /// Divisor for the two relative-window features.
    pub window: f64,
}

impl FeatureScaling {
    /// Scaling matched to the paper's left-turn geometry (tens of metres,
    /// tens of seconds, ~10 m/s speeds).
    pub fn left_turn() -> Self {
        Self {
            time: 10.0,
            position: 30.0,
            velocity: 12.0,
            window: 10.0,
        }
    }

    /// Applies the scaling to a feature vector.
    pub fn apply(&self, features: &[f64; Observation::FEATURES]) -> [f64; Observation::FEATURES] {
        [
            features[0] / self.time,
            features[1] / self.position,
            features[2] / self.velocity,
            features[3] / self.window,
            features[4] / self.window,
        ]
    }
}

impl Default for FeatureScaling {
    fn default() -> Self {
        Self::left_turn()
    }
}

/// A neural-network-based planner `κ_n`: an [`Mlp`] over the five scenario
/// features, with its output mapped onto the ego's admissible acceleration
/// range.
///
/// The network's single output `y` (trained in tanh range) is mapped
/// affinely: `a = a_min + (y + 1)/2 · (a_max − a_min)`, then clamped. Use
/// [`NnPlanner::accel_to_output`] to build training targets with the same
/// convention.
///
/// # Example
///
/// ```
/// use cv_nn::{Activation, Mlp};
/// use cv_planner::{FeatureScaling, NnPlanner};
/// use cv_dynamics::{VehicleLimits, VehicleState};
/// use safe_shield::{Observation, Planner};
///
/// let net = Mlp::new(&[5, 16, 1], Activation::Tanh, Activation::Tanh, 0)?;
/// let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0)?;
/// let mut planner = NnPlanner::new(net, limits, FeatureScaling::left_turn(), "nn-demo");
/// let obs = Observation::new(0.0, VehicleState::new(-30.0, 8.0, 0.0), None);
/// let accel = planner.plan(&obs);
/// assert!((-6.0..=3.0).contains(&accel));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NnPlanner {
    net: Mlp,
    limits: VehicleLimits,
    scaling: FeatureScaling,
    name: String,
    /// Reusable activation buffers so the per-step [`Planner::plan`] call is
    /// allocation-free. Pure workspace: carries no state between calls and
    /// is excluded from equality.
    scratch: MlpScratch,
}

impl PartialEq for NnPlanner {
    fn eq(&self, other: &Self) -> bool {
        self.net == other.net
            && self.limits == other.limits
            && self.scaling == other.scaling
            && self.name == other.name
    }
}

impl NnPlanner {
    /// Wraps a trained network.
    ///
    /// # Panics
    ///
    /// Panics if the network is not 5-in/1-out.
    pub fn new(
        net: Mlp,
        limits: VehicleLimits,
        scaling: FeatureScaling,
        name: impl Into<String>,
    ) -> Self {
        assert_eq!(
            net.input_dim(),
            Observation::FEATURES,
            "planner network must take {} inputs",
            Observation::FEATURES
        );
        assert_eq!(net.output_dim(), 1, "planner network must have 1 output");
        let scratch = MlpScratch::for_net(&net);
        Self {
            net,
            limits,
            scaling,
            name: name.into(),
            scratch,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// The ego limits used for output mapping.
    pub fn limits(&self) -> VehicleLimits {
        self.limits
    }

    /// The input scaling.
    pub fn scaling(&self) -> FeatureScaling {
        self.scaling
    }

    /// Maps a network output in `[−1, 1]` to an acceleration.
    pub fn output_to_accel(&self, y: f64) -> f64 {
        Self::map_output(&self.limits, y)
    }

    /// Associated form of [`NnPlanner::output_to_accel`] for callers that
    /// hold the limits but not a planner instance (the lane-batched
    /// executor completes deferred NN steps this way; it must match the
    /// per-episode mapping to the bit).
    pub fn map_output(limits: &VehicleLimits, y: f64) -> f64 {
        let a_min = limits.a_min();
        let a_max = limits.a_max();
        limits.clamp_accel(a_min + 0.5 * (y.clamp(-1.0, 1.0) + 1.0) * (a_max - a_min))
    }

    /// Inverse of [`NnPlanner::output_to_accel`] — used to build training
    /// targets from teacher accelerations.
    pub fn accel_to_output(limits: &VehicleLimits, accel: f64) -> f64 {
        let a = limits.clamp_accel(accel);
        2.0 * (a - limits.a_min()) / (limits.a_max() - limits.a_min()) - 1.0
    }

    /// Scaled feature vector for an observation (exposed for training).
    pub fn scaled_features(
        scaling: &FeatureScaling,
        obs: &Observation,
    ) -> [f64; Observation::FEATURES] {
        scaling.apply(&obs.features())
    }

    /// Serializes the planner (scaling + limits header, then network text).
    pub fn to_text(&self) -> String {
        format!(
            "nnplanner {} {} {} {} {} {} {} {} {}\n{}",
            self.name.replace(' ', "_"),
            self.scaling.time,
            self.scaling.position,
            self.scaling.velocity,
            self.scaling.window,
            self.limits.v_min(),
            self.limits.v_max(),
            self.limits.a_min(),
            self.limits.a_max(),
            self.net.to_text()
        )
    }

    /// Parses the format produced by [`NnPlanner::to_text`].
    ///
    /// # Errors
    ///
    /// Returns an error string describing the malformed part.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (header, rest) = text
            .split_once('\n')
            .ok_or_else(|| "missing header line".to_string())?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 10 || parts[0] != "nnplanner" {
            return Err("bad nnplanner header".into());
        }
        let num = |i: usize| -> Result<f64, String> {
            parts[i]
                .parse::<f64>()
                .map_err(|e| format!("header field {i}: {e}"))
        };
        let scaling = FeatureScaling {
            time: num(2)?,
            position: num(3)?,
            velocity: num(4)?,
            window: num(5)?,
        };
        let limits =
            VehicleLimits::new(num(6)?, num(7)?, num(8)?, num(9)?).map_err(|e| e.to_string())?;
        let net = Mlp::from_text(rest).map_err(|e| e.to_string())?;
        Ok(Self::new(net, limits, scaling, parts[1].to_string()))
    }
}

impl Planner for NnPlanner {
    fn plan(&mut self, obs: &Observation) -> f64 {
        let features = self.scaling.apply(&obs.features());
        let mut out = [0.0f64];
        self.net
            .predict_into(&features, &mut self.scratch, &mut out)
            .expect("network arity checked at construction");
        self.output_to_accel(out[0])
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_nn::Activation;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap()
    }

    fn planner() -> NnPlanner {
        let net = Mlp::new(&[5, 8, 1], Activation::Tanh, Activation::Tanh, 1).unwrap();
        NnPlanner::new(net, limits(), FeatureScaling::left_turn(), "nn-test")
    }

    #[test]
    fn output_mapping_roundtrips() {
        let p = planner();
        for a in [-6.0, -3.0, 0.0, 1.5, 3.0] {
            let y = NnPlanner::accel_to_output(&limits(), a);
            assert!((p.output_to_accel(y) - a).abs() < 1e-9, "accel {a}");
        }
        // Extremes of y map to the limit accelerations.
        assert_eq!(p.output_to_accel(-1.0), -6.0);
        assert_eq!(p.output_to_accel(1.0), 3.0);
    }

    #[test]
    fn plan_is_always_within_limits() {
        let mut p = planner();
        for t in 0..50 {
            let obs = Observation::new(
                t as f64 * 0.3,
                cv_dynamics::VehicleState::new(-30.0 + t as f64, 8.0, 0.0),
                Some(cv_estimation::Interval::new(3.0, 6.0)),
            );
            let a = p.plan(&obs);
            assert!((-6.0..=3.0).contains(&a));
        }
    }

    /// The scratch-backed plan path must agree to the bit with the
    /// allocating `Mlp::predict` reference.
    #[test]
    fn plan_matches_allocating_predict_bitwise() {
        let mut p = planner();
        for t in 0..20 {
            let obs = Observation::new(
                t as f64 * 0.25,
                cv_dynamics::VehicleState::new(-28.0 + t as f64, 7.5, 0.0),
                Some(cv_estimation::Interval::new(2.0, 5.0)),
            );
            let via_scratch = p.plan(&obs);
            let features = p.scaling().apply(&obs.features());
            let y = p.network().predict(&features).unwrap()[0];
            let reference = p.output_to_accel(y);
            assert_eq!(via_scratch.to_bits(), reference.to_bits(), "step {t}");
        }
    }

    #[test]
    fn text_roundtrip() {
        let p = planner();
        let text = p.to_text();
        let back = NnPlanner::from_text(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(NnPlanner::from_text("").is_err());
        assert!(NnPlanner::from_text("bogus 1 2 3\n").is_err());
        assert!(NnPlanner::from_text("nnplanner a 1 2 3 4 5 6 7\nmlp 0\n").is_err());
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let net = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Tanh, 1).unwrap();
        let _ = NnPlanner::new(net, limits(), FeatureScaling::left_turn(), "bad");
    }
}
