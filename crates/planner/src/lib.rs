//! Planner implementations: analytic teacher policies and NN-based planners.
//!
//! The paper's evaluation needs two flavours of neural planner (Section V-A):
//! an *overly conservative* one (`κ_n,cons`) and an *over-aggressive* one
//! (`κ_n,aggr`). Following the substitution documented in `DESIGN.md`, we
//! obtain them by **behaviour cloning** two analytic [`TeacherPolicy`]
//! instances into small MLPs ([`NnPlanner`]):
//!
//! * [`TeacherPolicy::conservative`] — yields unless it can clear the
//!   conflict zone a comfortable margin before the oncoming window, and
//!   accelerates gently. Safe but slow.
//! * [`TeacherPolicy::aggressive`] — goes at full throttle with almost no
//!   margin. Fast, and unsafe exactly when its (naively estimated) window is
//!   wrong — reproducing the ≈40 % collision rate of the paper's Table II.
//!
//! Training data is produced by the `cv-sim` crate (closed-loop rollouts of
//! the teachers); [`clone_behaviour`] fits the MLP.

mod cloning;
mod nn_planner;
mod teacher;

pub use cloning::{clone_behaviour, CloneConfig, Dataset};
pub use nn_planner::{FeatureScaling, NnPlanner};
pub use teacher::TeacherPolicy;
