//! Information-filter substrate: interval arithmetic, reachability analysis,
//! Kalman filtering with message rollback, and their fusion.
//!
//! This crate implements Section III-B of the paper. The ego vehicle learns
//! about another vehicle `C_i` through two imperfect sources:
//!
//! * **V2V messages** — exact but possibly delayed or dropped. The
//!   [`reachability`] module bounds where `C_i` can be *now* given its exact
//!   state at the (stale) message stamp and its physical limits (paper Eq. 2).
//! * **Onboard sensors** — instantaneous but corrupted by bounded uniform
//!   noise. Bounded support yields a *hard* interval per measurement; the
//!   [`KalmanFilter`]/[`TrackingFilter`] recover a sharp point estimate, with
//!   a message-triggered rollback replay as described in the paper.
//!
//! The [`InformationFilter`] joins the two by interval intersection and
//! produces a [`VehicleEstimate`]: sound hard bounds for the runtime monitor
//! plus a fused nominal state for the aggressive unsafe-set estimation.
//!
//! # Example
//!
//! ```
//! use cv_estimation::{Interval, reachability};
//! use cv_dynamics::VehicleLimits;
//!
//! let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0)?;
//! // Last message: C1 at p = 20 m, v = 10 m/s, 0.5 s ago.
//! let reach = reachability::reach(
//!     Interval::point(20.0),
//!     Interval::point(10.0),
//!     0.5,
//!     &limits,
//! );
//! assert!(reach.position.contains(20.0 + 10.0 * 0.5)); // constant speed is reachable
//! # Ok::<(), cv_dynamics::LimitsError>(())
//! ```

mod estimate;
mod estimator;
mod fusion;
mod interval;
mod kalman;
mod linalg;
pub mod reachability;
mod tracking;

pub use estimate::VehicleEstimate;
pub use estimator::{Estimator, NaiveEstimator};
pub use fusion::{FilterMode, InformationFilter, Prior};
pub use interval::Interval;
pub use kalman::KalmanFilter;
pub use linalg::{Mat2, Vec2};
pub use reachability::ReachSet;
pub use tracking::TrackingFilter;
