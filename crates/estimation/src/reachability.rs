//! Forward reachability analysis over stale information (paper Eq. 2).
//!
//! Given the exact state of a vehicle at a (possibly old) timestamp and its
//! physical limits, these functions bound every position/velocity the vehicle
//! can occupy `elapsed` seconds later. The closed forms account for velocity
//! saturation: e.g. the maximum position is reached by accelerating at
//! `a_max` until `v_max`, then cruising — exactly the two branches of Eq. 2.
//!
//! Inputs are [`Interval`]s so the same code propagates both exact message
//! states (degenerate intervals) and noise-widened sensor intervals; the
//! bounds are monotone in the inputs, so evaluating the scalar closed form at
//! the worst corner is sound.

use cv_dynamics::VehicleLimits;

use crate::Interval;

/// Reachable position and velocity intervals after some elapsed time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachSet {
    /// All positions the vehicle may occupy.
    pub position: Interval,
    /// All velocities the vehicle may have.
    pub velocity: Interval,
}

/// Maximum position reachable from `(p, v)` after `elapsed` seconds: full
/// throttle `a_max` until `v_max`, then cruise (first/second branch of
/// paper Eq. 2).
///
/// # Panics
///
/// Panics in debug builds if `elapsed < 0`.
pub fn max_position(p: f64, v: f64, elapsed: f64, limits: &VehicleLimits) -> f64 {
    debug_assert!(elapsed >= 0.0, "elapsed must be nonnegative, got {elapsed}");
    let v = limits.clamp_velocity(v);
    extreme_position(p, v, elapsed, limits.a_max(), limits.v_max())
}

/// Minimum position reachable from `(p, v)` after `elapsed` seconds: full
/// braking `a_min` until `v_min`, then cruise (mirror of [`max_position`]).
///
/// # Panics
///
/// Panics in debug builds if `elapsed < 0`.
pub fn min_position(p: f64, v: f64, elapsed: f64, limits: &VehicleLimits) -> f64 {
    debug_assert!(elapsed >= 0.0, "elapsed must be nonnegative, got {elapsed}");
    let v = limits.clamp_velocity(v);
    extreme_position(p, v, elapsed, limits.a_min(), limits.v_min())
}

/// Travels at constant acceleration `a` from `(p, v)` until the velocity hits
/// `v_sat`, then cruises at `v_sat`. Correct for both signs of `a`.
fn extreme_position(p: f64, v: f64, elapsed: f64, a: f64, v_sat: f64) -> f64 {
    if a == 0.0 {
        return p + v * elapsed;
    }
    let t_sat = (v_sat - v) / a;
    if t_sat <= 0.0 {
        // Already at/past saturation in this direction: cruise immediately.
        p + v_sat * elapsed
    } else if elapsed <= t_sat {
        p + v * elapsed + 0.5 * a * elapsed * elapsed
    } else {
        p + v * t_sat + 0.5 * a * t_sat * t_sat + v_sat * (elapsed - t_sat)
    }
}

/// Reachable velocity interval from an initial velocity interval.
pub fn reach_velocity(v: Interval, elapsed: f64, limits: &VehicleLimits) -> Interval {
    debug_assert!(elapsed >= 0.0);
    let lo = (limits.clamp_velocity(v.lo()) + limits.a_min() * elapsed).max(limits.v_min());
    let hi = (limits.clamp_velocity(v.hi()) + limits.a_max() * elapsed).min(limits.v_max());
    Interval::new(lo, hi)
}

/// Full reachable set from interval-valued initial position and velocity.
///
/// The extremes are monotone in `(p, v)`, so the corners `(p.hi, v.hi)` and
/// `(p.lo, v.lo)` give the exact position bounds.
///
/// # Example
///
/// ```
/// use cv_estimation::{Interval, reachability::reach};
/// use cv_dynamics::VehicleLimits;
///
/// let limits = VehicleLimits::new(0.0, 10.0, -4.0, 2.0)?;
/// let set = reach(Interval::point(0.0), Interval::point(5.0), 1.0, &limits);
/// // Constant speed stays inside.
/// assert!(set.position.contains(5.0));
/// // Full throttle for 1 s: 5 + 0.5*2 = 6 m.
/// assert!((set.position.hi() - 6.0).abs() < 1e-12);
/// # Ok::<(), cv_dynamics::LimitsError>(())
/// ```
pub fn reach(p: Interval, v: Interval, elapsed: f64, limits: &VehicleLimits) -> ReachSet {
    ReachSet {
        position: Interval::new(
            min_position(p.lo(), v.lo(), elapsed, limits),
            max_position(p.hi(), v.hi(), elapsed, limits),
        ),
        velocity: reach_velocity(v, elapsed, limits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(0.0, 10.0, -4.0, 2.0).unwrap()
    }

    #[test]
    fn zero_elapsed_is_identity() {
        let set = reach(Interval::point(3.0), Interval::point(5.0), 0.0, &limits());
        assert_eq!(set.position, Interval::point(3.0));
        assert_eq!(set.velocity, Interval::point(5.0));
    }

    #[test]
    fn max_position_pre_saturation_branch() {
        // v = 5, a_max = 2, after 1 s: no saturation (v_max = 10).
        let p = max_position(0.0, 5.0, 1.0, &limits());
        assert!((p - (5.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn max_position_saturated_branch_matches_eq2_closed_form() {
        // v = 9, a_max = 2, v_max = 10 -> saturates at t = 0.5.
        let lim = limits();
        let elapsed = 2.0;
        let p = max_position(0.0, 9.0, elapsed, &lim);
        // Paper Eq. 2 second branch: p + v_max*τ − (v_max − v)²/(2 a_max).
        let closed = 10.0 * elapsed - (10.0 - 9.0_f64).powi(2) / (2.0 * 2.0);
        assert!((p - closed).abs() < 1e-12, "{p} vs {closed}");
    }

    #[test]
    fn min_position_stops_at_v_min() {
        // v = 4, a_min = -4 -> stops after 1 s having covered 2 m.
        let p = min_position(0.0, 4.0, 5.0, &limits());
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn velocity_reach_saturates() {
        let v = reach_velocity(Interval::point(5.0), 10.0, &limits());
        assert_eq!(v, Interval::new(0.0, 10.0));
    }

    /// The Eq. 2 branch boundary, hit exactly: at `v = v_max` the
    /// saturation time `t_sat = (v_max − v)/a_max` is exactly zero, so the
    /// acceleration phase degenerates and the bound is pure cruise — and
    /// the two closed-form branches must agree at `elapsed = t_sat`.
    #[test]
    fn saturation_boundary_at_exactly_v_max() {
        let lim = limits();
        for elapsed in [0.0, 0.3, 1.0, 7.5] {
            // v = v_max exactly: cruise from t = 0.
            let p = max_position(2.0, 10.0, elapsed, &lim);
            assert!(
                (p - (2.0 + 10.0 * elapsed)).abs() < 1e-12,
                "elapsed {elapsed}: {p}"
            );
            // Mirror boundary: v = v_min exactly under full braking never
            // moves backwards (v_min = 0 here).
            let q = min_position(2.0, 0.0, elapsed, &lim);
            assert!((q - 2.0).abs() < 1e-12, "elapsed {elapsed}: {q}");
        }

        // Continuity across the boundary: an initial velocity within ε of
        // v_max gives a bound within O(ε) of the cruise value.
        let eps = 1e-9;
        let below = max_position(0.0, 10.0 - eps, 1.0, &lim);
        let at = max_position(0.0, 10.0, 1.0, &lim);
        assert!((below - at).abs() < 1e-8, "{below} vs {at}");

        // elapsed = t_sat exactly (v = 8, a_max = 2 → t_sat = 1): the
        // pre-saturation branch and the Eq. 2 saturated closed form
        // p + v_max·τ − (v_max − v)²/(2 a_max) give the same bound.
        let branch1 = max_position(0.0, 8.0, 1.0, &lim);
        let branch2 = 10.0 * 1.0 - (10.0 - 8.0_f64).powi(2) / (2.0 * 2.0);
        assert!((branch1 - branch2).abs() < 1e-12);
        assert!((branch1 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn initial_velocity_above_vmax_is_clamped() {
        // Defensive: stale data may claim v > v_max; bound must stay sound
        // for the clamped dynamics.
        let p = max_position(0.0, 50.0, 1.0, &limits());
        assert!((p - 10.0).abs() < 1e-12);
    }

    /// Simulates a random admissible acceleration sequence and checks the
    /// true state stays inside the reach set at every step — the soundness
    /// property the runtime monitor relies on.
    #[test]
    fn reach_set_contains_all_simulated_trajectories() {
        use cv_rng::{Rng, SplitMix64};
        let lim = limits();
        let dt = 0.05;
        let mut rng = SplitMix64::seed_from_u64(7);
        for trial in 0..200 {
            let v0 = rng.random_range(0.0..10.0);
            let p0 = rng.random_range(-50.0..50.0);
            let mut s = VehicleState::new(p0, v0, 0.0);
            for step in 1..=60 {
                let a = rng.random_range(-4.0..2.0);
                s = lim.step(&s, a, dt);
                let elapsed = step as f64 * dt;
                let set = reach(Interval::point(p0), Interval::point(v0), elapsed, &lim);
                assert!(
                    set.position.contains(s.position),
                    "trial {trial} step {step}: p={} not in {}",
                    s.position,
                    set.position
                );
                assert!(
                    set.velocity.contains(s.velocity),
                    "trial {trial} step {step}: v={} not in {}",
                    s.velocity,
                    set.velocity
                );
            }
        }
    }

    mod props {
        use super::*;

        cv_rng::props! {            fn reach_bounds_evolve_monotonically(
                p in -50.0..50.0f64,
                v in 0.0..10.0f64,
                t1 in 0.0..5.0f64,
                dt in 0.0..5.0f64,
            ) {
                // With v_min >= 0 the vehicle can only move forward, so both
                // position bounds are nondecreasing in elapsed time, and the
                // width (uncertainty) never shrinks.
                let lim = limits();
                let early = reach(Interval::point(p), Interval::point(v), t1, &lim);
                let late = reach(Interval::point(p), Interval::point(v), t1 + dt, &lim);
                assert!(late.position.lo() + 1e-9 >= early.position.lo());
                assert!(late.position.hi() + 1e-9 >= early.position.hi());
                assert!(late.position.width() + 1e-9 >= early.position.width());
                assert!(late.velocity.width() + 1e-9 >= early.velocity.width());
            }
            fn reach_is_monotone_in_input_interval(
                p in -50.0..50.0f64,
                v in 0.0..9.0f64,
                wp in 0.0..5.0f64,
                wv in 0.0..1.0f64,
                t in 0.0..5.0f64,
            ) {
                let lim = limits();
                let tight = reach(Interval::point(p), Interval::point(v), t, &lim);
                let wide = reach(
                    Interval::new(p - wp, p + wp),
                    Interval::new(v - wv.min(v), v + wv),
                    t,
                    &lim,
                );
                assert!(wide.position.contains_interval(&tight.position));
                assert!(wide.velocity.contains_interval(&tight.velocity));
            }
            fn reach_semigroup_superset(
                p in -50.0..50.0f64,
                v in 0.0..10.0f64,
                t1 in 0.01..3.0f64,
                t2 in 0.01..3.0f64,
            ) {
                // reach(x, t1+t2) ⊆ reach(reach(x, t1), t2): propagating the
                // intermediate *box* loses the p-v correlation, so the
                // two-stage box is a superset.
                let lim = limits();
                let direct = reach(Interval::point(p), Interval::point(v), t1 + t2, &lim);
                let mid = reach(Interval::point(p), Interval::point(v), t1, &lim);
                let staged = reach(mid.position, mid.velocity, t2, &lim);
                assert!(staged.position.expand(1e-9).contains_interval(&direct.position));
                assert!(staged.velocity.expand(1e-9).contains_interval(&direct.velocity));
            }
        }
    }
}
