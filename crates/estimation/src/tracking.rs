use std::collections::VecDeque;

use cv_comm::Message;
use cv_sensing::{Measurement, SensorNoise};

use crate::{Interval, KalmanFilter, Mat2, Vec2};

/// One stored sensing event, kept for message-triggered replay.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SensorRecord {
    stamp: f64,
    z: Vec2,
    accel: f64,
}

/// Kalman tracker for one remote vehicle with the paper's message rollback.
///
/// This is the "modified design" of paper §III-B: every sensing period the
/// extrapolated state and covariance are (conceptually) stored, and *"every
/// time a message recording the states of `C_i` at time `t_k` arrives,
/// `x̂(t_k)`/`P(t_k)` are restored and the filter renews the estimations from
/// `t_k` to the current timestamp"*. Because the message payload is exact,
/// restoring means pinning the state to the payload with near-zero
/// covariance, then replaying the retained measurements after `t_k`.
///
/// # Example
///
/// ```
/// use cv_estimation::TrackingFilter;
/// use cv_sensing::{Measurement, SensorNoise};
/// use cv_comm::Message;
///
/// let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 50.0, 10.0);
/// tf.on_measurement(&Measurement::new(1, 0.1, 50.9, 10.2, 0.0));
/// // A delayed message about t = 0.05 arrives at t = 0.3:
/// tf.on_message(&Message::new(1, 0.05, 50.5, 10.0, 0.0));
/// let (state, _) = tf.predicted(0.3);
/// assert!((state.x - 53.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingFilter {
    kf: KalmanFilter,
    /// Time of the current posterior estimate.
    last_time: f64,
    /// Latest acceleration input, used to extrapolate beyond `last_time`.
    last_accel: f64,
    history: VecDeque<SensorRecord>,
    max_history: usize,
}

impl TrackingFilter {
    /// Default number of retained sensing events for rollback replay.
    ///
    /// At `Δt_s = 0.1 s` this covers 20 s of history — far beyond any
    /// realistic message delay.
    pub const DEFAULT_MAX_HISTORY: usize = 256;

    /// Creates a tracker initialised at time `t0` with a rough guess of the
    /// target's position and velocity (covariance starts wide).
    pub fn new(noise: SensorNoise, t0: f64, position_guess: f64, velocity_guess: f64) -> Self {
        Self {
            kf: KalmanFilter::new(
                noise,
                Vec2::new(position_guess, velocity_guess),
                Mat2::diag(25.0, 25.0),
            ),
            last_time: t0,
            last_accel: 0.0,
            // Sized for the common case up front: the rollback/replay path
            // pushes one record per sensing period, and regrowing the ring
            // mid-episode is the only allocation the tracker would make.
            history: VecDeque::with_capacity(64),
            max_history: Self::DEFAULT_MAX_HISTORY,
        }
    }

    /// Overrides the underlying filter's process-noise acceleration
    /// variance (see [`KalmanFilter::with_process_accel_var`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` is negative or non-finite.
    pub fn with_process_accel_var(mut self, var: f64) -> Self {
        self.kf = self.kf.clone().with_process_accel_var(var);
        self
    }

    /// Time of the latest posterior estimate.
    pub fn last_time(&self) -> f64 {
        self.last_time
    }

    /// Incorporates a sensor measurement taken at `m.stamp`.
    ///
    /// Measurements must arrive in nondecreasing stamp order (sensors have
    /// no delay); out-of-order measurements are ignored.
    pub fn on_measurement(&mut self, m: &Measurement) {
        if m.stamp < self.last_time - 1e-12 {
            return;
        }
        let dt = (m.stamp - self.last_time).max(0.0);
        self.kf.predict(self.last_accel, dt);
        let z = Vec2::new(m.position, m.velocity);
        self.kf.update(z);
        self.last_time = m.stamp;
        self.last_accel = m.acceleration;
        self.history.push_back(SensorRecord {
            stamp: m.stamp,
            z,
            accel: m.acceleration,
        });
        while self.history.len() > self.max_history {
            self.history.pop_front();
        }
    }

    /// Incorporates an exact (possibly delayed) V2V message.
    ///
    /// If the message is newer than every measurement, the filter simply
    /// fast-forwards and pins itself to the payload. If it is stale, the
    /// filter rolls back to `msg.stamp`, pins the state there, and replays
    /// the retained measurements taken after `msg.stamp`.
    pub fn on_message(&mut self, msg: &Message) {
        let payload = Vec2::new(msg.position, msg.velocity);
        if msg.stamp >= self.last_time {
            self.kf.reset_exact(payload);
            self.last_time = msg.stamp;
            self.last_accel = msg.acceleration;
            self.history.clear();
            return;
        }
        // Rollback: pin at msg.stamp, replay newer measurements.
        self.kf.reset_exact(payload);
        let mut t = msg.stamp;
        let mut accel = msg.acceleration;
        self.history.retain(|r| r.stamp > msg.stamp + 1e-12);
        // VecDeque::retain keeps order; replay in place.
        for r in self.history.iter() {
            self.kf.predict(accel, (r.stamp - t).max(0.0));
            self.kf.update(r.z);
            t = r.stamp;
            accel = r.accel;
        }
        self.last_time = t;
        self.last_accel = accel;
    }

    /// Extrapolated state and covariance at `now ≥ last_time`, without
    /// mutating the filter.
    pub fn predicted(&self, now: f64) -> (Vec2, Mat2) {
        let mut kf = self.kf.clone();
        kf.predict(self.last_accel, (now - self.last_time).max(0.0));
        (kf.state(), kf.covariance())
    }

    /// `k_sigma` position confidence interval extrapolated to `now`.
    pub fn position_interval(&self, now: f64, k_sigma: f64) -> Interval {
        let (x, p) = self.predicted(now);
        Interval::centered(x.x, k_sigma * p.a.max(0.0).sqrt())
    }

    /// `k_sigma` velocity confidence interval extrapolated to `now`.
    pub fn velocity_interval(&self, now: f64, k_sigma: f64) -> Interval {
        let (x, p) = self.predicted(now);
        Interval::centered(x.y, k_sigma * p.d.max(0.0).sqrt())
    }

    /// Latest known acceleration input of the target.
    pub fn last_accel(&self) -> f64 {
        self.last_accel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::{VehicleLimits, VehicleState};
    use cv_rng::{Rng, SplitMix64};

    #[test]
    fn measurement_sequence_tracks_target() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 0.0, 5.0);
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut p = 0.0;
        let v = 6.0;
        for i in 1..=200 {
            let t = i as f64 * 0.1;
            p += v * 0.1;
            tf.on_measurement(&Measurement::new(
                1,
                t,
                p + rng.random_range(-1.0..1.0),
                v + rng.random_range(-1.0..1.0),
                0.0,
            ));
        }
        let (x, _) = tf.predicted(20.0);
        assert!((x.x - p).abs() < 0.5, "position err {}", (x.x - p).abs());
        assert!((x.y - v).abs() < 0.3, "velocity err {}", (x.y - v).abs());
    }

    #[test]
    fn fresh_message_pins_estimate_exactly() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(2.0), 0.0, 0.0, 0.0);
        tf.on_measurement(&Measurement::new(1, 0.1, 55.0, 3.0, 0.0));
        tf.on_message(&Message::new(1, 0.2, 40.0, 8.0, 1.0));
        let (x, p) = tf.predicted(0.2);
        assert_eq!(x, Vec2::new(40.0, 8.0));
        assert!(p.a < 1e-6);
    }

    #[test]
    fn stale_message_rollback_improves_estimate() {
        // Target moves with a known accel profile; sensor is very noisy.
        // A delayed exact message about the past should *reduce* the error
        // at the current time versus not having the message.
        let limits = VehicleLimits::new(0.0, 20.0, -3.0, 3.0).unwrap();
        let mut rng = SplitMix64::seed_from_u64(9);
        let dt = 0.1;
        let mut truth = VehicleState::new(0.0, 8.0, 0.0);
        let mut with_msg = TrackingFilter::new(SensorNoise::uniform(3.0), 0.0, 0.0, 8.0);
        let mut without_msg = with_msg.clone();
        let mut truth_at_1s = truth;
        for i in 1..=20 {
            let t = i as f64 * dt;
            let a = rng.random_range(-2.0..2.0);
            truth = limits.step(&truth, a, dt);
            let m = Measurement::new(
                1,
                t,
                truth.position + rng.random_range(-3.0..3.0),
                truth.velocity + rng.random_range(-3.0..3.0),
                truth.acceleration + rng.random_range(-3.0..3.0),
            );
            with_msg.on_measurement(&m);
            without_msg.on_measurement(&m);
            if i == 10 {
                truth_at_1s = truth;
            }
        }
        // Message about t = 1.0 arrives (delayed by 1 s).
        with_msg.on_message(&Message::from_state(1, 1.0, &truth_at_1s));
        let (xw, _) = with_msg.predicted(2.0);
        let (xo, _) = without_msg.predicted(2.0);
        let err_with = (xw.x - truth.position).abs();
        let err_without = (xo.x - truth.position).abs();
        assert!(
            err_with <= err_without + 0.2,
            "rollback made things worse: {err_with} vs {err_without}"
        );
    }

    #[test]
    fn rollback_replays_only_newer_measurements() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 0.0, 5.0);
        for i in 1..=5 {
            tf.on_measurement(&Measurement::new(1, i as f64 * 0.1, i as f64, 5.0, 0.0));
        }
        tf.on_message(&Message::new(1, 0.3, 3.0, 5.0, 0.0));
        // History before/at 0.3 must be gone: a later message at 0.2 fast-
        // forward path is not taken; check last_time is the last replay.
        assert!((tf.last_time() - 0.5).abs() < 1e-12);
    }

    /// Pins the message-triggered rollback replay (paper §III-B) against a
    /// trace computed by hand from the filter equations: with `δ = 1`
    /// everywhere, `R = diag(1/3, 1/3)` and process variance `δ_a²/3 = 1/3`.
    /// The delayed message pins `(0.6, 10.0)` at `t = 0.05` with
    /// `P = diag(1e-9, 1e-9)`; the replay is then exactly
    ///
    /// ```text
    /// predict(a = 0.2, Δt = 0.05) → x = (1.10025, 10.01)
    /// update(z₁ = (1.0, 10.5))    → x = (1.1002803921026938, 10.01121569469008)
    /// predict(a = 0.5, Δt = 0.1)  → x = (2.103901961571702, 10.06121569469008)
    /// update(z₂ = (2.1, 10.8))    → x = (2.104493963620591, 10.070328392211479)
    /// ```
    ///
    /// evaluated step by step with the scalar closed forms of the predict
    /// and Joseph-form update equations (independently of `KalmanFilter`).
    #[test]
    fn rollback_replay_matches_hand_computed_two_step_trace() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 0.0, 0.0);
        tf.on_measurement(&Measurement::new(1, 0.1, 1.0, 10.5, 0.5));
        tf.on_measurement(&Measurement::new(1, 0.2, 2.1, 10.8, -0.3));
        // Delayed exact message about t = 0.05, older than both records:
        // roll back, pin, replay the two retained measurements.
        tf.on_message(&Message::new(1, 0.05, 0.6, 10.0, 0.2));

        assert!((tf.last_time() - 0.2).abs() < 1e-12);
        assert!((tf.last_accel() - (-0.3)).abs() < 1e-12);

        let (x, p) = tf.predicted(0.2);
        assert!((x.x - 2.104_493_963_620_591).abs() < 1e-9, "x.x = {}", x.x);
        assert!((x.y - 10.070_328_392_211_479).abs() < 1e-9, "x.y = {}", x.y);
        assert!(
            (p.a - 2.110_444_163_483_168_5e-5).abs() < 1e-9,
            "p.a = {}",
            p.a
        );
        assert!(
            (p.b - 2.672_178_653_468_012e-4).abs() < 1e-9,
            "p.b = {}",
            p.b
        );
        assert!((p.c - p.b).abs() < 1e-15, "P must stay symmetric");
        assert!(
            (p.d - 4.112_984_659_349_492_6e-3).abs() < 1e-9,
            "p.d = {}",
            p.d
        );

        // Extrapolating past the replay uses the last replayed accel
        // (−0.3): one more hand-computed prediction step to t = 0.25.
        let (xe, _) = tf.predicted(0.25);
        assert!(
            (xe.x - 2.607_635_383_231_165_2).abs() < 1e-9,
            "xe.x = {}",
            xe.x
        );
        assert!(
            (xe.y - 10.055_328_392_211_479).abs() < 1e-9,
            "xe.y = {}",
            xe.y
        );
    }

    #[test]
    fn out_of_order_measurement_is_ignored() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 0.0, 5.0);
        tf.on_measurement(&Measurement::new(1, 0.5, 2.5, 5.0, 0.0));
        let before = tf.predicted(0.5);
        tf.on_measurement(&Measurement::new(1, 0.2, 999.0, 99.0, 0.0));
        assert_eq!(tf.predicted(0.5), before);
    }

    /// Platoon invariant: per-pair filters are fully independent. A pair's
    /// posterior is a function of *its own* event stream alone — starving
    /// or flooding a neighbouring pair's filter (a stalled V2V channel, a
    /// rollback storm) must leave it bit-identical. The platoon episode
    /// loop relies on this to keep one disturbed channel from perturbing
    /// the other pairs' interval estimates.
    #[test]
    fn per_pair_filters_are_bitwise_independent() {
        let stream_for = |id: usize| {
            let mut rng = SplitMix64::seed_from_u64(100 + id as u64);
            let mut events = Vec::new();
            for i in 1..=40 {
                let t = i as f64 * 0.1;
                events.push(Measurement::new(
                    id,
                    t,
                    10.0 * t + rng.random_range(-1.0..1.0),
                    10.0 + rng.random_range(-1.0..1.0),
                    0.0,
                ));
            }
            events
        };

        // Run 1: pair 0 alone.
        let mut solo = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 52.0, 10.0);
        for m in stream_for(1) {
            solo.on_measurement(&m);
        }

        // Run 2: pair 0 next to a heavily disturbed pair 1 — interleaved
        // measurements plus delayed-message rollbacks on pair 1 only.
        let mut pair0 = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 52.0, 10.0);
        let mut pair1 = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 61.0, 10.0);
        for (m0, m1) in stream_for(1).iter().zip(stream_for(2).iter()) {
            pair0.on_measurement(m0);
            pair1.on_measurement(m1);
            // Pair 1's channel is a mess: every event triggers a stale
            // rollback replay. Pair 0 never sees any of it.
            pair1.on_message(&Message::new(2, m1.stamp - 0.25, 9.0 * m1.stamp, 9.5, 0.1));
        }
        assert_eq!(solo, pair0, "a neighbour's channel leaked into pair 0");
        let (a, pa) = solo.predicted(4.5);
        let (b, pb) = pair0.predicted(4.5);
        assert_eq!(
            (a.x.to_bits(), a.y.to_bits()),
            (b.x.to_bits(), b.y.to_bits())
        );
        assert_eq!(pa, pb);
    }

    #[test]
    fn history_is_bounded() {
        let mut tf = TrackingFilter::new(SensorNoise::uniform(1.0), 0.0, 0.0, 5.0);
        for i in 1..=1000 {
            tf.on_measurement(&Measurement::new(1, i as f64 * 0.1, 0.0, 5.0, 0.0));
        }
        assert!(tf.history.len() <= TrackingFilter::DEFAULT_MAX_HISTORY);
    }
}
