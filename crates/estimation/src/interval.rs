/// A closed real interval `[lo, hi]`.
///
/// Intervals are the currency of the information filter: hard bounds from
/// sensor noise (`±δ`), reachable sets from stale messages (paper Eq. 2) and
/// `k·σ` confidence bands from the Kalman filter are all intervals, joined by
/// intersection ("the joined estimation is
/// `[max(p₁, p₃), min(p₂, p₄)]`", paper §III-B).
///
/// Invariant: `lo ≤ hi`, both finite. Constructors enforce it.
///
/// # Example
///
/// ```
/// use cv_estimation::Interval;
///
/// let reach = Interval::new(18.0, 26.0);
/// let sensed = Interval::new(22.0, 30.0);
/// let joined = reach.intersect(&sensed).expect("both contain the truth");
/// assert_eq!(joined, Interval::new(22.0, 26.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        Self::try_new(lo, hi).unwrap_or_else(|| panic!("invalid interval [{lo}, {hi}]"))
    }

    /// Creates `[lo, hi]`, returning `None` if the bounds are invalid.
    pub fn try_new(lo: f64, hi: f64) -> Option<Self> {
        if lo.is_finite() && hi.is_finite() && lo <= hi {
            Some(Self { lo, hi })
        } else {
            None
        }
    }

    /// The degenerate interval `[x, x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// `[x − r, x + r]`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0` or the bounds are not finite.
    pub fn centered(x: f64, r: f64) -> Self {
        assert!(r >= 0.0, "radius must be nonnegative, got {r}");
        Self::new(x - r, x + r)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi) / 2`.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns `true` if `x ∈ [lo, hi]`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Returns `true` if `other ⊆ self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns `true` if the two intervals share at least one point.
    ///
    /// This is the window-overlap test of the unsafe set (paper Eq. 6):
    /// `[τ_0,min, τ_0,max] ∩ [τ_1,min, τ_1,max] ≠ ∅`.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        Interval::try_new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Smallest interval containing both (the interval hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widens both ends by `margin ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 0`.
    pub fn expand(&self, margin: f64) -> Interval {
        assert!(margin >= 0.0, "margin must be nonnegative, got {margin}");
        Interval {
            lo: self.lo - margin,
            hi: self.hi + margin,
        }
    }

    /// Translates both ends by `offset`.
    pub fn translate(&self, offset: f64) -> Interval {
        Interval {
            lo: self.lo + offset,
            hi: self.hi + offset,
        }
    }

    /// Clamps `x` into the interval.
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Minkowski sum `[a+c, b+d]`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Scales by `k` (flipping bounds when `k < 0`).
    pub fn scale(&self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval {
                lo: self.lo * k,
                hi: self.hi * k,
            }
        } else {
            Interval {
                lo: self.hi * k,
                hi: self.lo * k,
            }
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval::add(&self, &rhs)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_enforces_invariant() {
        assert!(Interval::try_new(1.0, 0.0).is_none());
        assert!(Interval::try_new(f64::NAN, 0.0).is_none());
        assert!(Interval::try_new(0.0, f64::INFINITY).is_none());
        assert!(Interval::try_new(0.0, 0.0).is_some());
    }

    #[test]
    #[should_panic]
    fn new_panics_on_inverted_bounds() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn basic_queries() {
        let i = Interval::new(-1.0, 3.0);
        assert_eq!(i.width(), 4.0);
        assert_eq!(i.midpoint(), 1.0);
        assert!(i.contains(-1.0));
        assert!(i.contains(3.0));
        assert!(!i.contains(3.1));
        assert_eq!(i.clamp(10.0), 3.0);
        assert_eq!(i.clamp(-10.0), -1.0);
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        let c = Interval::new(2.5, 4.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersect(&c), None);
        // Touching at a point counts as overlap (closed intervals).
        assert!(a.overlaps(&Interval::new(2.0, 5.0)));
    }

    #[test]
    fn scale_flips_on_negative() {
        let i = Interval::new(1.0, 2.0);
        assert_eq!(i.scale(-1.0), Interval::new(-2.0, -1.0));
        assert_eq!(i.scale(2.0), Interval::new(2.0, 4.0));
    }

    cv_rng::props! {        fn intersect_is_subset_of_both(
            a in -100.0..100.0f64, w1 in 0.0..50.0f64,
            b in -100.0..100.0f64, w2 in 0.0..50.0f64,
        ) {
            let x = Interval::new(a, a + w1);
            let y = Interval::new(b, b + w2);
            if let Some(i) = x.intersect(&y) {
                assert!(x.contains_interval(&i));
                assert!(y.contains_interval(&i));
            } else {
                assert!(!x.overlaps(&y));
            }
        }
        fn hull_contains_both(
            a in -100.0..100.0f64, w1 in 0.0..50.0f64,
            b in -100.0..100.0f64, w2 in 0.0..50.0f64,
        ) {
            let x = Interval::new(a, a + w1);
            let y = Interval::new(b, b + w2);
            let h = x.hull(&y);
            assert!(h.contains_interval(&x));
            assert!(h.contains_interval(&y));
        }
        fn overlap_iff_intersection_exists(
            a in -100.0..100.0f64, w1 in 0.0..50.0f64,
            b in -100.0..100.0f64, w2 in 0.0..50.0f64,
        ) {
            let x = Interval::new(a, a + w1);
            let y = Interval::new(b, b + w2);
            assert_eq!(x.overlaps(&y), x.intersect(&y).is_some());
        }
        fn minkowski_sum_contains_pointwise_sums(
            a in -100.0..100.0f64, w1 in 0.0..50.0f64,
            b in -100.0..100.0f64, w2 in 0.0..50.0f64,
            t1 in 0.0..1.0f64, t2 in 0.0..1.0f64,
        ) {
            let x = Interval::new(a, a + w1);
            let y = Interval::new(b, b + w2);
            let px = x.lo() + t1 * x.width();
            let py = y.lo() + t2 * y.width();
            assert!((x + y).contains(px + py));
        }
        fn expand_then_contains(
            a in -100.0..100.0f64, w in 0.0..50.0f64, m in 0.0..10.0f64,
        ) {
            let x = Interval::new(a, a + w);
            assert!(x.expand(m).contains_interval(&x));
        }
    }
}
