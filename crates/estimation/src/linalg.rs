/// A 2-vector, used for the `(position, velocity)` state of the Kalman filter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// First component (position).
    pub x: f64,
    /// Second component (velocity).
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector from its components.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }

    /// Component-wise subtraction.
    pub fn sub(&self, other: &Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }

    /// Scalar multiplication.
    pub fn scale(&self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::add(&self, &rhs)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::sub(&self, &rhs)
    }
}

/// A 2×2 matrix in row-major order, used for the Kalman covariance and the
/// state-transition matrix `F` of paper §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row 0, column 0.
    pub a: f64,
    /// Row 0, column 1.
    pub b: f64,
    /// Row 1, column 0.
    pub c: f64,
    /// Row 1, column 1.
    pub d: f64,
}

impl Mat2 {
    /// Creates `[[a, b], [c, d]]`.
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Self { a, b, c, d }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        Self::new(1.0, 0.0, 0.0, 1.0)
    }

    /// The zero matrix.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Diagonal matrix `diag(a, d)`.
    pub fn diag(a: f64, d: f64) -> Self {
        Self::new(a, 0.0, 0.0, d)
    }

    /// Matrix-matrix product `self · other`.
    pub fn mul(&self, other: &Mat2) -> Mat2 {
        Mat2::new(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
        )
    }

    /// Matrix-vector product `self · v`.
    pub fn mul_vec(&self, v: &Vec2) -> Vec2 {
        Vec2::new(self.a * v.x + self.b * v.y, self.c * v.x + self.d * v.y)
    }

    /// Component-wise addition.
    pub fn add(&self, other: &Mat2) -> Mat2 {
        Mat2::new(
            self.a + other.a,
            self.b + other.b,
            self.c + other.c,
            self.d + other.d,
        )
    }

    /// Component-wise subtraction.
    pub fn sub(&self, other: &Mat2) -> Mat2 {
        Mat2::new(
            self.a - other.a,
            self.b - other.b,
            self.c - other.c,
            self.d - other.d,
        )
    }

    /// Scalar multiplication.
    pub fn scale(&self, k: f64) -> Mat2 {
        Mat2::new(self.a * k, self.b * k, self.c * k, self.d * k)
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat2 {
        Mat2::new(self.a, self.c, self.b, self.d)
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        self.a + self.d
    }

    /// Inverse, or `None` if (numerically) singular.
    pub fn inverse(&self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() < 1e-300 || !det.is_finite() {
            return None;
        }
        Some(Mat2::new(
            self.d / det,
            -self.b / det,
            -self.c / det,
            self.a / det,
        ))
    }

    /// Returns `true` if the matrix is symmetric positive semi-definite
    /// within tolerance `tol` (symmetry, nonnegative diagonal, nonnegative
    /// determinant). Used to validate Kalman covariances in tests.
    pub fn is_psd(&self, tol: f64) -> bool {
        (self.b - self.c).abs() <= tol.max(1e-9 * self.trace().abs())
            && self.a >= -tol
            && self.d >= -tol
            && self.det() >= -tol * (1.0 + self.trace().abs())
    }
}

impl std::ops::Add for Mat2 {
    type Output = Mat2;
    fn add(self, rhs: Mat2) -> Mat2 {
        Mat2::add(&self, &rhs)
    }
}

impl std::ops::Sub for Mat2 {
    type Output = Mat2;
    fn sub(self, rhs: Mat2) -> Mat2 {
        Mat2::sub(&self, &rhs)
    }
}

impl std::ops::Mul for Mat2 {
    type Output = Mat2;
    fn mul(self, rhs: Mat2) -> Mat2 {
        Mat2::mul(&self, &rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(m.mul(&Mat2::identity()), m);
        assert_eq!(Mat2::identity().mul(&m), m);
    }

    #[test]
    fn inverse_of_known_matrix() {
        let m = Mat2::new(4.0, 7.0, 2.0, 6.0);
        let inv = m.inverse().unwrap();
        let id = m.mul(&inv);
        assert!((id.a - 1.0).abs() < 1e-12);
        assert!(id.b.abs() < 1e-12);
        assert!(id.c.abs() < 1e-12);
        assert!((id.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        assert!(Mat2::new(1.0, 2.0, 2.0, 4.0).inverse().is_none());
        assert!(Mat2::zero().inverse().is_none());
    }

    #[test]
    fn psd_checks() {
        assert!(Mat2::diag(1.0, 2.0).is_psd(1e-12));
        assert!(Mat2::zero().is_psd(1e-12));
        assert!(!Mat2::diag(-1.0, 2.0).is_psd(1e-12));
        assert!(!Mat2::new(1.0, 5.0, 5.0, 1.0).is_psd(1e-12)); // det < 0
    }

    cv_rng::props! {        fn inverse_roundtrip(
            a in -10.0..10.0f64, b in -10.0..10.0f64,
            c in -10.0..10.0f64, d in -10.0..10.0f64,
        ) {
            let m = Mat2::new(a, b, c, d);
            if m.det().abs() <= 1e-6 { continue; }
            let inv = m.inverse().unwrap();
            let id = m.mul(&inv);
            assert!((id.a - 1.0).abs() < 1e-6);
            assert!(id.b.abs() < 1e-6);
            assert!(id.c.abs() < 1e-6);
            assert!((id.d - 1.0).abs() < 1e-6);
        }
        fn transpose_reverses_product(
            a in -10.0..10.0f64, b in -10.0..10.0f64,
            c in -10.0..10.0f64, d in -10.0..10.0f64,
            e in -10.0..10.0f64, f in -10.0..10.0f64,
            g in -10.0..10.0f64, h in -10.0..10.0f64,
        ) {
            let m = Mat2::new(a, b, c, d);
            let n = Mat2::new(e, f, g, h);
            let lhs = m.mul(&n).transpose();
            let rhs = n.transpose().mul(&m.transpose());
            assert!((lhs.a - rhs.a).abs() < 1e-9);
            assert!((lhs.b - rhs.b).abs() < 1e-9);
            assert!((lhs.c - rhs.c).abs() < 1e-9);
            assert!((lhs.d - rhs.d).abs() < 1e-9);
        }
        fn det_is_multiplicative(
            a in -5.0..5.0f64, b in -5.0..5.0f64,
            c in -5.0..5.0f64, d in -5.0..5.0f64,
            e in -5.0..5.0f64, f in -5.0..5.0f64,
            g in -5.0..5.0f64, h in -5.0..5.0f64,
        ) {
            let m = Mat2::new(a, b, c, d);
            let n = Mat2::new(e, f, g, h);
            assert!((m.mul(&n).det() - m.det() * n.det()).abs() < 1e-6);
        }
    }
}
