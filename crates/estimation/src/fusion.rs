use cv_comm::Message;
use cv_dynamics::{VehicleLimits, VehicleState};
use cv_sensing::{Measurement, SensorNoise};

use crate::{reachability, Estimator, Interval, TrackingFilter, VehicleEstimate};

/// How much processing the information filter applies (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// Hard bounds only: reachability over the latest message and the
    /// noise-bound-widened latest measurement, joined by intersection.
    /// This is what the *basic* compound planner uses — sound but loose.
    HardOnly,
    /// Hard bounds for the intervals, with a Kalman tracker (including the
    /// paper's message rollback) providing a sharp *nominal* state. This is
    /// the information filter of the *ultimate* compound planner.
    ///
    /// Design note: the paper intersects the Kalman band into the estimate
    /// handed to the runtime monitor. A `k·σ` band is statistical, not
    /// sound, and we found it can (rarely) exclude the truth and defeat the
    /// shield, so here the monitor-facing intervals stay hard and the Kalman
    /// output only sharpens the nominal state that drives the *aggressive*
    /// window — which is exactly the part of the pipeline that is allowed
    /// to be unsound (paper Section III-C). See `DESIGN.md` §3.
    Fused,
}

/// Prior knowledge about a tracked vehicle before any message/measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prior {
    /// Time of the prior.
    pub time: f64,
    /// Prior position bound (target's forward frame).
    pub position: Interval,
    /// Prior velocity bound.
    pub velocity: Interval,
}

impl Prior {
    /// An exact prior at the target's known initial state.
    pub fn exact(time: f64, position: f64, velocity: f64) -> Self {
        Self {
            time,
            position: Interval::point(position),
            velocity: Interval::point(velocity),
        }
    }
}

/// The paper's information filter for one remote vehicle.
///
/// Fuses three sources into a [`VehicleEstimate`]:
///
/// 1. **Prior** — propagated by reachability from `t₀`.
/// 2. **Latest message** (exact, stale) — propagated by reachability
///    (paper Eq. 2).
/// 3. **Latest measurement** (bounded noise, fresh) — widened by `±δ` and
///    propagated by reachability.
///
/// The hard bound is their intersection. In [`FilterMode::Fused`] a
/// [`TrackingFilter`] (Kalman + message rollback) additionally provides the
/// nominal state (its mean, clamped into the hard bound); the `k·σ` band is
/// exposed for diagnostics via [`InformationFilter::kalman_position_band`].
///
/// # Example
///
/// ```
/// use cv_estimation::{Estimator, FilterMode, InformationFilter, Prior};
/// use cv_dynamics::VehicleLimits;
/// use cv_sensing::SensorNoise;
/// use cv_comm::Message;
///
/// let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0)?;
/// let mut filt = InformationFilter::new(
///     limits,
///     SensorNoise::uniform(1.0),
///     FilterMode::Fused,
///     Prior::exact(0.0, 0.0, 10.0),
/// );
/// filt.on_message(&Message::new(1, 0.0, 0.0, 10.0, 0.0));
/// let est = filt.estimate(0.5);
/// assert!(est.position.contains(5.0)); // constant speed is reachable
/// # Ok::<(), cv_dynamics::LimitsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InformationFilter {
    limits: VehicleLimits,
    noise: SensorNoise,
    mode: FilterMode,
    prior: Prior,
    last_msg: Option<Message>,
    last_meas: Option<Measurement>,
    tracker: Option<TrackingFilter>,
    k_sigma: f64,
}

impl InformationFilter {
    /// Default Kalman confidence band half-width, in standard deviations.
    pub const DEFAULT_K_SIGMA: f64 = 3.0;

    /// Creates a filter for a vehicle with physical `limits`, sensed with
    /// `noise`, starting from `prior`.
    pub fn new(limits: VehicleLimits, noise: SensorNoise, mode: FilterMode, prior: Prior) -> Self {
        Self {
            limits,
            noise,
            mode,
            prior,
            last_msg: None,
            last_meas: None,
            tracker: None,
            k_sigma: Self::DEFAULT_K_SIGMA,
        }
    }

    /// Overrides the Kalman confidence band width (`k` in `k·σ`).
    ///
    /// # Panics
    ///
    /// Panics if `k_sigma <= 0`.
    pub fn with_k_sigma(mut self, k_sigma: f64) -> Self {
        assert!(k_sigma > 0.0, "k_sigma must be positive, got {k_sigma}");
        self.k_sigma = k_sigma;
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> FilterMode {
        self.mode
    }

    /// Latest message seen, if any.
    pub fn last_message(&self) -> Option<&Message> {
        self.last_msg.as_ref()
    }

    /// Process-noise acceleration variance matched to the target's physical
    /// acceleration range (uniform over `[a_min, a_max]`), which dominates
    /// the sensor's `δ_a` for freely driven vehicles.
    fn process_accel_var(&self) -> f64 {
        let half_range = 0.5 * (self.limits.a_max() - self.limits.a_min());
        let range_var = half_range * half_range / 3.0;
        range_var.max(SensorNoise::variance(self.noise.delta_a))
    }

    fn new_tracker(&self, t0: f64, position: f64, velocity: f64) -> TrackingFilter {
        TrackingFilter::new(self.noise, t0, position, velocity)
            .with_process_accel_var(self.process_accel_var())
    }

    /// The Kalman tracker's `k·σ` position band at `now`, if a tracker is
    /// active (diagnostics; not used by the monitor — see [`FilterMode`]).
    pub fn kalman_position_band(&self, now: f64) -> Option<Interval> {
        self.tracker
            .as_ref()
            .map(|t| t.position_interval(now, self.k_sigma))
    }

    /// The Kalman tracker's `k·σ` velocity band at `now`, if a tracker is
    /// active.
    pub fn kalman_velocity_band(&self, now: f64) -> Option<Interval> {
        self.tracker
            .as_ref()
            .map(|t| t.velocity_interval(now, self.k_sigma))
    }

    fn hard_position_velocity(&self, now: f64) -> (Interval, Interval) {
        // Intersect the candidate reach sets as they are produced — same
        // order as before (prior, message, measurement), no per-call Vec:
        // this runs every control step of every episode.
        let prior = reachability::reach(
            self.prior.position,
            clamp_velocity_interval(self.prior.velocity, &self.limits),
            (now - self.prior.time).max(0.0),
            &self.limits,
        );
        let mut p = prior.position;
        let mut v = prior.velocity;
        // The truth lies in every candidate, so the intersection is
        // nonempty up to floating-point noise; fall back to the tighter
        // candidate if rounding makes them disjoint.
        let refine = |p: &mut Interval, v: &mut Interval, c: reachability::ReachSet| {
            *p = p
                .intersect(&c.position)
                .unwrap_or_else(|| tighter(*p, c.position));
            *v = v
                .intersect(&c.velocity)
                .unwrap_or_else(|| tighter(*v, c.velocity));
        };
        if let Some(msg) = &self.last_msg {
            refine(
                &mut p,
                &mut v,
                reachability::reach(
                    Interval::point(msg.position),
                    clamp_velocity_interval(Interval::point(msg.velocity), &self.limits),
                    (now - msg.stamp).max(0.0),
                    &self.limits,
                ),
            );
        }
        if let Some(m) = &self.last_meas {
            let mp = Interval::centered(m.position, self.noise.delta_p);
            let mv = clamp_velocity_interval(
                Interval::centered(m.velocity, self.noise.delta_v),
                &self.limits,
            );
            refine(
                &mut p,
                &mut v,
                reachability::reach(mp, mv, (now - m.stamp).max(0.0), &self.limits),
            );
        }
        // Guard against the ~1 ulp discrepancy between the closed-form
        // reachability bound and the step-wise simulated integrator.
        (p.expand(1e-9), v.expand(1e-9))
    }

    fn accel_bound(&self) -> Interval {
        let a_range = Interval::new(self.limits.a_min(), self.limits.a_max());
        let from_msg = self
            .last_msg
            .as_ref()
            .map(|m| (m.stamp, Interval::point(m.acceleration)));
        let from_meas = self.last_meas.as_ref().map(|m| {
            (
                m.stamp,
                Interval::centered(m.acceleration, self.noise.delta_a),
            )
        });
        let latest = match (from_msg, from_meas) {
            (Some((t1, a1)), Some((t2, a2))) => Some(if t1 >= t2 { a1 } else { a2 }),
            (Some((_, a)), None) | (None, Some((_, a))) => Some(a),
            (None, None) => None,
        };
        match latest {
            Some(a) => a.intersect(&a_range).unwrap_or(a_range),
            None => a_range,
        }
    }
}

fn clamp_velocity_interval(v: Interval, limits: &VehicleLimits) -> Interval {
    let physical = Interval::new(limits.v_min(), limits.v_max());
    v.intersect(&physical).unwrap_or_else(|| {
        // Measurement noise pushed the whole interval out of range; snap to
        // the nearest physical bound.
        if v.hi() < physical.lo() {
            Interval::point(physical.lo())
        } else {
            Interval::point(physical.hi())
        }
    })
}

fn tighter(a: Interval, b: Interval) -> Interval {
    if a.width() <= b.width() {
        a
    } else {
        b
    }
}

impl Estimator for InformationFilter {
    fn on_message(&mut self, msg: &Message) {
        let newer = self.last_msg.is_none_or(|m| msg.stamp > m.stamp);
        if newer {
            self.last_msg = Some(*msg);
        }
        if self.mode == FilterMode::Fused {
            match &mut self.tracker {
                Some(t) => t.on_message(msg),
                None => {
                    let mut t = self.new_tracker(msg.stamp, msg.position, msg.velocity);
                    t.on_message(msg);
                    self.tracker = Some(t);
                }
            }
        }
    }

    fn on_measurement(&mut self, m: &Measurement) {
        let newer = self.last_meas.is_none_or(|prev| m.stamp >= prev.stamp);
        if newer {
            self.last_meas = Some(*m);
        }
        if self.mode == FilterMode::Fused {
            match &mut self.tracker {
                Some(t) => t.on_measurement(m),
                None => {
                    let mut t = self.new_tracker(m.stamp, m.position, m.velocity);
                    t.on_measurement(m);
                    self.tracker = Some(t);
                }
            }
        }
    }

    fn estimate(&self, now: f64) -> VehicleEstimate {
        let (hard_p, hard_v) = self.hard_position_velocity(now);
        let accel = self.accel_bound();
        match (&self.tracker, self.mode) {
            (Some(t), FilterMode::Fused) => {
                // Monitor-facing intervals stay hard (sound); the Kalman
                // mean sharpens only the nominal state.
                let (mean, _) = t.predicted(now);
                VehicleEstimate {
                    time: now,
                    position: hard_p,
                    velocity: hard_v,
                    acceleration: accel,
                    nominal: VehicleState::new(
                        hard_p.clamp(mean.x),
                        hard_v.clamp(mean.y),
                        accel.clamp(t.last_accel()),
                    ),
                }
            }
            _ => VehicleEstimate {
                time: now,
                position: hard_p,
                velocity: hard_v,
                acceleration: accel,
                nominal: VehicleState::new(hard_p.midpoint(), hard_v.midpoint(), accel.midpoint()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_rng::{Rng, SplitMix64};

    fn limits() -> VehicleLimits {
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).unwrap()
    }

    fn filter(mode: FilterMode) -> InformationFilter {
        InformationFilter::new(
            limits(),
            SensorNoise::uniform(1.0),
            mode,
            Prior::exact(0.0, 0.0, 10.0),
        )
    }

    #[test]
    fn prior_only_estimate_grows_with_time() {
        let f = filter(FilterMode::HardOnly);
        let e1 = f.estimate(0.5);
        let e2 = f.estimate(1.0);
        assert!(e2.uncertainty() > e1.uncertainty());
        assert!(e1.position.contains(5.0)); // constant 10 m/s
    }

    #[test]
    fn message_tightens_estimate() {
        let mut f = filter(FilterMode::HardOnly);
        let loose = f.estimate(2.0).uncertainty();
        f.on_message(&Message::new(1, 1.8, 18.0, 10.0, 0.0));
        let tight = f.estimate(2.0).uncertainty();
        assert!(tight < loose);
    }

    #[test]
    fn measurement_tightens_estimate() {
        let mut f = filter(FilterMode::HardOnly);
        let loose = f.estimate(2.0).uncertainty();
        f.on_measurement(&Measurement::new(1, 2.0, 20.0, 10.0, 0.0));
        let tight = f.estimate(2.0).uncertainty();
        assert!(tight < loose);
        // Fresh measurement: position bound is ± δ_p.
        assert!((f.estimate(2.0).position.width() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fused_mode_is_at_least_as_tight_as_hard_only() {
        let mut hard = filter(FilterMode::HardOnly);
        let mut fused = filter(FilterMode::Fused);
        let mut rng = SplitMix64::seed_from_u64(5);
        let lim = limits();
        let mut truth = cv_dynamics::VehicleState::new(0.0, 10.0, 0.0);
        for i in 1..=30 {
            let t = i as f64 * 0.1;
            truth = lim.step(&truth, rng.random_range(-2.0..2.0), 0.1);
            let meas = Measurement::new(
                1,
                t,
                truth.position + rng.random_range(-1.0..1.0),
                truth.velocity + rng.random_range(-1.0..1.0),
                truth.acceleration + rng.random_range(-1.0..1.0),
            );
            hard.on_measurement(&meas);
            fused.on_measurement(&meas);
        }
        let now = 3.2; // a little after the last measurement
        let eh = hard.estimate(now);
        let ef = fused.estimate(now);
        assert!(ef.uncertainty() <= eh.uncertainty() + 1e-9);
        // Both must remain sound at the measurement times they saw.
        assert!(eh.position.lo() <= truth.position + lim.v_max() * 0.2);
    }

    /// Soundness: under random driving, messages, and measurements, the hard
    /// estimate always contains the true state.
    #[test]
    fn hard_estimate_always_contains_truth() {
        let lim = limits();
        let dt = 0.05;
        for seed in 0..20u64 {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let mut truth = cv_dynamics::VehicleState::new(0.0, rng.random_range(3.0..14.0), 0.0);
            let mut f = InformationFilter::new(
                lim,
                SensorNoise::uniform(2.0),
                FilterMode::HardOnly,
                Prior::exact(0.0, truth.position, truth.velocity),
            );
            for i in 1..=100 {
                let t = i as f64 * dt;
                truth = lim.step(&truth, rng.random_range(-3.0..3.0), dt);
                // Message every 0.25 s, delayed but exact; measurement every 0.1 s.
                if i % 5 == 0 {
                    f.on_message(&Message::from_state(1, t, &truth));
                }
                if i % 2 == 0 {
                    f.on_measurement(&Measurement::new(
                        1,
                        t,
                        truth.position + rng.random_range(-2.0..2.0),
                        truth.velocity + rng.random_range(-2.0..2.0),
                        truth.acceleration + rng.random_range(-2.0..2.0),
                    ));
                }
                let est = f.estimate(t);
                assert!(
                    est.consistent_with(&truth),
                    "seed {seed} step {i}: truth {truth} not in p={} v={}",
                    est.position,
                    est.velocity
                );
            }
        }
    }

    #[test]
    fn nominal_stays_inside_intervals() {
        let mut f = filter(FilterMode::Fused);
        f.on_measurement(&Measurement::new(1, 0.1, 1.0, 10.0, 0.0));
        f.on_message(&Message::new(1, 0.05, 0.5, 10.0, 0.0));
        let e = f.estimate(0.3);
        assert!(e.position.contains(e.nominal.position));
        assert!(e.velocity.contains(e.nominal.velocity));
    }
}
