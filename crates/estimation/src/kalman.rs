use cv_sensing::SensorNoise;

use crate::{Interval, Mat2, Vec2};

/// Kalman filter over the `(position, velocity)` state of one tracked
/// vehicle, following the equations of paper §III-B (after [16]):
///
/// ```text
/// x̂(t+Δt, t) = F x̂(t,t) + G a(t)
/// P(t+Δt, t) = F P(t,t) Fᵀ + Q
/// K(t)       = P(t, t−Δt) (P(t, t−Δt) + R)⁻¹
/// x̂(t,t)     = x̂(t, t−Δt) + K(t) (z(t) − x̂(t, t−Δt))
/// P(t,t)     = (I − K) P (I − K)ᵀ + K R Kᵀ        (Joseph form)
/// ```
///
/// with `F = [[1, Δt], [0, 1]]`, `G = [½Δt², Δt]ᵀ`,
/// `Q = [[¼Δt⁴, ½Δt³], [½Δt³, Δt²]] · δ_a²/3` and
/// `R = diag(δ_p²/3, δ_v²/3)` — the `δ²/3` terms being the variances of the
/// bounded uniform noise of `cv-sensing`.
///
/// The measurement model is full-state (`H = I`): the sensor reports both
/// position and velocity.
///
/// # Example
///
/// ```
/// use cv_estimation::{KalmanFilter, Vec2, Mat2};
/// use cv_sensing::SensorNoise;
///
/// let mut kf = KalmanFilter::new(SensorNoise::uniform(1.0), Vec2::new(0.0, 5.0), Mat2::diag(4.0, 4.0));
/// kf.predict(0.0, 0.1);                  // extrapolate 0.1 s at a = 0
/// kf.update(Vec2::new(0.52, 5.1));       // noisy measurement
/// assert!(kf.covariance().a < 4.0);      // uncertainty shrank
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    noise: SensorNoise,
    process_accel_var: f64,
    x: Vec2,
    p: Mat2,
}

impl KalmanFilter {
    /// Creates a filter with measurement-noise bounds `noise`, initial state
    /// estimate `x0` and initial covariance `p0`.
    ///
    /// The process noise defaults to the paper's `Q` (driven by the sensor's
    /// `δ_a²/3`); when the tracked vehicle's *actual* acceleration varies
    /// more than the sensor uncertainty — e.g. the random driving of the
    /// experiments, `a ∈ [−3, 3]` resampled every step — use
    /// [`KalmanFilter::with_process_accel_var`] to avoid an overconfident
    /// covariance.
    ///
    /// # Panics
    ///
    /// Panics if `p0` is not symmetric positive semi-definite.
    pub fn new(noise: SensorNoise, x0: Vec2, p0: Mat2) -> Self {
        assert!(p0.is_psd(1e-9), "initial covariance must be PSD: {p0:?}");
        Self {
            noise,
            process_accel_var: SensorNoise::variance(noise.delta_a),
            x: x0,
            p: p0,
        }
    }

    /// Overrides the process-noise acceleration variance (m²/s⁴).
    ///
    /// # Panics
    ///
    /// Panics if `var` is negative or non-finite.
    pub fn with_process_accel_var(mut self, var: f64) -> Self {
        assert!(
            var >= 0.0 && var.is_finite(),
            "invalid process variance {var}"
        );
        self.process_accel_var = var;
        self
    }

    /// Current state estimate `x̂`.
    pub fn state(&self) -> Vec2 {
        self.x
    }

    /// Current covariance `P`.
    pub fn covariance(&self) -> Mat2 {
        self.p
    }

    /// The configured measurement-noise bounds.
    pub fn noise(&self) -> SensorNoise {
        self.noise
    }

    /// Process-noise matrix `Q(Δt)` for acceleration variance `var_a`.
    fn process_noise(dt: f64, var_a: f64) -> Mat2 {
        Mat2::new(
            0.25 * dt.powi(4),
            0.5 * dt.powi(3),
            0.5 * dt.powi(3),
            dt * dt,
        )
        .scale(var_a.max(1e-9))
    }

    /// Measurement-noise matrix `R`.
    fn measurement_noise(&self) -> Mat2 {
        Mat2::diag(
            SensorNoise::variance(self.noise.delta_p).max(1e-9),
            SensorNoise::variance(self.noise.delta_v).max(1e-9),
        )
    }

    /// Extrapolates the estimate by `dt` seconds under measured acceleration
    /// `accel` (the `a_s(t)` input of the paper's prediction step).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dt < 0`.
    pub fn predict(&mut self, accel: f64, dt: f64) {
        debug_assert!(dt >= 0.0, "dt must be nonnegative, got {dt}");
        if dt == 0.0 {
            return;
        }
        let f = Mat2::new(1.0, dt, 0.0, 1.0);
        let g = Vec2::new(0.5 * dt * dt, dt);
        self.x = f.mul_vec(&self.x) + g.scale(accel);
        self.p =
            f.mul(&self.p).mul(&f.transpose()) + Self::process_noise(dt, self.process_accel_var);
    }

    /// Incorporates a full-state measurement `z = (p_s, v_s)` using the
    /// Joseph-form covariance update (numerically stable, keeps `P` PSD).
    pub fn update(&mut self, z: Vec2) {
        let r = self.measurement_noise();
        let s = self.p + r;
        let Some(s_inv) = s.inverse() else {
            // Degenerate only if both P and R vanish; keep the prediction.
            return;
        };
        let k = self.p.mul(&s_inv);
        let innovation = z - self.x;
        self.x = self.x + k.mul_vec(&innovation);
        let i_k = Mat2::identity() - k;
        self.p = i_k.mul(&self.p).mul(&i_k.transpose()) + k.mul(&r).mul(&k.transpose());
        // Re-symmetrise to suppress floating-point drift.
        let sym = 0.5 * (self.p.b + self.p.c);
        self.p.b = sym;
        self.p.c = sym;
    }

    /// Resets the estimate to an exact state (e.g. an authoritative V2V
    /// message payload) with a tiny covariance.
    pub fn reset_exact(&mut self, x: Vec2) {
        self.x = x;
        self.p = Mat2::diag(1e-9, 1e-9);
    }

    /// `k_sigma`-confidence interval on the position estimate.
    pub fn position_interval(&self, k_sigma: f64) -> Interval {
        Interval::centered(self.x.x, k_sigma * self.p.a.max(0.0).sqrt())
    }

    /// `k_sigma`-confidence interval on the velocity estimate.
    pub fn velocity_interval(&self, k_sigma: f64) -> Interval {
        Interval::centered(self.x.y, k_sigma * self.p.d.max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_rng::{Rng, SplitMix64};

    fn filter() -> KalmanFilter {
        KalmanFilter::new(
            SensorNoise::uniform(1.0),
            Vec2::new(0.0, 5.0),
            Mat2::diag(1.0, 1.0),
        )
    }

    #[test]
    fn predict_moves_state_forward() {
        let mut kf = filter();
        kf.predict(2.0, 0.1);
        assert!((kf.state().x - (0.5 + 0.5 * 2.0 * 0.01)).abs() < 1e-12);
        assert!((kf.state().y - 5.2).abs() < 1e-12);
    }

    #[test]
    fn predict_grows_uncertainty_update_shrinks_it() {
        let mut kf = filter();
        let p0 = kf.covariance().a;
        kf.predict(0.0, 0.5);
        let p1 = kf.covariance().a;
        assert!(p1 > p0);
        kf.update(Vec2::new(2.5, 5.0));
        let p2 = kf.covariance().a;
        assert!(p2 < p1);
    }

    #[test]
    fn covariance_stays_psd_over_long_runs() {
        let mut kf = filter();
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..5000 {
            kf.predict(rng.random_range(-3.0..3.0), 0.1);
            kf.update(Vec2::new(
                kf.state().x + rng.random_range(-1.0..1.0),
                kf.state().y + rng.random_range(-1.0..1.0),
            ));
            assert!(kf.covariance().is_psd(1e-9), "{:?}", kf.covariance());
        }
    }

    #[test]
    fn converges_on_constant_velocity_target() {
        // Track a target moving at constant 8 m/s with noisy measurements;
        // the filtered error must end up well below the raw noise bound.
        let delta = 2.0;
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut kf = KalmanFilter::new(
            SensorNoise::uniform(delta),
            Vec2::new(0.0, 6.0), // biased initial guess
            Mat2::diag(25.0, 25.0),
        );
        let dt = 0.1;
        let mut truth_p = 0.0;
        let truth_v = 8.0;
        let mut errs = Vec::new();
        for _ in 0..300 {
            kf.predict(0.0, dt);
            truth_p += truth_v * dt;
            let z = Vec2::new(
                truth_p + rng.random_range(-delta..delta),
                truth_v + rng.random_range(-delta..delta),
            );
            kf.update(z);
            errs.push((kf.state().y - truth_v).abs());
        }
        let tail_mean: f64 = errs[200..].iter().sum::<f64>() / 100.0;
        // Raw measurement RMSE is δ/√3 ≈ 1.15; the filter should do much better.
        assert!(tail_mean < 0.4, "tail velocity error {tail_mean}");
    }

    #[test]
    fn reset_exact_pins_the_estimate() {
        let mut kf = filter();
        kf.reset_exact(Vec2::new(100.0, 3.0));
        assert_eq!(kf.state(), Vec2::new(100.0, 3.0));
        assert!(kf.covariance().a < 1e-6);
        assert!(kf.position_interval(3.0).width() < 1e-3);
    }

    #[test]
    fn confidence_intervals_are_centered_on_the_mean() {
        let kf = filter();
        let pi = kf.position_interval(3.0);
        assert!((pi.midpoint() - kf.state().x).abs() < 1e-12);
        assert!((pi.width() - 6.0).abs() < 1e-12); // σ = 1, k = 3 → width 6
    }

    #[test]
    #[should_panic]
    fn non_psd_initial_covariance_panics() {
        let _ = KalmanFilter::new(
            SensorNoise::uniform(1.0),
            Vec2::zero(),
            Mat2::diag(-1.0, 1.0),
        );
    }
}
