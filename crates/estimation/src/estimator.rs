use cv_comm::Message;
use cv_dynamics::{VehicleLimits, VehicleState};
use cv_sensing::Measurement;

use crate::{Interval, VehicleEstimate};

/// Anything that turns a stream of messages and measurements into a belief
/// about one remote vehicle.
///
/// Implemented by [`crate::InformationFilter`] (the paper's filter, used by
/// the compound planners) and [`NaiveEstimator`] (what an unshielded NN
/// planner effectively does with its inputs).
pub trait Estimator {
    /// Incorporates a (possibly delayed) V2V message.
    fn on_message(&mut self, msg: &Message);

    /// Incorporates a fresh but noisy sensor measurement.
    fn on_measurement(&mut self, m: &Measurement);

    /// The belief about the remote vehicle at time `now`.
    fn estimate(&self, now: f64) -> VehicleEstimate;
}

impl<E: Estimator + ?Sized> Estimator for Box<E> {
    fn on_message(&mut self, msg: &Message) {
        (**self).on_message(msg);
    }

    fn on_measurement(&mut self, m: &Measurement) {
        (**self).on_measurement(m);
    }

    fn estimate(&self, now: f64) -> VehicleEstimate {
        (**self).estimate(now)
    }
}

/// The estimator a *pure* NN planner implicitly uses: take the latest V2V
/// message **at face value, as if it described the present** — the
/// perfect-communication assumption the paper's introduction calls out —
/// falling back to the latest raw sensor reading only when no sufficiently
/// recent message exists.
///
/// No extrapolation, no uncertainty: a planner built and trained under
/// perfect communication treats the payload `(p, v, a)` as the current
/// state. With `Δt_d` of delay the belief is consistently `v·Δt_d` metres
/// behind the truth, which is precisely why the unshielded aggressive
/// planner collides in the paper's Table II. Its estimates are point
/// intervals: precise-looking but unsound.
///
/// # Example
///
/// ```
/// use cv_estimation::{Estimator, NaiveEstimator};
/// use cv_dynamics::{VehicleLimits, VehicleState};
/// use cv_comm::Message;
///
/// let limits = VehicleLimits::new(3.0, 14.0, -3.0, 3.0)?;
/// let mut est = NaiveEstimator::new(limits, 0.0, VehicleState::new(0.0, 10.0, 0.0));
/// est.on_message(&Message::new(1, 1.0, 10.0, 10.0, 0.0));
/// // At t = 2.0 the naive belief is still the raw payload: p = 10 m.
/// let e = est.estimate(2.0);
/// assert_eq!(e.position.width(), 0.0);
/// assert!((e.nominal.position - 10.0).abs() < 1e-12);
/// # Ok::<(), cv_dynamics::LimitsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NaiveEstimator {
    limits: VehicleLimits,
    last_msg: Option<(f64, VehicleState)>,
    last_meas: Option<(f64, VehicleState)>,
    initial: (f64, VehicleState),
    max_message_staleness: f64,
}

impl NaiveEstimator {
    /// Default maximum age (s) of a message before the naive planner falls
    /// back to its sensors.
    pub const DEFAULT_MAX_STALENESS: f64 = 1.0;

    /// Creates a naive estimator with an initial belief.
    pub fn new(limits: VehicleLimits, t0: f64, initial: VehicleState) -> Self {
        Self {
            limits,
            last_msg: None,
            last_meas: None,
            initial: (t0, initial),
            max_message_staleness: Self::DEFAULT_MAX_STALENESS,
        }
    }

    /// Overrides the message-staleness threshold.
    ///
    /// # Panics
    ///
    /// Panics if `staleness` is negative.
    pub fn with_max_staleness(mut self, staleness: f64) -> Self {
        assert!(staleness >= 0.0, "staleness must be nonnegative");
        self.max_message_staleness = staleness;
        self
    }

    /// The information source the estimator would use at `now`.
    fn source(&self, now: f64) -> (f64, VehicleState) {
        match (self.last_msg, self.last_meas) {
            (Some(msg), _) if now - msg.0 <= self.max_message_staleness => msg,
            (msg, Some(meas)) => {
                // Fall back to sensing, unless the (stale) message is still
                // the freshest thing we have.
                match msg {
                    Some(m) if m.0 > meas.0 => m,
                    _ => meas,
                }
            }
            (Some(msg), None) => msg,
            (None, None) => self.initial,
        }
    }
}

impl Estimator for NaiveEstimator {
    fn on_message(&mut self, msg: &Message) {
        if self.last_msg.is_none_or(|(t, _)| msg.stamp >= t) {
            self.last_msg = Some((msg.stamp, msg.state()));
        }
    }

    fn on_measurement(&mut self, m: &Measurement) {
        if self.last_meas.is_none_or(|(t, _)| m.stamp >= t) {
            self.last_meas = Some((
                m.stamp,
                VehicleState::new(m.position, m.velocity, m.acceleration),
            ));
        }
    }

    fn estimate(&self, now: f64) -> VehicleEstimate {
        let (_stamp, s) = self.source(now);
        // Perfect-communication assumption: the payload *is* the present.
        let v = self.limits.clamp_velocity(s.velocity);
        let p = s.position;
        VehicleEstimate {
            time: now,
            position: Interval::point(p),
            velocity: Interval::point(v),
            acceleration: Interval::point(self.limits.clamp_accel(s.acceleration)),
            nominal: VehicleState::new(p, v, self.limits.clamp_accel(s.acceleration)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).unwrap()
    }

    #[test]
    fn prefers_recent_messages_over_fresh_sensing() {
        let mut e = NaiveEstimator::new(limits(), 0.0, VehicleState::new(0.0, 10.0, 0.0));
        e.on_message(&Message::new(1, 0.5, 5.0, 10.0, 0.0));
        e.on_measurement(&Measurement::new(1, 1.0, 11.0, 9.0, 0.0));
        // The message is only 0.5 s old: its raw payload is trusted.
        let est = e.estimate(1.0);
        assert!((est.nominal.position - 5.0).abs() < 1e-12);
        // Once the message is too stale, sensing takes over (raw, too).
        let est = e.estimate(2.0);
        assert!((est.nominal.position - 11.0).abs() < 1e-12);
    }

    #[test]
    fn falls_back_to_initial_belief_without_data() {
        let e = NaiveEstimator::new(limits(), 0.0, VehicleState::new(0.0, 10.0, 0.0));
        let est = e.estimate(1.0);
        assert!((est.nominal.position - 0.0).abs() < 1e-12);
        assert!((est.nominal.velocity - 10.0).abs() < 1e-12);
    }

    #[test]
    fn does_not_extrapolate_stale_data() {
        // The defining flaw of the naive belief: time passes, the belief
        // does not move.
        let e = NaiveEstimator::new(limits(), 0.0, VehicleState::new(0.0, 10.0, 0.0));
        assert!((e.estimate(3.0).nominal.position - 0.0).abs() < 1e-12);
    }

    #[test]
    fn naive_estimate_is_unsound_under_delay() {
        // Demonstrates the failure mode the framework protects against: the
        // true vehicle brakes, but the naive belief marches on.
        let lim = limits();
        let e = NaiveEstimator::new(lim, 0.0, VehicleState::new(0.0, 14.0, 0.0));
        let mut truth = VehicleState::new(0.0, 14.0, 0.0);
        for _ in 0..20 {
            truth = lim.step(&truth, -3.0, 0.1); // braking hard
        }
        let est = e.estimate(2.0);
        assert!(!est.consistent_with(&truth));
    }
}
