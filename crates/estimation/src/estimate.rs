use cv_dynamics::VehicleState;

use crate::Interval;

/// The ego vehicle's belief about one remote vehicle at a given time.
///
/// Produced by an [`crate::Estimator`]. The intervals bound the remote
/// vehicle's state *in its own forward frame*; `nominal` is the best point
/// estimate (the Kalman mean when available, interval midpoints otherwise).
///
/// The runtime monitor consumes the intervals (sound set-membership tests);
/// the aggressive unsafe-set estimation consumes `nominal` (paper Eq. 8 uses
/// the current `v_1(t)`, `a_1(t)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleEstimate {
    /// Time the estimate refers to.
    pub time: f64,
    /// Bound on the remote vehicle's position (m, its forward frame).
    pub position: Interval,
    /// Bound on the remote vehicle's velocity (m/s).
    pub velocity: Interval,
    /// Bound on the remote vehicle's *last known* acceleration (m/s²).
    pub acceleration: Interval,
    /// Best point estimate of the current state.
    pub nominal: VehicleState,
}

impl VehicleEstimate {
    /// An exact estimate (zero-width intervals), e.g. from ground truth in
    /// perfect-information baselines and tests.
    pub fn exact(time: f64, state: VehicleState) -> Self {
        Self {
            time,
            position: Interval::point(state.position),
            velocity: Interval::point(state.velocity),
            acceleration: Interval::point(state.acceleration),
            nominal: state,
        }
    }

    /// Builds an estimate from intervals, taking midpoints as the nominal.
    pub fn from_intervals(
        time: f64,
        position: Interval,
        velocity: Interval,
        acceleration: Interval,
    ) -> Self {
        Self {
            time,
            position,
            velocity,
            acceleration,
            nominal: VehicleState::new(
                position.midpoint(),
                velocity.midpoint(),
                acceleration.midpoint(),
            ),
        }
    }

    /// Returns `true` if `state` is consistent with the interval bounds
    /// (position and velocity; acceleration is a last-known bound and is
    /// not checked).
    pub fn consistent_with(&self, state: &VehicleState) -> bool {
        self.position.contains(state.position) && self.velocity.contains(state.velocity)
    }

    /// Total interval width (position + velocity), a scalar measure of how
    /// uncertain the estimate is. Used by experiments and tests to check the
    /// information filter tightens estimates.
    pub fn uncertainty(&self) -> f64 {
        self.position.width() + self.velocity.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_zero_uncertainty() {
        let e = VehicleEstimate::exact(1.0, VehicleState::new(5.0, 2.0, 0.5));
        assert_eq!(e.uncertainty(), 0.0);
        assert!(e.consistent_with(&VehicleState::new(5.0, 2.0, 0.5)));
        assert!(!e.consistent_with(&VehicleState::new(5.1, 2.0, 0.5)));
    }

    #[test]
    fn from_intervals_uses_midpoints() {
        let e = VehicleEstimate::from_intervals(
            0.0,
            Interval::new(0.0, 2.0),
            Interval::new(4.0, 6.0),
            Interval::new(-1.0, 1.0),
        );
        assert_eq!(e.nominal.position, 1.0);
        assert_eq!(e.nominal.velocity, 5.0);
        assert_eq!(e.nominal.acceleration, 0.0);
        assert_eq!(e.uncertainty(), 4.0);
    }
}
