//! Property tests for the persistent tier's segment record codec
//! (ISSUE 9, satellite 3).
//!
//! The three contracts that make torn-write recovery sound:
//!
//! 1. **Round trips are bit-identical** — a record encodes and parses back
//!    to exactly the key and value bytes that went in, for seeded random
//!    payloads of every size class.
//! 2. **Every single-byte corruption is detected** — flipping any one byte
//!    of an encoded record (any position, seeded non-zero mask) never
//!    parses as `Ok`; the CRC64 (or a structural check it implies) catches
//!    it.
//! 3. **Truncation at every boundary recovers the prefix** — cutting a
//!    multi-record buffer at *any* byte length yields exactly the records
//!    that were fully written before the cut, then a clean `End` or `Torn`,
//!    never a misparse.

use cv_cache::persist::{
    crc64, encode_header, encode_record, parse_header, parse_record, HeaderParse, RecordParse,
    HEADER_LEN,
};
use cv_cache::{CacheKey, MemIo, PersistValue, PersistentCache};
use cv_rng::{derive_seed, Rng, SplitMix64};

fn seeded_record(seed: u64, max_len: usize) -> (CacheKey, Vec<u8>) {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(seed, "persist-props"));
    let key = CacheKey {
        hi: rng.next_u64(),
        lo: rng.next_u64(),
    };
    let len = (rng.next_u64() as usize) % (max_len + 1);
    let value: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    (key, value)
}

cv_rng::props! {
    fn record_round_trip_is_bit_identical(cases = 128, seed in 0..u64::MAX) {
        // Size classes from empty to a few KiB; the record layout has no
        // alignment or padding to hide behind.
        for max_len in [0usize, 1, 7, 64, 4096] {
            let (key, value) = seeded_record(seed ^ max_len as u64, max_len);
            let rec = encode_record(key, &value);
            match parse_record(&rec, 0) {
                RecordParse::Ok { key: k, value: v, next } => {
                    assert_eq!(k, key, "key must survive the round trip");
                    assert_eq!(v, &value[..], "value bytes must be bit-identical");
                    assert_eq!(next, rec.len(), "record must consume itself exactly");
                }
                other => panic!("round trip failed: {other:?}"),
            }
        }
    }

    fn every_single_byte_corruption_is_detected(cases = 32, seed in 0..u64::MAX) {
        let (key, value) = seeded_record(seed, 48);
        let rec = encode_record(key, &value);
        let mut rng = SplitMix64::seed_from_u64(derive_seed(seed, "corruption-mask"));
        for pos in 0..rec.len() {
            // A seeded non-zero XOR mask: any of the 255 possible flips at
            // this byte must be caught.
            let mask = (rng.next_u64() as u8) | 1;
            let mut bad = rec.clone();
            bad[pos] ^= mask;
            match parse_record(&bad, 0) {
                RecordParse::Ok { key: k, value: v, .. } => panic!(
                    "flip of byte {pos} (mask {mask:#04x}) went undetected \
                     (parsed key {k:?}, {} value bytes)",
                    v.len()
                ),
                // Corrupt (CRC/length caught it) or Torn (the flipped
                // length prefix claims more bytes than exist) are both
                // safe: neither serves the record.
                RecordParse::Corrupt { .. } | RecordParse::Torn | RecordParse::End => {}
            }
        }
    }

    fn truncation_at_every_boundary_recovers_the_prefix(cases = 24, seed in 0..u64::MAX) {
        // A buffer of several records, then cut at *every* length: the
        // parse must yield exactly the fully-written prefix.
        let records: Vec<(CacheKey, Vec<u8>)> =
            (0..5).map(|i| seeded_record(seed.wrapping_add(i), 24)).collect();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for (key, value) in &records {
            buf.extend_from_slice(&encode_record(*key, value));
            boundaries.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let data = &buf[..cut];
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            let mut offset = 0;
            let mut recovered = 0;
            loop {
                match parse_record(data, offset) {
                    RecordParse::Ok { key, value, next } => {
                        let (want_key, want_value) = &records[recovered];
                        assert_eq!(key, *want_key, "cut {cut}: record {recovered} key");
                        assert_eq!(value, &want_value[..], "cut {cut}: record {recovered} value");
                        recovered += 1;
                        offset = next;
                    }
                    RecordParse::End => {
                        assert!(
                            boundaries.contains(&cut),
                            "cut {cut}: clean End off a record boundary"
                        );
                        break;
                    }
                    RecordParse::Torn => {
                        assert!(
                            !boundaries.contains(&cut),
                            "cut {cut}: Torn on a record boundary"
                        );
                        break;
                    }
                    RecordParse::Corrupt { reason } => {
                        panic!("cut {cut}: truncation misread as corruption ({reason})")
                    }
                }
            }
            assert_eq!(
                recovered, complete,
                "cut {cut}: recovered {recovered} of {complete} complete records"
            );
        }
    }
}

#[test]
fn crc64_matches_the_xz_check_value() {
    // CRC-64/XZ reference check value — pins the polynomial, reflection,
    // init, and xor-out so segments stay readable across builds.
    assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    assert_eq!(crc64(b""), 0);
}

#[test]
fn header_is_fixed_size_and_salt_sensitive() {
    let salt = CacheKey { hi: 5, lo: 6 };
    let h = encode_header(salt);
    assert_eq!(h.len(), HEADER_LEN);
    assert_eq!(parse_header(&h, salt), HeaderParse::Ok);
    // Any other salt refuses the segment as stale, never misreads it.
    assert_eq!(
        parse_header(&h, CacheKey { hi: 5, lo: 7 }),
        HeaderParse::Stale
    );
}

/// A store-level round trip through [`MemIo`]: what went in comes back out
/// after a "reopen", marked as persisted.
#[derive(Clone, Debug, PartialEq)]
struct Blob(Vec<u8>);

impl PersistValue for Blob {
    fn encode_persist(&self, out: &mut Vec<u8>) -> bool {
        out.extend_from_slice(&self.0);
        true
    }
    fn decode_persist(bytes: &[u8]) -> Option<Self> {
        Some(Self(bytes.to_vec()))
    }
    fn reload_weight(&self) -> usize {
        self.0.len() + 64
    }
}

cv_rng::props! {
    fn store_reopen_round_trip(cases = 16, seed in 0..u64::MAX) {
        let salt = CacheKey { hi: 0x5A17, lo: seed };
        let io = MemIo::new();
        let mut expected = Vec::new();
        {
            let (cache, report) =
                PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt).unwrap();
            assert_eq!(report.loaded, 0);
            for i in 0..20u64 {
                let (key, value) = seeded_record(seed.wrapping_add(i), 32);
                cache.insert(key, Blob(value.clone()), value.len() + 64);
                expected.push((key, value));
            }
            assert!(cache.flush(), "clean MemIo flush must succeed");
        }
        let (cache, report) =
            PersistentCache::<Blob>::open_with_io(io, 1 << 20, salt).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.truncated_bytes, 0);
        for (key, value) in &expected {
            let (blob, persisted) = cache.get_entry(key).expect("entry survived reopen");
            assert_eq!(blob.0, *value, "reloaded value bit-identical");
            assert!(persisted, "reloaded entries count as persisted hits");
        }
    }
}
