//! Eviction robustness under concurrency (ISSUE 6, satellite 3).
//!
//! Fills the cache past its byte budget while other threads hammer `get` on
//! a protected working set, synchronised with [`std::sync::Barrier`]s — no
//! sleeps. The invariants: LRU order decides who dies, the eviction counter
//! accounts for every death, and a concurrent hit never observes a torn or
//! half-removed entry — every lookup is either a full, value-correct hit or
//! a clean miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

use cv_cache::{CacheKey, KeyHasher, ShardedCache};

fn key(n: u64) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_u64(n);
    h.finish()
}

/// The value stored under `key(n)`: a payload whose every element encodes
/// `n`, so a torn read (mixing two entries) is detectable.
fn value(n: u64) -> Vec<u64> {
    vec![n; 8]
}

#[test]
fn filling_past_budget_evicts_in_lru_order_and_counts() {
    // Single shard => one global LRU order. Budget holds 4 unit entries.
    let cache: ShardedCache<Vec<u64>> = ShardedCache::with_shards(4, 1);
    for n in 0..4 {
        cache.insert(key(n), value(n), 1);
    }
    assert_eq!(cache.evictions(), 0);
    // Refresh 0 and 1; then overflow by two: victims must be 2 then 3.
    assert!(cache.get(&key(0)).is_some());
    assert!(cache.get(&key(1)).is_some());
    cache.insert(key(4), value(4), 1);
    assert_eq!(cache.evictions(), 1);
    assert!(cache.get(&key(2)).is_none(), "oldest untouched entry first");
    cache.insert(key(5), value(5), 1);
    assert_eq!(cache.evictions(), 2);
    assert!(cache.get(&key(3)).is_none(), "next LRU victim second");
    for survivor in [0, 1, 4, 5] {
        assert_eq!(cache.get(&key(survivor)), Some(value(survivor)));
    }
    let stats = cache.stats();
    assert_eq!((stats.entries, stats.bytes), (4, 4));
}

#[test]
fn weighted_overflow_evicts_enough_and_only_enough() {
    let cache: ShardedCache<Vec<u64>> = ShardedCache::with_shards(100, 1);
    cache.insert(key(1), value(1), 40);
    cache.insert(key(2), value(2), 40);
    // 60 bytes need both residents gone (40 + 40 + 60 > 100, 40 + 60 = 100).
    cache.insert(key(3), value(3), 60);
    assert_eq!(cache.evictions(), 1, "one eviction frees enough");
    assert!(cache.get(&key(1)).is_none());
    assert_eq!(cache.get(&key(2)), Some(value(2)));
    assert_eq!(cache.get(&key(3)), Some(value(3)));
    assert_eq!(cache.stats().bytes, 100);
}

#[test]
fn concurrent_hits_during_eviction_are_never_torn_or_dropped() {
    const READERS: usize = 4;
    const HOT: u64 = 1_000_000; // the entry readers hammer
    const ROUNDS: u64 = 400;

    // One shard so every writer insert contends with every reader get on
    // the same lock — the worst case for tearing. Budget of 8 units keeps
    // eviction pressure constant while the hot entry is kept refreshed.
    let cache: ShardedCache<Vec<u64>> = ShardedCache::with_shards(8, 1);
    cache.insert(key(HOT), value(HOT), 1);

    let start = Barrier::new(READERS + 1);
    let done = Barrier::new(READERS + 1);
    let hot_misses = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                start.wait();
                for _ in 0..ROUNDS {
                    match cache.get(&key(HOT)) {
                        // A hit must be the complete, correct payload.
                        Some(v) => assert_eq!(v, value(HOT), "torn entry observed"),
                        // A miss is legal (the writer may have evicted the
                        // hot key this instant) but must be clean.
                        None => {
                            hot_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                done.wait();
            });
        }

        // Writer: flood the shard far past its budget, forcing evictions
        // while the readers run. Re-insert the hot key periodically so hits
        // keep happening under eviction pressure.
        start.wait();
        for n in 0..ROUNDS {
            cache.insert(key(n), value(n), 1);
            if n % 16 == 0 {
                cache.insert(key(HOT), value(HOT), 1);
            }
        }
        done.wait();
    });

    // The flood overflowed an 8-slot shard ~400 times: evictions must have
    // happened and must be fully accounted for.
    let stats = cache.stats();
    assert!(stats.evictions > 0, "flood never evicted");
    assert!(stats.entries <= 8, "byte budget exceeded");
    assert!(stats.bytes <= 8, "byte accounting drifted");
    // Sanity: the readers actually raced live evictions and still got hits.
    let total_reads = (READERS as u64) * ROUNDS;
    assert!(
        hot_misses.load(Ordering::Relaxed) < total_reads,
        "every read missed — the hot entry was never concurrently readable"
    );
}
