//! Content-addressed result cache for deterministic simulations.
//!
//! Every episode in this workspace is deterministic by construction (seeded
//! [`cv_rng`] streams, bit-identity tests over every batch path), which
//! makes simulation results *content-addressable*: the full episode
//! configuration, the planner stack, and a code-version salt hash to a key,
//! and the key maps to the unique result any re-simulation would reproduce
//! bit for bit. This crate provides the two halves of that idea:
//!
//! * **Key derivation** — [`KeyHasher`] / [`Hashable`] / [`CacheKey`]: a
//!   stable (cross-process, cross-platform) 128-bit content hash built from
//!   two independent 64-bit FNV-1a streams ([`cv_rng::Fnv1a`]). Floats are
//!   keyed by their IEEE-754 bit patterns — `-0.0` and `0.0` are distinct
//!   inputs to a simulation and hash differently — and NaN payloads are
//!   rejected with a typed [`KeyError`] instead of being silently keyed
//!   (a NaN-bearing config does not describe a reproducible episode).
//! * **Storage** — [`ShardedCache`]: an in-process, memory-bounded LRU,
//!   sharded across independently locked segments so concurrent lookups
//!   contend only per shard, with hit/miss/eviction counters.
//!
//! What to cache is the *caller's* policy; the contract here is only that
//! `insert` never exceeds the byte budget (least-recently-used entries are
//! evicted first) and `get` returns exactly what was inserted.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cv_rng::{Fnv1a, FNV_OFFSET_BASIS};

pub mod persist;

pub use persist::{
    DirIo, DiskFault, FaultIo, MemIo, PersistValue, PersistentCache, RecoveryReport, SegmentFault,
    SegmentIo,
};

/// Basis of the second hash stream: the standard offset basis perturbed by
/// the SplitMix64 increment, so the two lanes of a [`CacheKey`] disagree
/// from the first byte on.
const SECOND_BASIS: u64 = FNV_OFFSET_BASIS ^ 0x9E37_79B9_7F4A_7C15;

/// A typed key-derivation failure.
///
/// Keys must identify a *reproducible* computation; a NaN anywhere in the
/// configuration means the episode it describes is not one the simulator
/// defines, so the config is refused rather than silently keyed (all NaN
/// bit patterns would otherwise alias under `to_bits`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// A floating-point field held a NaN.
    NanField {
        /// Dotted path of the offending field (e.g. `comm.delay`).
        field: String,
    },
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::NanField { field } => {
                write!(f, "cannot derive a cache key: field '{field}' is NaN")
            }
        }
    }
}

impl std::error::Error for KeyError {}

/// A 128-bit content hash: two independent 64-bit FNV-1a lanes over the
/// same byte stream.
///
/// One 64-bit lane over millions of cached episodes leaves a small but real
/// birthday-collision probability — and a collision here silently returns
/// the wrong episode's result. Two independent lanes push that probability
/// below any practical concern while keeping the hasher in-tree and
/// dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// First FNV-1a lane (standard offset basis).
    pub hi: u64,
    /// Second FNV-1a lane (perturbed basis).
    pub lo: u64,
}

/// Streaming content hasher with NaN rejection.
///
/// All write methods fold bytes into both lanes; [`KeyHasher::write_f64`]
/// additionally validates the value. Variable-length data must be
/// length-prefixed by the caller ([`KeyHasher::write_len`]) so the byte
/// stream stays prefix-free.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: Fnv1a,
    b: Fnv1a,
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl KeyHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        KeyHasher {
            a: Fnv1a::new(),
            b: Fnv1a::with_basis(SECOND_BASIS),
        }
    }

    /// Folds raw bytes into both lanes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.a.write(bytes);
        self.b.write(bytes);
    }

    /// Folds one byte — typically an enum discriminant.
    pub fn write_u8(&mut self, byte: u8) {
        self.a.write_u8(byte);
        self.b.write_u8(byte);
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.a.write_u64(value);
        self.b.write_u64(value);
    }

    /// Folds a collection length, so `[1.0] ++ [2.0]` and `[1.0, 2.0]`
    /// produce different streams.
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// Folds a string as `(len, bytes)`.
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Folds an `f64` by its IEEE-754 bit pattern. `-0.0` and `0.0` hash
    /// differently; infinities are legal inputs; NaN is refused.
    ///
    /// # Errors
    ///
    /// [`KeyError::NanField`] naming `field` when `value` is NaN.
    pub fn write_f64(&mut self, field: &str, value: f64) -> Result<(), KeyError> {
        if value.is_nan() {
            return Err(KeyError::NanField {
                field: field.to_string(),
            });
        }
        self.write_u64(value.to_bits());
        Ok(())
    }

    /// Folds an `Option<f64>` as a presence tag plus (when present) the
    /// value's bits.
    ///
    /// # Errors
    ///
    /// [`KeyError::NanField`] when the contained value is NaN.
    pub fn write_opt_f64(&mut self, field: &str, value: Option<f64>) -> Result<(), KeyError> {
        match value {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_f64(field, v)?;
            }
        }
        Ok(())
    }

    /// The final 128-bit key.
    pub fn finish(&self) -> CacheKey {
        CacheKey {
            hi: self.a.finish(),
            lo: self.b.finish(),
        }
    }
}

/// Hand-derived content hashing over config structs.
///
/// Implementations must feed *every* field that influences the computation
/// being cached, in a fixed order, using the [`KeyHasher`] primitives
/// (discriminant byte first for enums, length prefix first for
/// collections). The derive-by-hand discipline is deliberate: adding a
/// field to a config without extending its `feed` is exactly the bug the
/// key-stability property tests are there to catch.
pub trait Hashable {
    /// Folds `self` into the hasher.
    ///
    /// # Errors
    ///
    /// [`KeyError`] if a floating-point field is NaN.
    fn feed(&self, hasher: &mut KeyHasher) -> Result<(), KeyError>;

    /// Convenience: hash `self` alone to a key.
    ///
    /// # Errors
    ///
    /// Propagates [`Hashable::feed`] errors.
    fn content_key(&self) -> Result<CacheKey, KeyError> {
        let mut h = KeyHasher::new();
        self.feed(&mut h)?;
        Ok(h.finish())
    }
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held by live entries.
    pub bytes: usize,
    /// Bytes durably appended by the persistent tier (0 for memory-only
    /// caches).
    pub bytes_persisted: u64,
    /// Records shed to memory-only because the persistent tier was
    /// degraded (I/O error) or its write-behind queue was full.
    pub degraded: u64,
}

/// One shard: an LRU map with its own byte budget.
///
/// Recency is tracked with a monotonic tick per shard: the map stores each
/// entry's current tick, and `order` is the tick-sorted index. A hit
/// re-stamps the entry (O(log n)); eviction pops the smallest tick. Ticks
/// are u64 — they cannot plausibly wrap.
struct Shard<V> {
    map: HashMap<CacheKey, ShardEntry<V>>,
    order: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    bytes: usize,
}

struct ShardEntry<V> {
    value: V,
    tick: u64,
    weight: usize,
}

impl<V: Clone> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            next_tick: 0,
            bytes: 0,
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let tick = self.next_tick;
        let entry = self.map.get_mut(key)?;
        self.order.remove(&entry.tick);
        entry.tick = tick;
        self.order.insert(tick, *key);
        self.next_tick += 1;
        Some(entry.value.clone())
    }

    /// Inserts and returns how many entries were evicted to make room.
    fn insert(&mut self, key: CacheKey, value: V, weight: usize, budget: usize) -> u64 {
        if weight > budget {
            // An entry that alone overflows the shard would immediately
            // evict everything including itself; refuse it outright.
            return 0;
        }
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.tick);
            self.bytes -= old.weight;
        }
        let mut evicted = 0;
        while self.bytes + weight > budget {
            let (_, victim) = self
                .order
                .pop_first()
                .expect("non-empty order while over budget");
            let gone = self.map.remove(&victim).expect("order/map in sync");
            self.bytes -= gone.weight;
            evicted += 1;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.order.insert(tick, key);
        self.bytes += weight;
        self.map.insert(
            key,
            ShardEntry {
                value,
                tick,
                weight,
            },
        );
        evicted
    }
}

/// A sharded, memory-bounded, in-process LRU keyed by [`CacheKey`].
///
/// The byte budget is split evenly across shards and enforced per shard;
/// each shard is an independent [`Mutex`], so lookups on different shards
/// never contend and a lookup concurrent with an eviction on the same shard
/// simply serialises — it returns either the full entry or a miss, never a
/// torn value. Values are returned by clone, so an evicted entry that a
/// concurrent reader already fetched stays valid in the reader's hands.
///
/// Counters are process-wide atomics; per-job accounting is done by the
/// caller (which knows which lookups belong to which job).
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default shard count: enough to keep a handful of worker threads off each
/// other's locks without fragmenting small byte budgets.
pub const DEFAULT_SHARDS: usize = 16;

impl<V: Clone> ShardedCache<V> {
    /// A cache holding at most `total_bytes` of entry weight across
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(total_bytes: usize) -> Self {
        Self::with_shards(total_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (floor 1). Single-shard caches
    /// have a globally deterministic LRU order — what the eviction-order
    /// tests pin down.
    pub fn with_shards(total_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: total_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        // The key is already a high-quality hash; its low bits pick the
        // shard directly.
        &self.shards[(key.lo as usize) % self.shards.len()]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key` with an estimated `weight` in bytes,
    /// evicting least-recently-used entries of the same shard as needed.
    /// An entry heavier than a whole shard's budget is silently refused.
    pub fn insert(&self, key: CacheKey, value: V, weight: usize) {
        let evicted = self
            .shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, weight, self.shard_budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// A snapshot of the counters and occupancy.
    ///
    /// All shard locks are held simultaneously while the occupancy totals
    /// are read, so `entries`/`bytes` describe one consistent point in time
    /// — a concurrent insert can never be half-counted across shards.
    /// Locks are always taken in shard-index order (this is the only place
    /// more than one is held), so there is no deadlock ordering to violate.
    pub fn stats(&self) -> CacheStats {
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|shard| shard.lock().expect("cache shard poisoned"))
            .collect();
        let (mut entries, mut bytes) = (0, 0);
        for s in &guards {
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            bytes_persisted: 0,
            degraded: 0,
        }
    }

    /// Live entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        let mut h = KeyHasher::new();
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn keys_are_stable_and_input_sensitive() {
        assert_eq!(key(7), key(7));
        assert_ne!(key(7), key(8));
        // Cross-process stability anchor: the first lane is plain FNV-1a
        // over the little-endian bytes.
        assert_eq!(key(7).hi, cv_rng::fnv1a(&7u64.to_le_bytes()));
    }

    #[test]
    fn negative_zero_and_zero_key_differently() {
        let mut a = KeyHasher::new();
        a.write_f64("x", 0.0).unwrap();
        let mut b = KeyHasher::new();
        b.write_f64("x", -0.0).unwrap();
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn nan_is_a_typed_error_naming_the_field() {
        let mut h = KeyHasher::new();
        let err = h.write_f64("noise.delta_p", f64::NAN).unwrap_err();
        assert_eq!(
            err,
            KeyError::NanField {
                field: "noise.delta_p".into()
            }
        );
        assert!(err.to_string().contains("noise.delta_p"));
        // Option variant rejects too.
        let mut h = KeyHasher::new();
        assert!(h.write_opt_f64("cap", Some(f64::NAN)).is_err());
        assert!(h.write_opt_f64("cap", None).is_ok());
    }

    #[test]
    fn length_prefix_disambiguates_adjacent_collections() {
        // ([1.0], [2.0]) vs ([1.0, 2.0], []) must differ.
        let feed = |h: &mut KeyHasher, xs: &[f64], ys: &[f64]| {
            h.write_len(xs.len());
            for x in xs {
                h.write_f64("x", *x).unwrap();
            }
            h.write_len(ys.len());
            for y in ys {
                h.write_f64("y", *y).unwrap();
            }
        };
        let mut a = KeyHasher::new();
        feed(&mut a, &[1.0], &[2.0]);
        let mut b = KeyHasher::new();
        feed(&mut b, &[1.0, 2.0], &[]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let cache: ShardedCache<Vec<f64>> = ShardedCache::new(1 << 16);
        assert!(cache.is_empty());
        cache.insert(key(1), vec![1.5, -0.0], 64);
        assert_eq!(cache.get(&key(1)), Some(vec![1.5, -0.0]));
        assert_eq!(cache.get(&key(2)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!((stats.entries, stats.bytes), (1, 64));
    }

    #[test]
    fn reinsert_replaces_without_leaking_weight() {
        let cache: ShardedCache<u32> = ShardedCache::with_shards(1024, 1);
        cache.insert(key(1), 10, 100);
        cache.insert(key(1), 20, 300);
        assert_eq!(cache.get(&key(1)), Some(20));
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes, stats.evictions), (1, 300, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Single shard, budget for exactly three unit-weight entries.
        let cache: ShardedCache<u64> = ShardedCache::with_shards(3, 1);
        cache.insert(key(1), 1, 1);
        cache.insert(key(2), 2, 1);
        cache.insert(key(3), 3, 1);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&key(1)), Some(1));
        cache.insert(key(4), 4, 1);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1)), Some(1));
        assert_eq!(cache.get(&key(3)), Some(3));
        assert_eq!(cache.get(&key(4)), Some(4));
    }

    #[test]
    fn oversize_entry_is_refused_not_thrashed() {
        let cache: ShardedCache<u64> = ShardedCache::with_shards(8, 1);
        cache.insert(key(1), 1, 4);
        cache.insert(key(2), 2, 100); // heavier than the whole shard
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.get(&key(1)), Some(1), "resident entry untouched");
        assert_eq!(cache.evictions(), 0);
    }
}
