//! Crash-safe persistent tier for the sharded result cache.
//!
//! Layout: a cache directory holds append-only segment files
//! (`seg-00000000.seg`, `seg-00000001.seg`, …). Each segment starts with a
//! fixed header — magic, format version, and a caller-supplied salt (the
//! stack digest of the binary that wrote it) — followed by length-prefixed,
//! CRC64-checksummed records. Records are `CacheKey` + an opaque value
//! encoding supplied by [`PersistValue`].
//!
//! Recovery invariants (DESIGN.md §17):
//!
//! - A record is served only if its CRC verifies. Torn tails (incomplete
//!   record at the end of the *last* segment — the expected shape after
//!   `kill -9` mid-append) are truncated and the segment reused.
//! - Anything else that fails to parse — bad header CRC, a corrupt record
//!   in the middle, a torn record in a *sealed* segment — quarantines the
//!   whole segment to `<name>.bad`; the records that verified before the
//!   fault stay loaded.
//! - A header that verifies but carries a different format version or salt
//!   is *stale*: skipped and counted, never misread and never renamed.
//!
//! Writes go through a bounded write-behind queue drained by one background
//! thread, so an insert never blocks the shard scheduler on disk I/O. Any
//! I/O error flips a sticky `degraded` flag: the cache keeps serving from
//! memory and counts every shed record instead of propagating the failure.

use crate::{CacheKey, CacheStats, ShardedCache};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// CRC-64/XZ (reflected ECMA-182) — the variant used by xz-utils.
/// Check value: `crc64(b"123456789") == 0x995D_C9BB_DF19_39FA`.
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ CRC64_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ over `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Segment file magic: identifies the file as a cv-cache segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"CVCACHE\0";
/// Bumped whenever the record or header layout changes; headers carrying a
/// different version are refused as stale, never misread.
pub const FORMAT_VERSION: u32 = 1;
/// Header layout: magic (8) | version u32 LE (4) | salt.hi u64 LE (8) |
/// salt.lo u64 LE (8) | crc64 over the preceding 28 bytes (8).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

const LEN_BYTES: usize = 4;
const KEY_BYTES: usize = 16;
const CRC_BYTES: usize = 8;
/// Upper bound on a single record body; anything larger in a length prefix
/// is treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 1 << 20;

/// Rotate the active segment once it grows past this many bytes.
const SEGMENT_ROTATE_BYTES: u64 = 8 << 20;
/// Bounded depth of the write-behind queue; `insert` sheds (memory-only)
/// rather than block when the writer falls this far behind.
const WRITE_QUEUE_DEPTH: usize = 1024;

/// Encode a segment header for `salt`.
pub fn encode_header(salt: CacheKey) -> [u8; HEADER_LEN] {
    let mut out = [0u8; HEADER_LEN];
    out[..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out[12..20].copy_from_slice(&salt.hi.to_le_bytes());
    out[20..28].copy_from_slice(&salt.lo.to_le_bytes());
    let crc = crc64(&out[..28]);
    out[28..36].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Outcome of validating a segment header against the current salt.
#[derive(Debug, PartialEq, Eq)]
pub enum HeaderParse {
    /// Header verifies and matches the current format version + salt.
    Ok,
    /// Header verifies but was written by a different binary (version or
    /// salt mismatch): refuse to read, leave the file alone.
    Stale,
    /// Fewer than `HEADER_LEN` bytes: the file was killed mid-create.
    Torn,
    /// Bad magic or bad CRC: the file is not a trustworthy segment.
    Corrupt { reason: &'static str },
}

/// Validate `data`'s segment header against `salt`.
pub fn parse_header(data: &[u8], salt: CacheKey) -> HeaderParse {
    if data.len() < HEADER_LEN {
        return HeaderParse::Torn;
    }
    let stored = u64::from_le_bytes(data[28..36].try_into().unwrap());
    if crc64(&data[..28]) != stored {
        return HeaderParse::Corrupt {
            reason: "segment header checksum mismatch",
        };
    }
    if data[..8] != SEGMENT_MAGIC {
        return HeaderParse::Corrupt {
            reason: "bad segment magic",
        };
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let hi = u64::from_le_bytes(data[12..20].try_into().unwrap());
    let lo = u64::from_le_bytes(data[20..28].try_into().unwrap());
    if version != FORMAT_VERSION || hi != salt.hi || lo != salt.lo {
        return HeaderParse::Stale;
    }
    HeaderParse::Ok
}

/// Encode one record: `[body_len u32 LE][key.hi][key.lo][value][crc64 LE]`
/// where `body_len = 16 + value.len()` and the CRC covers everything before
/// it (length prefix included).
pub fn encode_record(key: CacheKey, value: &[u8]) -> Vec<u8> {
    let body_len = (KEY_BYTES + value.len()) as u32;
    let mut out = Vec::with_capacity(LEN_BYTES + KEY_BYTES + value.len() + CRC_BYTES);
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&key.hi.to_le_bytes());
    out.extend_from_slice(&key.lo.to_le_bytes());
    out.extend_from_slice(value);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Outcome of parsing one record at `offset`.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordParse<'a> {
    /// A verified record; `next` is the offset of the following one.
    Ok {
        key: CacheKey,
        value: &'a [u8],
        next: usize,
    },
    /// `offset` is exactly the end of the data: a clean boundary.
    End,
    /// The data ends mid-record: the shape `kill -9` mid-append leaves.
    Torn,
    /// The bytes at `offset` cannot be a record that was ever fully
    /// written: implausible length or checksum mismatch.
    Corrupt { reason: &'static str },
}

/// Parse the record starting at `offset` in `data`.
pub fn parse_record(data: &[u8], offset: usize) -> RecordParse<'_> {
    let rest = &data[offset.min(data.len())..];
    if rest.is_empty() {
        return RecordParse::End;
    }
    if rest.len() < LEN_BYTES {
        return RecordParse::Torn;
    }
    let body_len = u32::from_le_bytes(rest[..LEN_BYTES].try_into().unwrap()) as usize;
    if !(KEY_BYTES..=MAX_RECORD_BYTES).contains(&body_len) {
        return RecordParse::Corrupt {
            reason: "implausible record length",
        };
    }
    let total = LEN_BYTES + body_len + CRC_BYTES;
    if rest.len() < total {
        return RecordParse::Torn;
    }
    let stored = u64::from_le_bytes(rest[LEN_BYTES + body_len..total].try_into().unwrap());
    if crc64(&rest[..LEN_BYTES + body_len]) != stored {
        return RecordParse::Corrupt {
            reason: "record checksum mismatch",
        };
    }
    let hi = u64::from_le_bytes(rest[LEN_BYTES..LEN_BYTES + 8].try_into().unwrap());
    let lo = u64::from_le_bytes(rest[LEN_BYTES + 8..LEN_BYTES + 16].try_into().unwrap());
    RecordParse::Ok {
        key: CacheKey { hi, lo },
        value: &rest[LEN_BYTES + KEY_BYTES..LEN_BYTES + body_len],
        next: offset + total,
    }
}

/// A value the persistent tier knows how to write out and read back.
pub trait PersistValue: Sized {
    /// Append the encoding of `self` to `out`. Return `false` if this
    /// particular value is not persistable (it is then kept memory-only
    /// without counting as degradation).
    fn encode_persist(&self, out: &mut Vec<u8>) -> bool;
    /// Decode a value previously written by `encode_persist`. `None` means
    /// the bytes are not a valid encoding (treated as segment corruption —
    /// the CRC already verified, so this is a logic-level mismatch).
    fn decode_persist(bytes: &[u8]) -> Option<Self>;
    /// Weight to charge the in-memory LRU when reloading this value.
    fn reload_weight(&self) -> usize;
}

/// Storage abstraction under the segment store: the real directory-backed
/// implementation is [`DirIo`]; tests substitute [`MemIo`] and wrap either
/// in [`FaultIo`] for deterministic disk-fault injection.
pub trait SegmentIo {
    /// All file names present (segments, quarantined `.bad`, anything).
    fn list(&self) -> io::Result<Vec<String>>;
    /// Read a whole file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Create `name` with `header` as its initial contents and durably
    /// flush it, so a crash can never leave a headerless segment behind.
    fn create(&self, name: &str, header: &[u8]) -> io::Result<()>;
    /// Append `data`, returning how many bytes actually landed (a short
    /// write is reported, not hidden).
    fn append(&self, name: &str, data: &[u8]) -> io::Result<usize>;
    /// Durably flush `name`.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Truncate `name` to `len` bytes (torn-tail repair).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Rename `name` out of the segment namespace to `<name>.bad`.
    fn quarantine(&self, name: &str) -> io::Result<()>;
}

/// Directory-backed [`SegmentIo`].
pub struct DirIo {
    dir: PathBuf,
}

impl DirIo {
    pub fn new(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl SegmentIo for DirIo {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn create(&self, name: &str, header: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(self.path(name))?;
        f.write_all(header)?;
        f.sync_all()
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<usize> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)?;
        Ok(data.len())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)
    }

    fn quarantine(&self, name: &str) -> io::Result<()> {
        std::fs::rename(self.path(name), self.path(&format!("{name}.bad")))
    }
}

/// In-memory [`SegmentIo`] for tests. `Clone` shares the backing map, so a
/// cloned handle observes writes made through the original — the idiom for
/// "reopen the same directory" in crash-recovery tests.
#[derive(Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemIo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw bytes of `name`, if present (includes `.bad` files).
    pub fn raw(&self, name: &str) -> Option<Vec<u8>> {
        self.files.lock().unwrap().get(name).cloned()
    }

    /// Overwrite `name` with `bytes` (test-side corruption injection).
    pub fn set_raw(&self, name: &str, bytes: Vec<u8>) {
        self.files.lock().unwrap().insert(name.to_string(), bytes);
    }
}

impl SegmentIo for MemIo {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn create(&self, name: &str, header: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), header.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<usize> {
        let mut files = self.files.lock().unwrap();
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.extend_from_slice(data);
        Ok(data.len())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn quarantine(&self, name: &str) -> io::Result<()> {
        let mut files = self.files.lock().unwrap();
        let bytes = files
            .remove(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        files.insert(format!("{name}.bad"), bytes);
        Ok(())
    }
}

/// One deterministic disk-fault kind, in the spirit of the cv-chaos
/// network-fault matrix: every kind maps to a distinct failure surface of
/// the [`SegmentIo`] contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Appends land only a seeded prefix of the buffer.
    ShortWrite,
    /// Appends fail with "no space left on device"; creates fail on a
    /// seeded subset so some seeds exercise degraded-from-open.
    Enospc,
    /// `sync` always fails.
    FsyncFail,
    /// Reads flip one seeded byte.
    ReadCorrupt,
    /// Reads lose a seeded number of trailing bytes — the on-disk shape of
    /// a crash mid-append.
    TornTail,
}

// A tiny seeded generator so this crate stays dependency-free (cv-rng would
// be a cycle: rng has no deps, but cache must stay usable from rng tests).
// Same SplitMix64 constants as cv-rng.
struct FaultRng(u64);

impl FaultRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn roll(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Deterministic fault-injecting wrapper around any [`SegmentIo`].
pub struct FaultIo<I> {
    inner: I,
    fault: DiskFault,
    rng: Mutex<FaultRng>,
}

impl<I: SegmentIo> FaultIo<I> {
    /// The seed is salted with a fixed label so the schedule is decoupled
    /// from any episode-level streams derived from the same root seed.
    pub fn new(inner: I, fault: DiskFault, seed: u64) -> Self {
        let salted = seed ^ crc64(b"cv-cache.disk-fault");
        Self {
            inner,
            fault,
            rng: Mutex::new(FaultRng(salted)),
        }
    }

    fn enospc() -> io::Error {
        io::Error::other("no space left on device (injected)")
    }
}

impl<I: SegmentIo> SegmentIo for FaultIo<I> {
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut data = self.inner.read(name)?;
        let mut rng = self.rng.lock().unwrap();
        match self.fault {
            DiskFault::ReadCorrupt if !data.is_empty() => {
                let pos = ((rng.roll() * data.len() as f64) as usize).min(data.len() - 1);
                let mask = (rng.next_u64() & 0xFF) as u8 | 1;
                data[pos] ^= mask;
            }
            DiskFault::TornTail if !data.is_empty() => {
                let cut = (1 + (rng.roll() * 40.0) as usize).min(data.len());
                data.truncate(data.len() - cut);
            }
            _ => {}
        }
        Ok(data)
    }

    fn create(&self, name: &str, header: &[u8]) -> io::Result<()> {
        if self.fault == DiskFault::Enospc && self.rng.lock().unwrap().roll() < 0.25 {
            return Err(Self::enospc());
        }
        self.inner.create(name, header)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<usize> {
        match self.fault {
            DiskFault::Enospc => Err(Self::enospc()),
            DiskFault::ShortWrite => {
                let k = {
                    let mut rng = self.rng.lock().unwrap();
                    (rng.roll() * data.len() as f64) as usize
                };
                self.inner.append(name, &data[..k])?;
                Ok(k)
            }
            _ => self.inner.append(name, data),
        }
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        if self.fault == DiskFault::FsyncFail {
            return Err(io::Error::other("fsync failed (injected)"));
        }
        self.inner.sync(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }

    fn quarantine(&self, name: &str) -> io::Result<()> {
        self.inner.quarantine(name)
    }
}

/// A segment quarantined during recovery: where and why.
#[derive(Debug, Clone)]
pub struct SegmentFault {
    /// Segment file name (before the `.bad` rename).
    pub segment: String,
    /// Byte offset of the first unreadable structure.
    pub offset: u64,
    /// Human-readable reason.
    pub reason: String,
}

/// What the startup scan found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments examined (quarantined and stale ones included).
    pub segments: usize,
    /// Records reloaded into the in-memory tier.
    pub loaded: usize,
    /// Bytes cut off torn tails.
    pub truncated_bytes: u64,
    /// Segments refused for version/salt mismatch (left in place).
    pub stale: usize,
    /// Segments renamed to `.bad`, with offset and reason.
    pub quarantined: Vec<SegmentFault>,
    /// True when the store could not arm an active segment and came up
    /// memory-only.
    pub degraded: bool,
}

fn segment_name(index: u64) -> String {
    format!("seg-{index:08}.seg")
}

fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

enum WriteCmd {
    Record(Vec<u8>),
    Flush(SyncSender<bool>),
}

struct PersistHandle {
    tx: Option<SyncSender<WriteCmd>>,
    handle: Option<JoinHandle<()>>,
    degraded: Arc<AtomicBool>,
    shed: Arc<AtomicU64>,
    bytes_persisted: Arc<AtomicU64>,
}

impl Drop for PersistHandle {
    fn drop(&mut self) {
        self.tx = None; // close the channel so the writer drains and exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[derive(Clone)]
struct Stored<V> {
    value: V,
    persisted: bool,
}

/// The persistent cache: a [`ShardedCache`] read-through front with an
/// optional write-behind segment store underneath. Constructed via
/// [`PersistentCache::new`] (memory-only, zero overhead — the write path
/// does not exist) or [`PersistentCache::open`] /
/// [`PersistentCache::open_with_io`] (disk-backed with crash recovery).
pub struct PersistentCache<V> {
    mem: ShardedCache<Stored<V>>,
    persist: Option<PersistHandle>,
}

impl<V: Clone> PersistentCache<V> {
    /// Memory-only cache; behaves exactly like the bare [`ShardedCache`].
    pub fn new(total_bytes: usize) -> Self {
        Self {
            mem: ShardedCache::new(total_bytes),
            persist: None,
        }
    }

    /// Look up `key`, refreshing its LRU position.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.mem.get(key).map(|s| s.value)
    }

    /// Like [`get`](Self::get), but also reports whether the entry was
    /// reloaded from disk at startup (a *persisted* hit) rather than
    /// inserted this process lifetime.
    pub fn get_entry(&self, key: &CacheKey) -> Option<(V, bool)> {
        self.mem.get(key).map(|s| (s.value, s.persisted))
    }

    /// Total evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.mem.evictions()
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// True once any disk fault has flipped the store to memory-only.
    pub fn degraded(&self) -> bool {
        self.persist
            .as_ref()
            .is_some_and(|p| p.degraded.load(Ordering::Relaxed))
    }

    /// Counter snapshot; the persistent tier overlays its two counters on
    /// the shard totals.
    pub fn stats(&self) -> CacheStats {
        let mut stats = self.mem.stats();
        if let Some(p) = self.persist.as_ref() {
            stats.bytes_persisted = p.bytes_persisted.load(Ordering::Relaxed);
            stats.degraded = p.shed.load(Ordering::Relaxed);
        }
        stats
    }

    /// Block until every queued record is on disk and synced. Returns
    /// `false` if the store is (or just became) degraded. Memory-only
    /// stores trivially return `true`.
    pub fn flush(&self) -> bool {
        let Some(p) = self.persist.as_ref() else {
            return true;
        };
        let Some(tx) = p.tx.as_ref() else { return true };
        let (ack_tx, ack_rx) = sync_channel(1);
        if tx.send(WriteCmd::Flush(ack_tx)).is_err() {
            return false;
        }
        ack_rx.recv().unwrap_or(false)
    }
}

impl<V: Clone + PersistValue> PersistentCache<V> {
    /// Open (or create) a directory-backed store at `dir`.
    pub fn open(
        dir: &Path,
        total_bytes: usize,
        salt: CacheKey,
    ) -> io::Result<(Self, RecoveryReport)> {
        Self::open_with_io(DirIo::new(dir)?, total_bytes, salt)
    }

    /// Open a store over any [`SegmentIo`]. Errors only if the directory
    /// itself cannot be listed; every per-segment fault degrades instead.
    pub fn open_with_io<I: SegmentIo + Send + 'static>(
        io: I,
        total_bytes: usize,
        salt: CacheKey,
    ) -> io::Result<(Self, RecoveryReport)> {
        let mem: ShardedCache<Stored<V>> = ShardedCache::new(total_bytes);
        let mut report = RecoveryReport::default();

        let mut names: Vec<String> = io
            .list()?
            .into_iter()
            .filter(|n| n.ends_with(".seg"))
            .collect();
        names.sort();
        let mut next_index = names
            .iter()
            .filter_map(|n| segment_index(n))
            .max()
            .map_or(0, |i| i + 1);

        // (name, byte length) of the last segment that survived the scan
        // intact and matches our salt — the candidate to keep appending to.
        let mut reusable: Option<(String, u64)> = None;

        let quarantine =
            |io: &I, report: &mut RecoveryReport, name: &str, offset: u64, reason: String| {
                let reason = match io.quarantine(name) {
                    Ok(()) => reason,
                    Err(e) => format!("{reason} (quarantine rename failed: {e})"),
                };
                report.quarantined.push(SegmentFault {
                    segment: name.to_string(),
                    offset,
                    reason,
                });
            };

        for (i, name) in names.iter().enumerate() {
            let is_last = i + 1 == names.len();
            report.segments += 1;
            let data = match io.read(name) {
                Ok(data) => data,
                Err(e) => {
                    quarantine(&io, &mut report, name, 0, format!("read failed: {e}"));
                    continue;
                }
            };
            match parse_header(&data, salt) {
                HeaderParse::Ok => {}
                HeaderParse::Stale => {
                    report.stale += 1;
                    continue;
                }
                HeaderParse::Torn => {
                    quarantine(&io, &mut report, name, 0, "torn segment header".into());
                    continue;
                }
                HeaderParse::Corrupt { reason } => {
                    quarantine(&io, &mut report, name, 0, reason.into());
                    continue;
                }
            }
            let mut offset = HEADER_LEN;
            let mut clean = true;
            loop {
                match parse_record(&data, offset) {
                    RecordParse::Ok { key, value, next } => {
                        // CRC verified but undecodable = written by logic we
                        // don't have: corruption at the value layer.
                        match V::decode_persist(value) {
                            Some(v) => {
                                let weight = v.reload_weight();
                                mem.insert(
                                    key,
                                    Stored {
                                        value: v,
                                        persisted: true,
                                    },
                                    weight,
                                );
                                report.loaded += 1;
                            }
                            None => {
                                quarantine(
                                    &io,
                                    &mut report,
                                    name,
                                    offset as u64,
                                    "undecodable record payload".into(),
                                );
                                clean = false;
                                break;
                            }
                        }
                        offset = next;
                    }
                    RecordParse::End => break,
                    RecordParse::Torn => {
                        if is_last {
                            // The expected kill -9 shape: cut the tail and
                            // keep the segment.
                            let cut = (data.len() - offset) as u64;
                            match io.truncate(name, offset as u64) {
                                Ok(()) => report.truncated_bytes += cut,
                                Err(e) => {
                                    quarantine(
                                        &io,
                                        &mut report,
                                        name,
                                        offset as u64,
                                        format!("torn tail could not be truncated: {e}"),
                                    );
                                    clean = false;
                                }
                            }
                        } else {
                            quarantine(
                                &io,
                                &mut report,
                                name,
                                offset as u64,
                                "torn record in a sealed segment".into(),
                            );
                            clean = false;
                        }
                        break;
                    }
                    RecordParse::Corrupt { reason } => {
                        quarantine(&io, &mut report, name, offset as u64, reason.into());
                        clean = false;
                        break;
                    }
                }
            }
            if clean && is_last {
                reusable = Some((name.clone(), offset as u64));
            }
        }

        // Arm the active segment: reuse the clean tail segment if it still
        // has room, otherwise start a fresh one.
        let active = match reusable {
            Some((name, len)) if len < SEGMENT_ROTATE_BYTES => Some((name, len)),
            _ => {
                let name = segment_name(next_index);
                next_index += 1;
                match io.create(&name, &encode_header(salt)) {
                    Ok(()) => Some((name, HEADER_LEN as u64)),
                    Err(_) => None,
                }
            }
        };

        let degraded = Arc::new(AtomicBool::new(active.is_none()));
        let shed = Arc::new(AtomicU64::new(0));
        let bytes_persisted = Arc::new(AtomicU64::new(0));
        report.degraded = active.is_none();

        let persist = match active {
            None => PersistHandle {
                tx: None,
                handle: None,
                degraded,
                shed,
                bytes_persisted,
            },
            Some((active_name, active_len)) => {
                let (tx, rx) = sync_channel(WRITE_QUEUE_DEPTH);
                let writer = Writer {
                    io,
                    salt,
                    active_name,
                    active_len,
                    next_index,
                    degraded: Arc::clone(&degraded),
                    shed: Arc::clone(&shed),
                    bytes_persisted: Arc::clone(&bytes_persisted),
                };
                let handle = std::thread::Builder::new()
                    .name("cv-cache-writer".into())
                    .spawn(move || writer.run(rx))
                    .expect("spawn cache writer thread");
                PersistHandle {
                    tx: Some(tx),
                    handle: Some(handle),
                    degraded,
                    shed,
                    bytes_persisted,
                }
            }
        };

        Ok((
            Self {
                mem,
                persist: Some(persist),
            },
            report,
        ))
    }

    /// Insert into the memory tier and enqueue a background append. The
    /// enqueue never blocks: a full queue or a degraded store sheds the
    /// record (memory-only) and counts it.
    pub fn insert(&self, key: CacheKey, value: V, weight: usize) {
        if let Some(p) = self.persist.as_ref() {
            let mut buf = Vec::new();
            if value.encode_persist(&mut buf) {
                if p.degraded.load(Ordering::Relaxed) {
                    p.shed.fetch_add(1, Ordering::Relaxed);
                } else if let Some(tx) = p.tx.as_ref() {
                    match tx.try_send(WriteCmd::Record(encode_record(key, &buf))) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => {
                            // Back-pressure shed: not sticky — the writer
                            // may catch up.
                            p.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            p.degraded.store(true, Ordering::Relaxed);
                            p.shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        self.mem.insert(
            key,
            Stored {
                value,
                persisted: false,
            },
            weight,
        );
    }
}

struct Writer<I> {
    io: I,
    salt: CacheKey,
    active_name: String,
    active_len: u64,
    next_index: u64,
    degraded: Arc<AtomicBool>,
    shed: Arc<AtomicU64>,
    bytes_persisted: Arc<AtomicU64>,
}

impl<I: SegmentIo> Writer<I> {
    fn degrade(&self) {
        self.degraded.store(true, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn run(mut self, rx: Receiver<WriteCmd>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                WriteCmd::Record(buf) => {
                    if self.degraded.load(Ordering::Relaxed) {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    self.write_record(&buf);
                }
                WriteCmd::Flush(ack) => {
                    let ok = if self.degraded.load(Ordering::Relaxed) {
                        false
                    } else {
                        match self.io.sync(&self.active_name) {
                            Ok(()) => true,
                            Err(_) => {
                                self.degraded.store(true, Ordering::Relaxed);
                                false
                            }
                        }
                    };
                    let _ = ack.send(ok);
                }
            }
        }
        // Channel closed: final best-effort durability point.
        if !self.degraded.load(Ordering::Relaxed) {
            let _ = self.io.sync(&self.active_name);
        }
    }

    fn write_record(&mut self, buf: &[u8]) {
        if self.active_len + buf.len() as u64 > SEGMENT_ROTATE_BYTES
            && self.active_len > HEADER_LEN as u64
        {
            if self.io.sync(&self.active_name).is_err() {
                self.degrade();
                return;
            }
            let name = segment_name(self.next_index);
            if self.io.create(&name, &encode_header(self.salt)).is_err() {
                self.degrade();
                return;
            }
            self.next_index += 1;
            self.active_name = name;
            self.active_len = HEADER_LEN as u64;
        }
        match self.io.append(&self.active_name, buf) {
            Ok(n) if n == buf.len() => {
                self.active_len += n as u64;
                self.bytes_persisted.fetch_add(n as u64, Ordering::Relaxed);
            }
            Ok(n) => {
                // Short write: repair the tail so the segment stays clean,
                // then degrade — we can no longer trust the device.
                let _ = self.io.truncate(&self.active_name, self.active_len);
                let _ = n;
                self.degrade();
            }
            Err(_) => {
                // Nothing landed (write_all semantics may still have left a
                // partial tail on a real device; recovery truncates it).
                self.degrade();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_check_value() {
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn record_round_trip() {
        let key = CacheKey {
            hi: 0xDEAD_BEEF,
            lo: 0x1234_5678,
        };
        let value = b"hello world".to_vec();
        let rec = encode_record(key, &value);
        match parse_record(&rec, 0) {
            RecordParse::Ok {
                key: k,
                value: v,
                next,
            } => {
                assert_eq!(k, key);
                assert_eq!(v, &value[..]);
                assert_eq!(next, rec.len());
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn empty_slice_is_end_and_partial_is_torn() {
        let rec = encode_record(CacheKey { hi: 1, lo: 2 }, b"abc");
        assert_eq!(parse_record(&rec, rec.len()), RecordParse::End);
        for cut in 1..rec.len() {
            let torn = &rec[..rec.len() - cut];
            assert!(
                matches!(parse_record(torn, 0), RecordParse::Torn),
                "cut {cut} should be torn"
            );
        }
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let rec = encode_record(CacheKey { hi: 7, lo: 9 }, b"payload");
        for pos in 0..rec.len() {
            let mut bad = rec.clone();
            bad[pos] ^= 0x40;
            assert!(
                !matches!(parse_record(&bad, 0), RecordParse::Ok { .. }),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn header_round_trip_and_stale() {
        let salt = CacheKey { hi: 11, lo: 22 };
        let h = encode_header(salt);
        assert_eq!(parse_header(&h, salt), HeaderParse::Ok);
        assert_eq!(
            parse_header(&h, CacheKey { hi: 11, lo: 23 }),
            HeaderParse::Stale
        );
        assert_eq!(parse_header(&h[..HEADER_LEN - 1], salt), HeaderParse::Torn);
        let mut bad = h;
        bad[3] ^= 0xFF;
        assert!(matches!(
            parse_header(&bad, salt),
            HeaderParse::Corrupt { .. }
        ));
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Blob(Vec<u8>);

    impl PersistValue for Blob {
        fn encode_persist(&self, out: &mut Vec<u8>) -> bool {
            out.extend_from_slice(&self.0);
            true
        }
        fn decode_persist(bytes: &[u8]) -> Option<Self> {
            Some(Self(bytes.to_vec()))
        }
        fn reload_weight(&self) -> usize {
            self.0.len() + 64
        }
    }

    fn salt() -> CacheKey {
        CacheKey { hi: 0xAB, lo: 0xCD }
    }

    fn key(i: u64) -> CacheKey {
        CacheKey {
            hi: i,
            lo: i.wrapping_mul(31) + 1,
        }
    }

    #[test]
    fn reopen_serves_persisted_entries() {
        let io = MemIo::new();
        {
            let (cache, report) =
                PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
            assert_eq!(report.loaded, 0);
            for i in 0..10u64 {
                cache.insert(key(i), Blob(vec![i as u8; 32]), 128);
            }
            assert!(cache.flush());
        }
        let (cache, report) = PersistentCache::<Blob>::open_with_io(io, 1 << 20, salt()).unwrap();
        assert_eq!(report.loaded, 10);
        assert!(report.quarantined.is_empty());
        for i in 0..10u64 {
            let (v, persisted) = cache.get_entry(&key(i)).expect("persisted entry");
            assert_eq!(v, Blob(vec![i as u8; 32]));
            assert!(persisted, "reloaded entry should count as persisted");
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_served() {
        let io = MemIo::new();
        {
            let (cache, _) =
                PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
            for i in 0..5u64 {
                cache.insert(key(i), Blob(vec![i as u8; 16]), 128);
            }
            assert!(cache.flush());
        }
        // Simulate kill -9 mid-append: a partial record at the tail.
        let name = segment_name(0);
        let mut bytes = io.raw(&name).unwrap();
        let full_len = bytes.len();
        bytes.extend_from_slice(&encode_record(key(99), b"partial")[..7]);
        io.set_raw(&name, bytes);

        let (cache, report) =
            PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
        assert_eq!(report.loaded, 5);
        assert_eq!(report.truncated_bytes, 7);
        assert!(report.quarantined.is_empty());
        assert_eq!(io.raw(&name).unwrap().len(), full_len);
        for i in 0..5u64 {
            assert!(cache.get(&key(i)).is_some());
        }
    }

    #[test]
    fn corrupt_record_quarantines_segment_but_keeps_prefix() {
        let io = MemIo::new();
        {
            let (cache, _) =
                PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
            for i in 0..4u64 {
                cache.insert(key(i), Blob(vec![i as u8; 16]), 128);
            }
            assert!(cache.flush());
        }
        let name = segment_name(0);
        let mut bytes = io.raw(&name).unwrap();
        // Flip a byte inside the *last* record's payload.
        let pos = bytes.len() - 10;
        bytes[pos] ^= 0x55;
        io.set_raw(&name, bytes);

        let (cache, report) =
            PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("checksum"));
        assert!(report.loaded >= 3, "clean prefix should stay loaded");
        assert!(io.raw(&format!("{name}.bad")).is_some());
        assert!(io.raw(&name).is_none());
        assert!(!cache.degraded(), "fresh active segment still armed");
    }

    #[test]
    fn stale_salt_is_refused_not_quarantined() {
        let io = MemIo::new();
        {
            let (cache, _) =
                PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, salt()).unwrap();
            cache.insert(key(1), Blob(vec![1; 8]), 128);
            assert!(cache.flush());
        }
        let other_salt = CacheKey { hi: 0xFF, lo: 0xEE };
        let (cache, report) =
            PersistentCache::<Blob>::open_with_io(io.clone(), 1 << 20, other_salt).unwrap();
        assert_eq!(report.stale, 1);
        assert_eq!(report.loaded, 0);
        assert!(report.quarantined.is_empty());
        assert!(cache.get(&key(1)).is_none());
        assert!(
            io.raw(&segment_name(0)).is_some(),
            "stale segment must stay in place"
        );
    }

    #[test]
    fn enospc_degrades_and_sheds_without_blocking() {
        let io = FaultIo::new(MemIo::new(), DiskFault::Enospc, 1);
        let (cache, _report) = PersistentCache::<Blob>::open_with_io(io, 1 << 20, salt()).unwrap();
        for i in 0..50u64 {
            cache.insert(key(i), Blob(vec![0; 8]), 64);
        }
        let _ = cache.flush();
        let stats = cache.stats();
        assert!(
            cache.degraded() || stats.degraded > 0,
            "ENOSPC must surface as typed degradation"
        );
        // Memory tier keeps serving regardless.
        assert!(cache.get(&key(0)).is_some());
    }

    #[test]
    fn memory_only_store_has_no_persistence_counters() {
        let cache = PersistentCache::<Blob>::new(1 << 20);
        cache.insert(key(1), Blob(vec![1; 8]), 64);
        assert!(!cache.degraded());
        let stats = cache.stats();
        assert_eq!(stats.bytes_persisted, 0);
        assert_eq!(stats.degraded, 0);
        assert!(cache.flush());
    }
}
