//! Server-level panic isolation (ISSUE S3): a batch containing an episode
//! whose planner panics must yield partial results plus a typed
//! `episode_fault` frame, leave the server serving, keep every surviving
//! episode bit-identical to a clean run, and replay byte-identically on
//! resubmission. Repeat offenders get quarantined once the server's panic
//! budget is spent.
//!
//! The whole suite requires the `fault-injection` feature (the deliberately
//! panicking `panic_injection` stack is not nameable in default builds):
//!
//! ```text
//! cargo test -p cv-server --features fault-injection --test panic_isolation
//! ```
#![cfg(feature = "fault-injection")]

use std::sync::atomic::AtomicBool;
use std::sync::mpsc;
use std::time::Duration;

use cv_server::{
    run_sharded, Client, ClientError, Event, JobLimits, JobOutcome, Server, ServerConfig,
    StackSpecWire,
};
use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, StackSpec};

fn paper_batch(episodes: usize, seed: u64) -> BatchConfig {
    BatchConfig::new(EpisodeConfig::paper_default(seed), episodes)
}

/// Runs `f` on a worker thread and panics if it exceeds `deadline`.
fn with_deadline<T: Send + 'static>(
    deadline: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            worker.join().expect("worker already delivered its value");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked before delivering; resume its panic so
            // the real assertion message surfaces, not a fake timeout.
            match worker.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => unreachable!("worker exited without sending"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: exceeded the {deadline:?} suite deadline")
        }
    }
}

/// Submits the panic-injection batch and collects (faults, summary).
fn submit_panic_batch(
    client: &mut Client,
    batch: &BatchConfig,
) -> (Vec<(usize, String)>, Result<BatchSummary, ClientError>) {
    let mut faults = Vec::new();
    let result = client.submit_batch(batch, StackSpecWire::PanicInjection, |e| {
        if let Event::EpisodeFault { index, kind, .. } = e {
            faults.push((*index, kind.clone()));
        }
    });
    (faults, result)
}

/// The S3 acceptance test: 32 episodes, one injected panic (episode 0, the
/// template seed), exactly one typed fault frame, 31 bit-identical
/// survivors, a still-serving server, and a byte-identical rerun.
#[test]
fn panicking_episode_is_contained_with_bit_identical_survivors() {
    with_deadline(Duration::from_secs(120), "panic isolation e2e", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            // High enough that the rerun below cannot trip quarantine.
            panic_budget: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let batch = paper_batch(32, 71);
        let (faults, result) = submit_panic_batch(&mut client, &batch);
        let summary = result.expect("a contained panic still completes the batch");

        // Exactly one typed fault, at the injected episode.
        assert_eq!(faults, vec![(0, "panicked".to_string())]);
        assert_eq!(summary.requested, 32);
        assert_eq!(summary.episodes, 31);
        assert_eq!(summary.panicked, 1);
        assert_eq!(summary.failed, 0);
        assert_eq!(summary.skipped, 0);

        // Survivors are bit-identical to a clean conservative-teacher run
        // of the same batch (the injection stack is the conservative stack
        // plus the panic hook, so episodes 1..32 must match exactly).
        let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
        let reference = run_batch(&batch, &spec).unwrap();
        assert_eq!(summary.etas.len(), 31);
        for (survivor, reference_result) in summary.etas.iter().zip(reference[1..].iter()) {
            assert_eq!(
                survivor.to_bits(),
                reference_result.eta.to_bits(),
                "survivor diverged from the clean run"
            );
        }

        // The server is still serving — a clean batch on a fresh
        // connection completes normally.
        let mut fresh = Client::connect(server.local_addr()).unwrap();
        let clean = fresh
            .submit_batch(
                &paper_batch(4, 72),
                StackSpecWire::TeacherConservative,
                |_| {},
            )
            .unwrap();
        assert_eq!(clean.episodes, 4);

        // Resubmitting the same batch replays byte-identically: same fault,
        // same statistics, same per-episode bits.
        let (refaults, rerun) = submit_panic_batch(&mut client, &batch);
        let rerun = rerun.expect("rerun completes too");
        assert_eq!(refaults, vec![(0, "panicked".to_string())]);
        assert!(rerun.stats_eq(&summary), "rerun statistics diverged");
        assert_eq!(rerun.etas, summary.etas, "rerun η bits diverged");

        server.shutdown();
    });
}

/// Once a seed has spent the server's panic budget, later encounters are
/// quarantined: skipped with a typed `quarantined` fault instead of being
/// re-run, and counted under `skipped` in the summary.
#[test]
fn repeat_offender_seed_is_quarantined_after_the_budget() {
    with_deadline(Duration::from_secs(120), "quarantine e2e", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            panic_budget: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let batch = paper_batch(4, 73);

        for run in 0..2 {
            let (faults, result) = submit_panic_batch(&mut client, &batch);
            let summary = result.expect("contained panic, batch completes");
            assert_eq!(faults, vec![(0, "panicked".to_string())], "run {run}");
            assert_eq!((summary.panicked, summary.skipped), (1, 0), "run {run}");
        }

        // Third run: the budget (2) is spent, the seed is quarantined.
        let (faults, result) = submit_panic_batch(&mut client, &batch);
        let summary = result.expect("quarantined episode still completes the batch");
        assert_eq!(faults, vec![(0, "quarantined".to_string())]);
        assert_eq!(summary.panicked, 0);
        assert_eq!(summary.skipped, 1);
        assert_eq!(summary.episodes, 3);

        server.shutdown();
    });
}

/// Soak cycle (`scripts/soak.sh`): kill a different shard thread mid-batch
/// every round via the fault-injection kill switch; the coordinator's
/// rescue pass must recover the dead shard's claimed episodes and keep the
/// summary bit-identical to the clean run, round after round.
///
/// `CV_SOAK_ROUNDS` scales the cycle (default 6).
#[test]
#[ignore = "soak cycle; run via scripts/soak.sh"]
fn killing_a_shard_every_round_never_changes_the_summary() {
    let rounds: u64 = std::env::var("CV_SOAK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    const WORKERS: usize = 4;
    let batch = paper_batch(64, 81);
    let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
    let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());

    for round in 0..rounds {
        let killed = (round as usize) % WORKERS;
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(
            &batch,
            &spec,
            JobLimits::new(WORKERS).with_kill_worker(killed),
            &cancel,
            None,
            |_| {},
        );
        match outcome {
            JobOutcome::Completed(summary) => {
                assert!(
                    summary.stats_eq(&reference),
                    "round {round}: summary diverged after killing shard {killed}"
                );
                assert_eq!(
                    summary.etas, reference.etas,
                    "round {round}: η bits diverged after killing shard {killed}"
                );
            }
            other => panic!("round {round}: rescue did not complete the job: {other:?}"),
        }
        println!("round {round}: shard {killed} killed, summary bit-identical");
    }
}
