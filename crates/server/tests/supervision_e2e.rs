//! End-to-end tests for the supervised execution layer: job deadlines,
//! cancellation with partial results, cancellation determinism, and typed
//! overload shedding (including through the cv-chaos proxy).
//!
//! The fault-injection (panic isolation / quarantine) counterpart lives in
//! `panic_isolation.rs` behind the `fault-injection` feature; everything
//! here runs in default builds and is part of the tier-1 gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use cv_chaos::{ChaosProxy, FaultSchedule};
use cv_server::{
    run_sharded, Client, ClientConfig, ClientError, Event, JobLimits, JobOutcome, Progress,
    Request, RetryPolicy, Server, ServerConfig, StackSpecWire,
};
use cv_sim::{run_batch, BatchConfig, EpisodeConfig, StackSpec};

fn paper_batch(episodes: usize, seed: u64) -> BatchConfig {
    BatchConfig::new(EpisodeConfig::paper_default(seed), episodes)
}

/// Runs `f` on a worker thread and panics if it exceeds `deadline` — no
/// test in this suite may hang the gate.
fn with_deadline<T: Send + 'static>(
    deadline: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            worker.join().expect("worker already delivered its value");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked before delivering; resume its panic so
            // the real assertion message surfaces, not a fake timeout.
            match worker.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => unreachable!("worker exited without sending"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: exceeded the {deadline:?} suite deadline")
        }
    }
}

/// Cancels every job the server reports as queued or running — cleanup for
/// tests that deliberately wedge the queue (job ids are not guessable once
/// shed submissions have burned some).
fn cancel_all_active(addr: std::net::SocketAddr) {
    let mut control = Client::connect(addr).unwrap();
    if let Ok(Event::Status { jobs, .. }) = control.round_trip(&Request::Status { job: None }) {
        for j in jobs {
            if j.state == "queued" || j.state == "running" {
                let _ = control.round_trip(&Request::Cancel { job: j.job });
            }
        }
    }
}

/// A job whose deadline expires mid-run stops at episode-step granularity,
/// flushes a typed `deadline_exceeded` frame with a partial summary over
/// exactly the finished episodes, and leaves the server serving.
#[test]
fn deadline_expiry_yields_typed_partial_results_and_a_live_server() {
    with_deadline(Duration::from_secs(120), "deadline e2e", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let mut client = Client::connect(addr).unwrap();
        let mut batch = paper_batch(20_000, 31);
        batch.threads = 1;
        let mut partial = None;
        let mut streamed_done = 0usize;
        let result = client.submit_batch_deadline(
            &batch,
            StackSpecWire::TeacherConservative,
            Some(300),
            |e| match e {
                Event::EpisodeDone { done, .. } => streamed_done = *done,
                Event::DeadlineExceeded { partial: p, .. } => partial = p.clone(),
                _ => {}
            },
        );
        match result {
            Err(ClientError::DeadlineExceeded { done }) => {
                assert!(
                    done < 20_000,
                    "a 300 ms deadline cannot finish 20k episodes"
                );
                assert_eq!(done, streamed_done, "terminal count matches the stream");
                let p = partial.expect("terminal frame carries the partial summary");
                assert_eq!(p.requested, 20_000);
                assert_eq!(
                    p.episodes, done,
                    "partial covers exactly the finished episodes"
                );
                assert_eq!(p.episodes + p.skipped, 20_000);
                assert_eq!(p.etas.len(), done);
            }
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }

        // Status reports the typed phase, and the server still serves.
        match client
            .round_trip(&Request::Status { job: Some(1) })
            .unwrap()
        {
            Event::Status { jobs, .. } => assert_eq!(jobs[0].state, "deadline_exceeded"),
            other => panic!("expected status, got {other:?}"),
        }
        let summary = client
            .submit_batch(
                &paper_batch(2, 32),
                StackSpecWire::TeacherConservative,
                |_| {},
            )
            .unwrap();
        assert_eq!(summary.episodes, 2);
        server.shutdown();
    });
}

/// An already-expired deadline (0 ms) still produces the typed terminal
/// frame — with at most a few straggler episodes completed — rather than
/// an error frame or a hang.
#[test]
fn zero_deadline_is_typed_not_an_error() {
    with_deadline(Duration::from_secs(60), "zero deadline", || {
        let server = Server::spawn_ephemeral().unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let batch = paper_batch(256, 33);
        match client.submit_batch_deadline(
            &batch,
            StackSpecWire::TeacherConservative,
            Some(0),
            |_| {},
        ) {
            Err(ClientError::DeadlineExceeded { done }) => assert!(done < 256),
            other => panic!("expected deadline_exceeded, got {other:?}"),
        }
        server.shutdown();
    });
}

/// A cancel request lands within one episode step and the terminal
/// `cancelled` frame carries a partial summary over the finished episodes.
#[test]
fn cancel_flushes_a_typed_partial_summary() {
    with_deadline(Duration::from_secs(120), "cancel partial", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let submitter = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut batch = paper_batch(20_000, 34);
            batch.threads = 1;
            let mut partial = None;
            let result = client.submit_batch(&batch, StackSpecWire::TeacherConservative, |e| {
                if let Event::Cancelled { partial: p, .. } = e {
                    partial = p.clone();
                }
            });
            (result, partial)
        });
        std::thread::sleep(Duration::from_millis(200));
        let mut control = Client::connect(addr).unwrap();
        control.round_trip(&Request::Cancel { job: 1 }).unwrap();

        let (result, partial) = submitter.join().unwrap();
        match result {
            Err(ClientError::Cancelled { done }) => {
                assert!(done < 20_000, "cancel landed before the batch finished");
                let p = partial.expect("cancelled frame carries the partial summary");
                assert_eq!(p.episodes, done);
                assert_eq!(p.requested, 20_000);
                assert_eq!(p.episodes + p.skipped, 20_000);
                assert_eq!(p.etas.len(), done);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        server.shutdown();
    });
}

/// Regression test for a lost-cancel race: a cancel stored from *another
/// thread* (as the server's cancel handler does) races the worker's own
/// flag check — a worker that sees the flag before the coordinator's poll
/// exits silently, and the coordinator breaks on channel disconnect with
/// `interrupted` still false. The dead-shard rescue pass used to then
/// "rescue" the cancelled job all the way to completion; it now re-polls
/// cancel/deadline before touching any unfilled slot, so an external
/// cancel must always yield a `Cancelled` outcome. The race was
/// timing-dependent (roughly 1 in 6 live), hence the rounds.
#[test]
fn externally_stored_cancel_is_never_lost_to_the_rescue_pass() {
    with_deadline(Duration::from_secs(120), "lost-cancel race", || {
        const EPISODES: usize = 50_000;
        for round in 0..10u64 {
            let batch = paper_batch(EPISODES, 90 + round);
            let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
            let cancel = AtomicBool::new(false);
            let outcome = std::thread::scope(|scope| {
                let canceller = scope.spawn(|| {
                    std::thread::sleep(Duration::from_millis(30));
                    cancel.store(true, Ordering::Relaxed);
                });
                let outcome = run_sharded(&batch, &spec, JobLimits::new(1), &cancel, None, |_| {});
                canceller.join().unwrap();
                outcome
            });
            match outcome {
                JobOutcome::Cancelled { done, partial } => {
                    assert!(done < EPISODES, "round {round}: cancel landed mid-batch");
                    assert_eq!(partial.episodes + partial.skipped, EPISODES);
                }
                other => panic!("round {round}: cancel was lost, got {other:?}"),
            }
        }
    });
}

/// **Cancellation determinism** (ISSUE S4): cancel a batch mid-run, then
/// resubmit exactly the unfinished episodes as single-episode batches; the
/// union of partial and resumed results must be bit-identical to the
/// uncancelled run. 4 seeds × 2 thread counts.
#[test]
fn cancelled_then_resubmitted_episodes_are_bit_identical_to_a_clean_run() {
    with_deadline(Duration::from_secs(240), "cancel determinism", || {
        const EPISODES: usize = 12;
        for seed in [41u64, 42, 43, 44] {
            let batch = paper_batch(EPISODES, seed);
            let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
            let reference = run_batch(&batch, &spec).unwrap();
            for workers in [1usize, 4] {
                // Drive the sharded runner in-process with a cancel flag
                // that trips after 3 completions — the deterministic
                // equivalent of an operator cancelling mid-batch.
                let cancel = AtomicBool::new(false);
                let outcome = run_sharded(
                    &batch,
                    &spec,
                    JobLimits::new(workers),
                    &cancel,
                    None,
                    |progress| {
                        if let Progress::Episode(p) = progress {
                            if p.done >= 3 {
                                cancel.store(true, Ordering::Relaxed);
                            }
                        }
                    },
                );
                let partial = match outcome {
                    JobOutcome::Cancelled { partial, .. } => partial,
                    JobOutcome::Completed(s) => {
                        panic!("seed {seed}/{workers}w: cancel never landed ({s:?})")
                    }
                    other => panic!("seed {seed}/{workers}w: unexpected outcome {other:?}"),
                };
                assert!(
                    partial.episodes >= 3 && partial.episodes < EPISODES,
                    "seed {seed}/{workers}w: partial covered {} episodes",
                    partial.episodes
                );

                // Completed episodes already match the clean run bit for
                // bit; identify them by η (every partial η must appear in
                // the reference).
                let mut matched = [false; EPISODES];
                for eta in &partial.etas {
                    let i = reference
                        .iter()
                        .enumerate()
                        .position(|(i, r)| !matched[i] && r.eta.to_bits() == eta.to_bits())
                        .unwrap_or_else(|| {
                            panic!("seed {seed}/{workers}w: partial η {eta} not in the clean run")
                        });
                    matched[i] = true;
                }

                // Resubmit exactly the unfinished episodes, one batch each
                // (episode i of the original = a 1-episode batch with
                // base_seed + i and start grid [starts[i % len]]).
                for (i, reference_result) in reference.iter().enumerate() {
                    if matched[i] {
                        continue;
                    }
                    let mut single = batch.clone();
                    single.episodes = 1;
                    single.base_seed = batch.base_seed.wrapping_add(i as u64);
                    single.starts = vec![batch.starts[i % batch.starts.len()]];
                    let resumed = run_batch(&single, &spec).unwrap();
                    assert_eq!(
                        resumed[0], *reference_result,
                        "seed {seed}/{workers}w: resumed episode {i} diverged"
                    );
                }
            }
        }
    });
}

/// A batch bigger than the whole episode admission budget is shed
/// immediately with the typed `overloaded` frame and a clamped hint — the
/// deterministic admission-control path, no occupant or timing involved.
#[test]
fn episode_budget_sheds_oversize_submissions_deterministically() {
    with_deadline(Duration::from_secs(60), "episode budget", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_pending_episodes: 10,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        match client.submit_batch(
            &paper_batch(16, 45),
            StackSpecWire::TeacherConservative,
            |_| {},
        ) {
            Err(ClientError::Overloaded { retry_after_ms }) => {
                assert!((50..=10_000).contains(&retry_after_ms));
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        // A batch inside the budget sails through on the same connection.
        let summary = client
            .submit_batch(
                &paper_batch(4, 46),
                StackSpecWire::TeacherConservative,
                |_| {},
            )
            .unwrap();
        assert_eq!(summary.episodes, 4);
        server.shutdown();
    });
}

/// A saturated server answers with the typed `overloaded` frame (carrying
/// a clamped retry hint) — across ≥ 4 seeds, through the cv-chaos proxy,
/// with retries disabled so the shed is observed directly. No connection
/// resets, no hangs, and the running occupants are undisturbed.
#[test]
fn saturated_server_sheds_typed_overloaded_through_the_chaos_proxy() {
    with_deadline(Duration::from_secs(120), "overload shed", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 1,
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        // A clean-schedule proxy still exercises the full relay path: the
        // typed frame must arrive as a frame, not as a reset.
        let proxy = ChaosProxy::start(server.local_addr(), FaultSchedule::clean()).unwrap();
        let addr = proxy.local_addr();

        // Saturate: one job running, one sitting in the capacity-1 queue.
        let occupy = |seed: u64| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut batch = paper_batch(20_000, seed);
                batch.threads = 1;
                client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
            })
        };
        let running = occupy(51);
        std::thread::sleep(Duration::from_millis(150));
        let queued = occupy(52);
        std::thread::sleep(Duration::from_millis(150));

        for seed in [53u64, 54, 55, 56] {
            let config = ClientConfig {
                retry: RetryPolicy::none(),
                ..ClientConfig::default()
            };
            let result = Client::submit_with_retry(
                addr,
                &config,
                &paper_batch(500, seed),
                StackSpecWire::TeacherConservative,
                |_| {},
                |_, _| {},
            );
            match result {
                Err(ClientError::Overloaded { retry_after_ms }) => {
                    assert!(
                        (50..=10_000).contains(&retry_after_ms),
                        "seed {seed}: hint {retry_after_ms} outside the clamp"
                    );
                }
                other => panic!("seed {seed}: expected overloaded, got {other:?}"),
            }
        }

        // The occupants were shed around, not reset: both report typed
        // cancellation (the cleanup) rather than I/O errors.
        cancel_all_active(addr);
        for (label, handle) in [("running", running), ("queued", queued)] {
            match handle.join().unwrap() {
                Ok(_) | Err(ClientError::Cancelled { .. }) => {}
                Err(other) => panic!("{label} occupant saw a non-typed end: {other}"),
            }
        }
        proxy.shutdown();
        server.shutdown();
    });
}

/// `submit_with_retry` treats the server's `retry_after_ms` hint as a
/// floor on its next backoff sleep and converges once capacity frees up;
/// with a tiny `retry_deadline` it instead surfaces the typed overload
/// error quickly rather than sleeping out the hint schedule.
#[test]
fn retry_honours_the_overload_hint_and_the_retry_deadline() {
    with_deadline(Duration::from_secs(180), "overload retry", || {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 1,
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        // Phase 1 — convergence: occupants that drain while the shed
        // client backs off.
        let occupy = |seed: u64, episodes: usize| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut batch = paper_batch(episodes, seed);
                batch.threads = 1;
                client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
            })
        };
        let first = occupy(61, 6_000);
        std::thread::sleep(Duration::from_millis(100));
        let second = occupy(62, 6_000);
        std::thread::sleep(Duration::from_millis(100));

        let config = ClientConfig {
            retry: RetryPolicy {
                max_attempts: 40,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                jitter_seed: 63,
                retry_deadline: None,
            },
            ..ClientConfig::default()
        };
        let mut overloads = 0u32;
        let summary = Client::submit_with_retry(
            addr,
            &config,
            &paper_batch(50, 64),
            StackSpecWire::TeacherConservative,
            |_| {},
            |_, e| {
                if matches!(e, ClientError::Overloaded { .. }) {
                    overloads += 1;
                }
            },
        )
        .expect("retry converges once the occupants drain");
        assert_eq!(summary.episodes, 50);
        assert!(overloads >= 1, "the saturated phase was never observed");
        first.join().unwrap().expect("first occupant completes");
        second.join().unwrap().expect("second occupant completes");

        // Phase 2 — the bound: occupants that will NOT drain in time, and
        // a retry_deadline far below the 50 ms hint floor.
        let first = occupy(65, 20_000);
        std::thread::sleep(Duration::from_millis(100));
        let second = occupy(66, 20_000);
        std::thread::sleep(Duration::from_millis(100));
        let bounded = ClientConfig {
            retry: RetryPolicy {
                max_attempts: 40,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                jitter_seed: 67,
                retry_deadline: Some(Duration::from_millis(10)),
            },
            ..ClientConfig::default()
        };
        let t0 = Instant::now();
        let result = Client::submit_with_retry(
            addr,
            &bounded,
            &paper_batch(50, 68),
            StackSpecWire::TeacherConservative,
            |_| {},
            |_, _| {},
        );
        assert!(
            matches!(result, Err(ClientError::Overloaded { .. })),
            "bounded retry must surface the typed overload, got {result:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "retry_deadline must prevent sleeping out the full hint schedule"
        );

        cancel_all_active(addr);
        for handle in [first, second] {
            match handle.join().unwrap() {
                Ok(_) | Err(ClientError::Cancelled { .. }) => {}
                Err(other) => panic!("occupant saw a non-typed end: {other}"),
            }
        }
        server.shutdown();
    });
}
