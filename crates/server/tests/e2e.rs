//! End-to-end tests over a real TCP socket: an ephemeral server, the
//! blocking client, and the acceptance criteria from the service design —
//! bit-identical summaries, malformed-input robustness, mid-batch
//! disconnects, backpressure, and graceful shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use cv_server::{Client, ClientError, Event, Request, Server, ServerConfig, StackSpecWire};
use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, StackSpec};

fn paper_batch(episodes: usize, seed: u64) -> BatchConfig {
    BatchConfig::new(EpisodeConfig::paper_default(seed), episodes)
}

#[test]
fn streamed_summary_is_bit_identical_to_in_process_run_batch() {
    let server = Server::spawn_ephemeral().unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let batch = paper_batch(16, 1);
    let mut episode_events = Vec::new();
    let streamed = client
        .submit_batch(&batch, StackSpecWire::TeacherConservative, |event| {
            if let Event::EpisodeDone { index, eta, .. } = event {
                episode_events.push((*index, *eta));
            }
        })
        .unwrap();

    let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
    let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());

    // Paper-statistics acceptance: reaching time, safe rate, mean η,
    // emergency frequency, and the per-episode ηs all match exactly.
    assert!(streamed.stats_eq(&reference));
    assert_eq!(streamed.etas, reference.etas);
    assert!(streamed.wall_time_secs > 0.0, "server side measures timing");

    // Every episode was streamed exactly once, with its true η.
    episode_events.sort_unstable_by_key(|(i, _)| *i);
    assert_eq!(episode_events.len(), 16);
    for (i, (index, eta)) in episode_events.iter().enumerate() {
        assert_eq!(*index, i);
        assert_eq!(*eta, reference.etas[i]);
    }

    server.shutdown();
}

#[test]
fn malformed_requests_get_error_frames_and_the_connection_survives() {
    let server = Server::spawn_ephemeral().unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    for bad in [
        "this is not json\n",
        "{\"op\":\"submit_batch\"}\n", // valid JSON, missing payload
        "{\"op\":\"warp_drive\"}\n",   // unknown op
        "{\"op\":\"submit_batch\",\"stack\":\"ultimate\",\"batch\":{}}\n",
    ] {
        stream.write_all(bad.as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"event\":\"error\""),
            "expected error frame for {bad:?}, got {line:?}"
        );
    }

    // The same connection still answers a well-formed request.
    stream.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"event\":\"pong\""));

    server.shutdown();
}

#[test]
fn empty_start_grid_is_rejected_with_invalid_batch() {
    let server = Server::spawn_ephemeral().unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut batch = paper_batch(4, 0);
    batch.starts.clear();
    match client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {}) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "invalid_batch"),
        other => panic!("expected invalid_batch rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn client_disconnect_mid_batch_cancels_without_killing_the_server() {
    let server = Server::spawn_ephemeral().unwrap();

    // Submit a long batch raw, read the accepted frame plus one progress
    // frame, then slam the connection shut.
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let batch = paper_batch(64, 3);
        let frame = Request::SubmitBatch {
            batch,
            stack: StackSpecWire::TeacherConservative,
            deadline_ms: None,
        }
        .to_json()
        .encode();
        stream.write_all(format!("{frame}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"event\":\"accepted\""));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"event\":\"episode_done\""));
    } // both halves dropped: TCP reset/close mid-stream

    // The server keeps serving new clients and completes new work.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let summary = client
        .submit_batch(&paper_batch(2, 5), StackSpecWire::TeacherAggressive, |_| {})
        .unwrap();
    assert_eq!(summary.episodes, 2);

    // The abandoned job wound up cancelled (or finished, on a fast box —
    // but never left running forever).
    let reply = client
        .round_trip(&Request::Status { job: Some(1) })
        .unwrap();
    match reply {
        Event::Status { jobs, .. } => {
            assert_eq!(jobs.len(), 1);
            assert!(
                jobs[0].state == "cancelled" || jobs[0].state == "done",
                "job 1 in state {}",
                jobs[0].state
            );
        }
        other => panic!("expected status, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn full_queue_pushes_back_with_a_typed_overloaded_frame() {
    // Capacity-1 queue and a single worker thread: one running job, one
    // queued job, and the third submission must bounce.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 1,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let occupy = |seed: u64| {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Large enough to still be running when the third submission
        // arrives, even though single episodes take well under a millisecond.
        let mut batch = paper_batch(5_000, seed);
        batch.threads = 1;
        let frame = Request::SubmitBatch {
            batch,
            stack: StackSpecWire::TeacherConservative,
            deadline_ms: None,
        }
        .to_json()
        .encode();
        stream.write_all(format!("{frame}\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"event\":\"accepted\""), "got {line:?}");
        stream
    };
    // First job: popped by the runner and running. Second: sits in the queue.
    let _running = occupy(10);
    std::thread::sleep(std::time::Duration::from_millis(100));
    let _queued = occupy(11);
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut client = Client::connect(addr).unwrap();
    match client.submit_batch(
        &paper_batch(4, 12),
        StackSpecWire::TeacherConservative,
        |_| {},
    ) {
        Err(e @ ClientError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 50, "hint below floor: {retry_after_ms}");
            assert!(e.is_retryable(), "overload must invite a retry");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // Cancel both occupants so the drop below drains quickly.
    client.round_trip(&Request::Cancel { job: 1 }).unwrap();
    client.round_trip(&Request::Cancel { job: 2 }).unwrap();
    drop(server);
}

#[test]
fn shutdown_drains_in_flight_jobs_before_exiting() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 4,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Submit a batch, then send shutdown from a second connection while it
    // runs; the submitter must still receive its full summary.
    let submitter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut batch = paper_batch(24, 7);
        batch.threads = 1;
        client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
    });
    std::thread::sleep(std::time::Duration::from_millis(150));

    let mut control = Client::connect(addr).unwrap();
    match control.round_trip(&Request::Shutdown).unwrap() {
        Event::ShutdownAck { .. } => {}
        other => panic!("expected shutdown_ack, got {other:?}"),
    }

    let summary = submitter.join().unwrap().expect("draining job completes");
    assert_eq!(summary.episodes, 24);

    // New submissions are refused while draining/after exit: either the
    // connection is refused outright or the server answers shutting_down.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            match late.submit_batch(
                &paper_batch(2, 9),
                StackSpecWire::TeacherConservative,
                |_| {},
            ) {
                Err(ClientError::Server { code, .. }) => assert_eq!(code, "shutting_down"),
                Err(ClientError::Io(_)) => {}
                other => panic!("late submission should fail, got {other:?}"),
            }
        }
    }

    server.wait(); // returns because shutdown was requested
}

#[test]
fn cancel_request_stops_a_running_job() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 4,
        workers: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let submitter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut batch = paper_batch(20_000, 21);
        batch.threads = 1;
        client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
    });
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut control = Client::connect(addr).unwrap();
    control.round_trip(&Request::Cancel { job: 1 }).unwrap();

    match submitter.join().unwrap() {
        Err(ClientError::Cancelled { done }) => assert!(done < 20_000),
        Ok(_) => panic!("20000-episode job finished before the cancel landed"),
        Err(other) => panic!("expected cancellation, got {other}"),
    }
    server.shutdown();
}

#[test]
fn server_closes_idle_connections_on_shutdown() {
    let server = Server::spawn_ephemeral().unwrap();
    let mut idle = TcpStream::connect(server.local_addr()).unwrap();
    server.shutdown(); // must not hang on the idle connection
    let mut buf = [0u8; 16];
    assert_eq!(idle.read(&mut buf).unwrap(), 0, "idle connection closed");
}
