//! Property-style tests for the wire codec: seeded random JSON values
//! round-trip bit-identically, protocol payloads survive size and UTF-8
//! extremes, and malformed input always yields a typed error — never a
//! panic, never an unbounded buffer.

use std::io::BufReader;

use cv_rng::{derive_seed, Rng, SplitMix64, PROP_CASES};
use cv_server::wire::Json;
use cv_server::{
    protocol::{batch_from_json, batch_to_json},
    FrameError, FrameReader, MAX_FRAME_BYTES,
};
use cv_sim::{BatchConfig, EpisodeConfig};

/// Characters chosen to stress the encoder/parser: escapes, multi-byte
/// UTF-8 (2, 3 and 4 bytes — the last needing a surrogate pair in `\u`
/// form), control characters, and JSON-syntax look-alikes.
const TRICKY_CHARS: [char; 16] = [
    '"',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{08}',
    '\u{0C}',
    '\u{1F}',
    '/',
    '{',
    '}',
    'é',
    'π',
    '→',
    '🚗',
    '\u{10FFFF}',
];

fn random_string(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| {
            if rng.random_bool(0.5) {
                TRICKY_CHARS[rng.random_index(TRICKY_CHARS.len())]
            } else {
                // Printable ASCII.
                char::from(rng.random_range(0x20..=0x7Eu32) as u8)
            }
        })
        .collect()
}

/// Length-extreme f64s: subnormals, extremes, negative zero, and values
/// whose shortest decimal form needs all 17 significant digits.
fn random_f64(rng: &mut SplitMix64) -> f64 {
    match rng.random_range(0..6u32) {
        0 => f64::MIN_POSITIVE,
        1 => 5e-324, // smallest subnormal
        2 => f64::MAX,
        3 => -0.0,
        4 => 0.1 + 0.2, // classic shortest-round-trip stressor
        _ => f64::from_bits(rng.next_u64()),
    }
}

fn random_int(rng: &mut SplitMix64) -> i128 {
    match rng.random_range(0..5u32) {
        0 => i128::MAX,
        1 => i128::MIN,
        2 => i64::MAX as i128,
        3 => 0,
        _ => rng.next_u64() as i128 - (u64::MAX / 2) as i128,
    }
}

/// Seeded random JSON value with bounded depth and fan-out.
fn random_json(rng: &mut SplitMix64, depth: usize) -> Json {
    let leaf_only = depth == 0;
    match rng.random_range(0..if leaf_only { 5 } else { 7u32 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => {
            let x = random_f64(rng);
            // The codec encodes non-finite floats as null by design; keep
            // the generated tree at finite values so equality is exact.
            if x.is_finite() {
                Json::Num(x)
            } else {
                Json::Int(random_int(rng))
            }
        }
        3 => Json::Int(random_int(rng)),
        4 => Json::Str(random_string(rng, 24)),
        5 => Json::Arr(
            (0..rng.random_range(0..=4usize))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.random_range(0..=4usize))
                .map(|i| {
                    (
                        format!("{}{i}", random_string(rng, 8)),
                        random_json(rng, depth - 1),
                    )
                })
                .collect(),
        ),
    }
}

/// Structural equality that treats every NaN as equal to every NaN (the
/// codec's `null`↔NaN mapping never appears here because the generator is
/// finite-only, but random bit patterns in nested floats deserve care).
fn roundtrips(v: &Json) {
    let encoded = v.encode();
    let back = Json::parse(&encoded).unwrap_or_else(|e| panic!("parse failed on {encoded:?}: {e}"));
    assert_eq!(&back, v, "value changed across the wire: {encoded:?}");
    // Second generation is bit-identical: encoding is a fixed point.
    assert_eq!(back.encode(), encoded, "encoding is not a fixed point");
}

#[test]
fn random_values_roundtrip_bit_identically() {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(0, "wire-props.roundtrip"));
    for _ in 0..PROP_CASES {
        roundtrips(&random_json(&mut rng, 3));
    }
}

#[test]
fn utf8_boundary_payloads_roundtrip() {
    // Every tricky char alone, and as a payload crossing typical buffer
    // boundaries (the 4-byte scalar straddling an 8 KiB edge).
    for c in TRICKY_CHARS {
        roundtrips(&Json::str(c.to_string()));
    }
    let mut s = "x".repeat(8191);
    s.push('🚗');
    s.push_str(&"y".repeat(37));
    roundtrips(&Json::str(s));
    // Surrogate-pair escapes decode to the astral char and re-encode raw.
    let parsed = Json::parse("\"\\ud83d\\ude97\"").unwrap();
    assert_eq!(parsed, Json::str("🚗"));
    roundtrips(&parsed);
}

#[test]
fn length_extremes_roundtrip() {
    roundtrips(&Json::str(""));
    roundtrips(&Json::Arr(vec![]));
    roundtrips(&Json::Obj(vec![]));
    // Deep nesting (recursive-descent parser must handle it).
    let mut deep = Json::Int(1);
    for _ in 0..64 {
        deep = Json::Arr(vec![deep]);
    }
    roundtrips(&deep);
    // A wide array of every scalar shape.
    roundtrips(&Json::Arr(
        (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    Json::Int(i)
                } else {
                    Json::Num(i as f64 * 0.1)
                }
            })
            .collect(),
    ));
}

/// A batch with a start grid large enough to produce a frame within an
/// order of magnitude of the cap must encode, frame, and decode exactly.
#[test]
fn max_size_batches_survive_the_full_framing_path() {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(0, "wire-props.batch"));
    let mut batch = BatchConfig::new(EpisodeConfig::paper_default(9), 50_000);
    batch.starts = (0..50_000)
        .map(|_| rng.random_range(-60.0..-20.0))
        .collect();
    let frame = batch_to_json(&batch).encode();
    assert!(
        frame.len() > 500_000 && frame.len() < MAX_FRAME_BYTES,
        "frame size {} out of the intended test band",
        frame.len()
    );
    // Through the frame reader, as the server would receive it.
    let wire = format!("{frame}\n");
    let mut reader = FrameReader::new(BufReader::new(wire.as_bytes()), MAX_FRAME_BYTES);
    let line = reader.read_frame().unwrap();
    let decoded = batch_from_json(&Json::parse(&line).unwrap()).unwrap();
    assert_eq!(
        decoded.starts, batch.starts,
        "float grid must be bit-identical"
    );
    assert_eq!(decoded.episodes, batch.episodes);
    assert_eq!(batch_to_json(&decoded).encode(), frame);
}

/// Negative space: an oversize frame is a typed `TooLong` (the JSON-lines
/// analog of an oversize length prefix) and a mid-frame EOF is a typed
/// `Truncated` — in both cases before buffering anything unbounded.
#[test]
fn oversize_and_truncated_frames_yield_typed_errors() {
    let huge = "x".repeat(4096); // no newline, far over the cap
    let mut reader = FrameReader::new(BufReader::new(huge.as_bytes()), 256);
    match reader.read_frame() {
        Err(FrameError::TooLong { limit }) => assert_eq!(limit, 256),
        other => panic!("expected TooLong, got {other:?}"),
    }

    let cut = "{\"op\":\"submit_batch\",\"batch\":{\"episo";
    let mut reader = FrameReader::new(BufReader::new(cut.as_bytes()), 256);
    match reader.read_frame() {
        Err(FrameError::Truncated { partial }) => assert_eq!(partial, cut.len()),
        other => panic!("expected Truncated, got {other:?}"),
    }
}

/// Truncating a valid encoding at every seeded random byte offset must
/// produce a parse error or (for a prefix that happens to be complete —
/// impossible here since the value is an object) a value; never a panic.
#[test]
fn truncated_encodings_never_panic() {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(0, "wire-props.truncate"));
    for _ in 0..PROP_CASES {
        let v = Json::Obj(vec![("k".to_string(), random_json(&mut rng, 2))]);
        let encoded = v.encode();
        let cut = rng.random_range(0..encoded.len());
        // Cut on a char boundary (the wire is &str; byte-level truncation
        // mid-scalar is FrameReader territory, covered above).
        let mut cut_at = cut;
        while !encoded.is_char_boundary(cut_at) {
            cut_at -= 1;
        }
        match Json::parse(&encoded[..cut_at]) {
            Err(e) => assert!(e.at <= cut_at, "error offset {} past input", e.at),
            Ok(parsed) => panic!("truncated object parsed as {parsed:?}"),
        }
    }
}

/// Seeded random garbage bytes: every outcome is `Ok` or a typed
/// `ParseError` with an in-bounds offset — the parser never panics on
/// arbitrary input.
#[test]
fn random_garbage_never_panics() {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(0, "wire-props.garbage"));
    let palette = b"{}[]\",:0123456789.eE+-truefalsnl\\u \t\x7f";
    for _ in 0..PROP_CASES {
        let len = rng.random_range(0..=64usize);
        let garbage: String = (0..len)
            .map(|_| char::from(palette[rng.random_index(palette.len())]))
            .collect();
        if let Err(e) = Json::parse(&garbage) {
            assert!(e.at <= garbage.len());
            assert!(!e.msg.is_empty());
        }
    }
}
