//! Disk-fault matrix for the persistent cache tier (ISSUE 9 tentpole).
//!
//! Storage faults are treated exactly like the communication faults of
//! `chaos_e2e`: injected deterministically (seeded [`FaultIo`] schedules),
//! typed when they surface (degradation counters, quarantine reports, torn
//! tails truncated), and *never* allowed to corrupt a served result. The
//! matrix runs every [`DiskFault`] kind against multiple seeds; every cell
//! must end in typed degradation or clean recovery — no hangs, no panics —
//! with all served episode summaries bit-identical to an uncached run.
//!
//! The kill -9 scenario goes through the real directory-backed store: a
//! partial record appended to a segment file is exactly the on-disk state a
//! SIGKILL mid-append leaves behind, and recovery must truncate it while
//! serving every fully-written record as a persisted hit.

use std::sync::atomic::AtomicBool;

use cv_cache::{DiskFault, FaultIo, MemIo, RecoveryReport};
use cv_server::{run_sharded, run_sharded_cached, JobLimits, JobOutcome};
use cv_sim::{store_salt, BatchConfig, BatchSummary, EpisodeCache, EpisodeConfig, StackSpec};

const FAULTS: [DiskFault; 5] = [
    DiskFault::ShortWrite,
    DiskFault::Enospc,
    DiskFault::FsyncFail,
    DiskFault::ReadCorrupt,
    DiskFault::TornTail,
];

fn fault_name(fault: DiskFault) -> &'static str {
    match fault {
        DiskFault::ShortWrite => "short-write",
        DiskFault::Enospc => "enospc",
        DiskFault::FsyncFail => "fsync-fail",
        DiskFault::ReadCorrupt => "read-corrupt",
        DiskFault::TornTail => "torn-tail",
    }
}

fn paper_batch(seed: u64, episodes: usize) -> (BatchConfig, StackSpec) {
    let template = EpisodeConfig::paper_default(seed);
    let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
    (BatchConfig::new(template, episodes), spec)
}

fn run_cached(batch: &BatchConfig, spec: &StackSpec, cache: &EpisodeCache) -> BatchSummary {
    let cancel = AtomicBool::new(false);
    match run_sharded_cached(
        batch,
        spec,
        JobLimits::new(2),
        &cancel,
        None,
        Some(cache),
        |_| {},
    ) {
        JobOutcome::Completed(summary) => summary,
        other => panic!("expected completion, got {other:?}"),
    }
}

fn run_uncached(batch: &BatchConfig, spec: &StackSpec) -> BatchSummary {
    let cancel = AtomicBool::new(false);
    match run_sharded(batch, spec, JobLimits::new(2), &cancel, None, |_| {}) {
        JobOutcome::Completed(summary) => summary,
        other => panic!("expected completion, got {other:?}"),
    }
}

fn assert_bit_identical(reference: &BatchSummary, got: &BatchSummary, context: &str) {
    assert!(
        reference.stats_eq(got),
        "{context}: deterministic statistics diverged from the uncached run"
    );
    assert_eq!(
        reference
            .etas
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        got.etas.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "{context}: per-episode etas diverged"
    );
}

/// Whether the cell surfaced its fault through one of the typed channels:
/// the degradation counters, the quarantine report, or a truncated tail.
fn typed_outcome(
    fault: DiskFault,
    cold_degraded: bool,
    cache: &EpisodeCache,
    open_report: &RecoveryReport,
    reopen_report: &RecoveryReport,
) -> bool {
    let degraded = cold_degraded
        || cache.degraded()
        || cache.stats().degraded > 0
        || open_report.degraded
        || reopen_report.degraded;
    match fault {
        // Write-side faults must flip the degradation ladder somewhere.
        DiskFault::ShortWrite | DiskFault::Enospc | DiskFault::FsyncFail => degraded,
        // Read corruption must quarantine (or, if the flipped byte landed
        // in the part of the tail a torn-tail truncate removed, count as
        // truncation) — degradation is also legal if the corrupted read
        // happened while arming the active segment.
        DiskFault::ReadCorrupt => {
            !reopen_report.quarantined.is_empty()
                || reopen_report.truncated_bytes > 0
                || reopen_report.stale > 0
                || degraded
        }
        // A torn tail must be recovered by truncation (or quarantined if
        // the cut landed inside the header).
        DiskFault::TornTail => {
            reopen_report.truncated_bytes > 0 || !reopen_report.quarantined.is_empty() || degraded
        }
    }
}

/// One cell of the matrix: cold run under the fault, flush, "crash"
/// (drop), reopen under the same fault, warm run. The cell passes when both
/// runs complete with summaries bit-identical to the uncached reference and
/// the fault surfaced through a typed channel.
fn run_cell(fault: DiskFault, seed: u64) {
    let context = format!("fault {} seed {seed}", fault_name(fault));
    let (batch, spec) = paper_batch(seed, 8);
    let reference = run_uncached(&batch, &spec);

    let disk = MemIo::new();
    let salt = store_salt();
    let (cache, open_report) =
        EpisodeCache::open_with_io(FaultIo::new(disk.clone(), fault, seed), 1 << 20, salt)
            .expect("open_with_io fails only when the directory is unlistable");

    let cold = run_cached(&batch, &spec, &cache);
    assert_bit_identical(&reference, &cold, &format!("{context}: cold run"));
    // Flush may legitimately fail under injected faults — it must report
    // that as `false`, not hang or panic. A failed flush (durability lost)
    // counts as the cold side's typed degradation signal.
    let cold_degraded = !cache.flush() || cache.degraded() || cache.stats().degraded > 0;
    drop(cache);

    let (cache, reopen_report) = EpisodeCache::open_with_io(
        FaultIo::new(disk, fault, seed.wrapping_add(1)),
        1 << 20,
        salt,
    )
    .expect("reopen");
    let warm = run_cached(&batch, &spec, &cache);
    assert_bit_identical(&reference, &warm, &format!("{context}: warm run"));
    assert_eq!(
        warm.episodes, 8,
        "{context}: warm run must complete every episode"
    );

    assert!(
        typed_outcome(fault, cold_degraded, &cache, &open_report, &reopen_report),
        "{context}: fault surfaced through no typed channel \
         (open {open_report:?}, reopen {reopen_report:?}, stats {:?})",
        cache.stats()
    );
}

#[test]
fn disk_fault_matrix_every_cell_degrades_typed_and_serves_bit_identical() {
    for fault in FAULTS {
        for seed in [1u64, 17, 83, 301] {
            run_cell(fault, seed);
        }
    }
}

#[test]
fn clean_disk_round_trip_serves_persisted_hits_bit_identical() {
    // The no-fault baseline for the matrix: cold run populates the store,
    // a reopened store serves 100% persisted hits, bit-identical.
    let (batch, spec) = paper_batch(7, 8);
    let reference = run_uncached(&batch, &spec);
    let disk = MemIo::new();
    let salt = store_salt();

    let (cache, report) = EpisodeCache::open_with_io(disk.clone(), 1 << 20, salt).unwrap();
    assert_eq!(report.loaded, 0);
    let cold = run_cached(&batch, &spec, &cache);
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 8));
    assert_eq!(cold.cache_persisted_hits, 0);
    assert!(cache.flush(), "clean flush must succeed");
    drop(cache);

    let (cache, report) = EpisodeCache::open_with_io(disk, 1 << 20, salt).unwrap();
    assert_eq!(report.loaded, 8, "every episode result must be recovered");
    assert!(report.quarantined.is_empty());
    assert_eq!(report.truncated_bytes, 0);
    let warm = run_cached(&batch, &spec, &cache);
    assert_eq!((warm.cache_hits, warm.cache_misses), (8, 0));
    assert_eq!(
        warm.cache_persisted_hits, 8,
        "warm-restart hits must be counted as persisted"
    );
    assert_bit_identical(&reference, &warm, "clean disk round trip");
}

#[test]
fn kill_dash_nine_mid_append_truncates_tail_and_serves_the_prefix() {
    // Through the real directory-backed store. The "crash" is simulated at
    // the on-disk level: a partial record appended to the active segment is
    // byte-for-byte the state a SIGKILL mid-`write` leaves behind.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("kill9-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let (batch, spec) = paper_batch(23, 8);
    let reference = run_uncached(&batch, &spec);
    let salt = store_salt();

    let (cache, _) = EpisodeCache::open(&dir, 1 << 20, salt).unwrap();
    let cold = run_cached(&batch, &spec, &cache);
    assert_eq!(cold.cache_misses, 8);
    assert!(cache.flush());
    drop(cache);

    // Append a torn record to the segment a real kill -9 would tear.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("a segment file exists");
    use std::io::Write;
    let intact_len = std::fs::metadata(&seg).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&[0x2A, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE])
        .unwrap();
    drop(f);

    let (cache, report) = EpisodeCache::open(&dir, 1 << 20, salt).unwrap();
    assert_eq!(
        report.truncated_bytes, 7,
        "exactly the torn bytes are truncated"
    );
    assert_eq!(report.loaded, 8, "every fully-written record is recovered");
    assert!(
        report.quarantined.is_empty(),
        "a torn tail is not corruption"
    );
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len(),
        intact_len,
        "the segment is repaired in place"
    );

    let warm = run_cached(&batch, &spec, &cache);
    assert_eq!(
        (
            warm.cache_hits,
            warm.cache_misses,
            warm.cache_persisted_hits
        ),
        (8, 0, 8),
        "restart after kill -9 must serve 100% persisted hits"
    );
    assert_bit_identical(&reference, &warm, "post-kill-9 warm run");
    drop(cache);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_salt_directory_is_refused_and_recomputed() {
    // A cache dir written under a different salt (stale binary) must be
    // refused wholesale: zero hits served, results recomputed, segments
    // left in place for the binary that owns them.
    let (batch, spec) = paper_batch(41, 6);
    let reference = run_uncached(&batch, &spec);
    let disk = MemIo::new();

    let old_salt = cv_cache::CacheKey {
        hi: 0xDEAD,
        lo: 0xBEEF,
    };
    let (cache, _) = EpisodeCache::open_with_io(disk.clone(), 1 << 20, old_salt).unwrap();
    let _ = run_cached(&batch, &spec, &cache);
    assert!(cache.flush());
    drop(cache);

    let (cache, report) = EpisodeCache::open_with_io(disk, 1 << 20, store_salt()).unwrap();
    assert_eq!(report.stale, 1, "foreign segment counted as stale");
    assert_eq!(report.loaded, 0, "no foreign record may be served");
    assert!(report.quarantined.is_empty(), "stale is not corruption");
    let recomputed = run_cached(&batch, &spec, &cache);
    assert_eq!(
        (recomputed.cache_hits, recomputed.cache_misses),
        (0, 6),
        "a stale store serves nothing"
    );
    assert_bit_identical(&reference, &recomputed, "stale-salt recompute");
}

/// Wider seed sweep for soak.sh (`--ignored`): same matrix, more seeds,
/// controlled by `CV_SOAK_SEEDS` (default 16).
#[test]
#[ignore]
fn disk_fault_soak() {
    let seeds: u64 = std::env::var("CV_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    for fault in FAULTS {
        for s in 0..seeds {
            run_cell(fault, 1000 + s * 7);
        }
    }
}
