//! Chaos tests: the cv-server client/server pair driven through the
//! `cv-chaos` fault-injection proxy across a seeded fault matrix.
//!
//! The invariants under test, per ISSUE acceptance:
//!
//! * **no hangs** — every cell finishes under a global watchdog deadline;
//! * **no panics** — faults surface as typed [`ClientError`]s, never
//!   unwinds;
//! * **bit-identical or typed error** — a batch that completes through
//!   chaos matches the direct in-process `run_batch` exactly (same
//!   per-episode `η`s, same statistics); anything else is a typed error;
//! * **reproducible** — the same seed produces the same per-cell outcome
//!   (attempt count and result class) on a rerun;
//! * **transparent recovery** — with a bounded fault budget and retry
//!   enabled, the client converges to the bit-identical summary without
//!   the caller seeing any error at all.
//!
//! The default tests keep the matrix small enough for the tier-1 gate;
//! the `#[ignore]`d soak test (run via `scripts/soak.sh`) scales the same
//! harness up in seeds, concurrency, and batch size.

use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use cv_chaos::{ChaosProxy, ConnPlan, Fault, FaultSchedule};
use cv_comm::CommSetting;
use cv_rng::{derive_seed, Rng, SplitMix64};
use cv_server::{
    Client, ClientConfig, ClientError, Request, RetryPolicy, Server, ServerConfig, StackSpecWire,
};
use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, PlatoonSpec, StackSpec};

/// The six injected fault kinds of the matrix (direction varies by seed).
const FAULT_KINDS: [&str; 6] = [
    "delay",
    "throttle",
    "truncate",
    "reset",
    "silent_drop",
    "stall",
];

fn paper_batch(episodes: usize, seed: u64) -> BatchConfig {
    BatchConfig::new(EpisodeConfig::paper_default(seed), episodes)
}

/// A 4-vehicle platoon batch with *independent per-pair V2V channels*: the
/// first follower's channel is stalled outright (`Lost`), the others stay
/// clean. The platoon row of the matrix drives this template through the
/// same transport faults as the paper batch — two fault layers at once.
fn platoon_batch(episodes: usize, seed: u64) -> BatchConfig {
    let mut platoon = PlatoonSpec::paper_default(4, seed).expect("n = 4 is valid");
    platoon.followers[0].comm = Some(CommSetting::Lost);
    BatchConfig::new(platoon.episode(), episodes)
}

/// The in-process ground truth a chaos-surviving summary must match
/// bit-for-bit.
fn reference_summary(batch: &BatchConfig) -> BatchSummary {
    let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
    BatchSummary::from_results(&run_batch(batch, &spec).unwrap())
}

fn assert_bit_identical(streamed: &BatchSummary, reference: &BatchSummary, context: &str) {
    assert!(
        streamed.stats_eq(reference),
        "{context}: summary statistics diverged from the direct path"
    );
    assert_eq!(
        streamed.etas, reference.etas,
        "{context}: per-episode etas diverged from the direct path"
    );
}

/// Client tuned for chaos: short enough timeouts that starvation faults
/// fail fast, a deterministic jittered backoff, and a retry budget that
/// out-lasts every matrix schedule's fault budget.
fn chaos_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(1),
        write_timeout: Duration::from_secs(2),
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
            jitter_seed: seed,
            retry_deadline: None,
        },
        ..ClientConfig::default()
    }
}

/// Runs `f` on a worker thread and panics if it exceeds `deadline` — the
/// suite-wide no-hang guarantee. The payload's own panics propagate.
fn with_deadline<T: Send + 'static>(
    deadline: Duration,
    label: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(deadline) {
        Ok(value) => {
            let _ = worker.join();
            value
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("hang detected: {label} exceeded the {deadline:?} global deadline")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked; join to surface its message.
            match worker.join() {
                Err(e) => std::panic::resume_unwind(e),
                Ok(()) => unreachable!("worker vanished without sending"),
            }
        }
    }
}

/// The deterministic fault for matrix cell `(kind, seed)`. Cutoffs are
/// derived from `request_len` so byte-shaped faults on the upstream
/// direction always land mid-request, whatever the encoded size is.
fn fault_for(kind: &str, seed: u64, request_len: usize) -> Fault {
    let mut rng = SplitMix64::seed_from_u64(derive_seed(seed, "chaos-matrix.params"));
    let cutoff = rng.random_range(1..=request_len.saturating_sub(2).max(1));
    match kind {
        "delay" => Fault::Delay {
            millis: rng.random_range(20..=250u64),
        },
        "throttle" => Fault::Throttle {
            chunk: rng.random_range(256..=512usize),
            pause_millis: rng.random_range(1..=2u64),
        },
        "truncate" => Fault::Truncate {
            after_bytes: cutoff,
        },
        "reset" => Fault::Reset {
            after_bytes: cutoff,
        },
        "silent_drop" => Fault::SilentDrop {
            after_bytes: cutoff,
        },
        "stall" => Fault::Stall,
        other => panic!("unknown fault kind {other}"),
    }
}

/// What one matrix cell produced. `result` is `"ok"` (bit-identical
/// summary) or `"err:..."` (typed error class); `attempts` counts
/// connections the retry loop actually made. Both must reproduce exactly
/// on a same-seed rerun.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CellOutcome {
    kind: &'static str,
    seed: u64,
    attempts: u32,
    result: String,
}

fn classify(e: &ClientError) -> String {
    if e.is_retryable() {
        "err:retryable".to_string()
    } else {
        match e {
            ClientError::Server { code, .. } => format!("err:terminal:{code}"),
            ClientError::Protocol(_) => "err:terminal:protocol".to_string(),
            other => format!("err:terminal:{other:?}"),
        }
    }
}

/// Runs one matrix cell: its own server and proxy, a fault budget of one
/// connection, and a retrying client that must converge. `batch_fn` picks
/// the workload (paper single-vehicle or platoon template).
fn run_cell(
    batch_fn: fn(usize, u64) -> BatchConfig,
    kind: &'static str,
    seed: u64,
    episodes: usize,
) -> CellOutcome {
    let batch = batch_fn(episodes, seed);
    let request_len = Request::SubmitBatch {
        batch: batch.clone(),
        stack: StackSpecWire::TeacherConservative,
        deadline_ms: None,
    }
    .to_json()
    .encode()
    .len();
    let fault = fault_for(kind, seed, request_len);
    // Alternate the faulted direction by seed so both ends get exercised.
    let plan = if seed.is_multiple_of(2) {
        ConnPlan::upstream(fault)
    } else {
        ConnPlan::downstream(fault)
    };

    let server = Server::start(ServerConfig {
        // Reap the half-open leftovers of drop/stall cells promptly.
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .unwrap();
    let proxy = ChaosProxy::start(server.local_addr(), FaultSchedule::fixed(plan, 1)).unwrap();

    let mut retries = 0u32;
    let result = Client::submit_with_retry(
        proxy.local_addr(),
        &chaos_config(seed),
        &batch,
        StackSpecWire::TeacherConservative,
        |_| {},
        |_, _| retries += 1,
    );
    let result = match result {
        Ok(summary) => {
            assert_bit_identical(
                &summary,
                &reference_summary(&batch),
                &format!("{kind}/{seed}"),
            );
            "ok".to_string()
        }
        Err(e) => classify(&e),
    };
    proxy.shutdown();
    server.shutdown();
    CellOutcome {
        kind,
        seed,
        attempts: retries + 1,
        result,
    }
}

/// Runs the full `kinds × seeds` matrix, cells in bounded parallel chunks
/// (each cell owns its server and proxy, so cells are independent).
fn run_matrix(seeds: &[u64], episodes: usize) -> Vec<CellOutcome> {
    run_matrix_with(paper_batch, seeds, episodes)
}

fn run_matrix_with(
    batch_fn: fn(usize, u64) -> BatchConfig,
    seeds: &[u64],
    episodes: usize,
) -> Vec<CellOutcome> {
    let cells: Vec<(&'static str, u64)> = FAULT_KINDS
        .iter()
        .flat_map(|kind| seeds.iter().map(move |&seed| (*kind, seed)))
        .collect();
    let mut outcomes = Vec::with_capacity(cells.len());
    for chunk in cells.chunks(8) {
        let handles: Vec<_> = chunk
            .iter()
            .map(|&(kind, seed)| {
                std::thread::spawn(move || run_cell(batch_fn, kind, seed, episodes))
            })
            .collect();
        for handle in handles {
            outcomes.push(handle.join().expect("matrix cell panicked"));
        }
    }
    outcomes
}

/// 6 fault kinds × 8 seeds, fault budget 1 connection, retry budget 4:
/// every cell must converge to the bit-identical summary with no hang and
/// no panic. (`run_cell` asserts bit-identity internally; this asserts
/// the recovery.)
#[test]
fn fault_matrix_recovers_bit_identically_under_retry() {
    let outcomes = with_deadline(Duration::from_secs(120), "fault matrix", || {
        run_matrix(&[1, 2, 3, 4, 5, 6, 7, 8], 3)
    });
    assert_eq!(outcomes.len(), 6 * 8);
    for cell in &outcomes {
        assert_eq!(
            cell.result, "ok",
            "{}/{} did not recover: {:?}",
            cell.kind, cell.seed, cell
        );
        assert!(
            cell.attempts <= 4,
            "{}/{} blew the retry budget: {:?}",
            cell.kind,
            cell.seed,
            cell
        );
    }
}

/// The platoon row of the matrix: a 4-vehicle platoon whose per-pair V2V
/// channels carry *independent* fault settings (one stalled, the rest
/// clean), pushed through all 6 transport fault kinds across 4 seeds under
/// the same watchdog budget as the paper row. Every cell must either
/// converge to the bit-identical summary or surface a typed error — the
/// retry budget out-lasts the fault budget, so here that means "ok".
#[test]
fn platoon_batches_recover_bit_identically_through_the_fault_matrix() {
    let outcomes = with_deadline(Duration::from_secs(120), "platoon fault matrix", || {
        run_matrix_with(platoon_batch, &[1, 2, 3, 4], 2)
    });
    assert_eq!(outcomes.len(), 6 * 4);
    for cell in &outcomes {
        assert_eq!(
            cell.result, "ok",
            "platoon {}/{} did not recover: {:?}",
            cell.kind, cell.seed, cell
        );
        assert!(
            cell.attempts <= 4,
            "platoon {}/{} blew the retry budget: {:?}",
            cell.kind,
            cell.seed,
            cell
        );
    }
}

/// Same seed, same outcomes — attempt counts and result classes included.
/// Fault cutoffs are byte-based and request encodings are deterministic,
/// so reruns retrace the cell exactly.
#[test]
fn same_seed_reruns_reproduce_identical_outcomes() {
    let (first, second) = with_deadline(Duration::from_secs(120), "reproducibility matrix", || {
        (run_matrix(&[11, 12], 3), run_matrix(&[11, 12], 3))
    });
    assert_eq!(first, second, "same-seed rerun diverged");
}

/// The headline recovery path, spelled out: the response stream is reset
/// mid-flight on the first two connections; the retrying client rides it
/// out and the caller sees only the bit-identical summary.
#[test]
fn retry_recovers_transparently_from_mid_stream_resets() {
    with_deadline(Duration::from_secs(60), "reset recovery", || {
        let server = Server::spawn_ephemeral().unwrap();
        let proxy = ChaosProxy::start(
            server.local_addr(),
            FaultSchedule::fixed(ConnPlan::downstream(Fault::Reset { after_bytes: 40 }), 2),
        )
        .unwrap();
        let batch = paper_batch(4, 21);
        let mut retry_errors = Vec::new();
        let summary = Client::submit_with_retry(
            proxy.local_addr(),
            &chaos_config(21),
            &batch,
            StackSpecWire::TeacherConservative,
            |_| {},
            |attempt, e| retry_errors.push((attempt, e.is_retryable())),
        )
        .expect("retry must ride out a bounded fault budget");
        assert_bit_identical(&summary, &reference_summary(&batch), "reset recovery");
        assert_eq!(
            retry_errors,
            vec![(0, true), (1, true)],
            "exactly the two faulted connections were retried"
        );
        assert_eq!(proxy.connections(), 3, "two faulted attempts + one clean");
        proxy.shutdown();
        server.shutdown();
    });
}

/// A request that silently vanishes (accepted, consumed, never forwarded)
/// must surface as a read timeout — not a hang — and the retry converges.
#[test]
fn retry_recovers_from_silently_dropped_requests() {
    with_deadline(Duration::from_secs(60), "silent-drop recovery", || {
        let server = Server::start(ServerConfig {
            idle_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        })
        .unwrap();
        let proxy = ChaosProxy::start(
            server.local_addr(),
            FaultSchedule::fixed(ConnPlan::upstream(Fault::SilentDrop { after_bytes: 0 }), 1),
        )
        .unwrap();
        let batch = paper_batch(3, 33);
        let mut saw_timeout = false;
        let summary = Client::submit_with_retry(
            proxy.local_addr(),
            &chaos_config(33),
            &batch,
            StackSpecWire::TeacherConservative,
            |_| {},
            |_, e| saw_timeout |= matches!(e, ClientError::Timeout { .. }),
        )
        .expect("one dropped request, then clean");
        assert_bit_identical(&summary, &reference_summary(&batch), "silent-drop recovery");
        assert!(
            saw_timeout,
            "the dropped request must classify as a timeout"
        );
        proxy.shutdown();
        server.shutdown();
    });
}

/// Regression: a peer that accepts the connection and then goes silent
/// used to block the client forever (no read timeout). It must now fail
/// with a typed timeout in bounded time.
#[test]
fn dead_peer_yields_a_timely_typed_timeout_not_a_hang() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    // Accept and park the socket: never read, never write, never close.
    let accepted = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let config = ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(2),
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let t0 = Instant::now();
    let mut client = Client::connect_with(addr, config).unwrap();
    let err = client
        .submit_batch(
            &paper_batch(2, 1),
            StackSpecWire::TeacherConservative,
            |_| {},
        )
        .expect_err("a silent peer must not look like success");
    let elapsed = t0.elapsed();
    match &err {
        ClientError::Timeout { op, after } => {
            assert_eq!(*op, "read");
            assert_eq!(*after, Duration::from_millis(300));
        }
        other => panic!("expected a read timeout, got {other:?}"),
    }
    assert!(err.is_retryable(), "a dead peer is a retryable condition");
    assert!(
        elapsed < Duration::from_secs(5),
        "typed error took {elapsed:?}; the old behaviour was an unbounded block"
    );
    drop(accepted);
}

/// Terminal errors must fail fast: no retry, one connection, the server's
/// typed rejection handed straight back.
#[test]
fn terminal_errors_are_not_retried() {
    with_deadline(Duration::from_secs(30), "terminal classification", || {
        let server = Server::spawn_ephemeral().unwrap();
        let proxy = ChaosProxy::start(server.local_addr(), FaultSchedule::clean()).unwrap();
        let mut batch = paper_batch(2, 5);
        batch.starts.clear(); // invalid: nothing to simulate
        let mut retried = false;
        let err = Client::submit_with_retry(
            proxy.local_addr(),
            &chaos_config(5),
            &batch,
            StackSpecWire::TeacherConservative,
            |_| {},
            |_, _| retried = true,
        )
        .expect_err("an invalid batch cannot succeed");
        match &err {
            ClientError::Server { code, .. } => assert_eq!(code, "invalid_batch"),
            other => panic!("expected the server's typed rejection, got {other:?}"),
        }
        assert!(!err.is_retryable());
        assert!(!retried, "terminal errors must not burn retry budget");
        assert_eq!(proxy.connections(), 1);
        proxy.shutdown();
        server.shutdown();
    });
}

/// A peer speaking garbage gets `bad_request` answers up to the quarantine
/// threshold, then one final `quarantined` frame and the connection closes.
#[test]
fn malformed_frame_quarantine_closes_the_connection() {
    use std::io::{BufRead, BufReader, Write};
    let server = Server::start(ServerConfig {
        max_bad_frames: 3,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    for expected in ["bad_request", "bad_request", "quarantined"] {
        stream.write_all(b"definitely not json\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains(&format!("\"code\":\"{expected}\"")),
            "expected {expected}, got {line:?}"
        );
    }
    // After quarantine the server hangs up.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "got {line:?}");
    server.shutdown();
}

/// A half-open peer (mid-frame stall) is reaped by the idle deadline: it
/// gets a typed `idle_timeout` frame and the handler thread is reclaimed,
/// so stalled connections cannot pin the server.
#[test]
fn half_open_connections_are_reaped_by_the_idle_deadline() {
    use std::io::{BufRead, BufReader, Write};
    let server = Server::start(ServerConfig {
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half a frame, then silence: a stalled peer mid-line.
    stream.write_all(b"{\"op\":\"pi").unwrap();
    let t0 = Instant::now();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"code\":\"idle_timeout\""),
        "expected the idle reap frame, got {line:?}"
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "then EOF");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "reap took {:?}",
        t0.elapsed()
    );
    server.shutdown();
}

/// Several concurrent sessions, each through its own seeded random-fault
/// proxy against one shared server: all converge bit-identically. Per-
/// session proxies keep each session's connection indices deterministic
/// even though the sessions interleave arbitrarily.
#[test]
fn concurrent_sessions_through_seeded_proxies_all_converge() {
    with_deadline(Duration::from_secs(90), "concurrent sessions", || {
        let server = Server::start(ServerConfig {
            idle_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = (0u64..4)
            .map(|session| {
                std::thread::spawn(move || {
                    let seed = derive_seed(0xC0FFEE, "session") ^ session;
                    let proxy = ChaosProxy::start(addr, FaultSchedule::random(seed, 1)).unwrap();
                    let batch = paper_batch(3, seed);
                    let summary = Client::submit_with_retry(
                        proxy.local_addr(),
                        &chaos_config(seed),
                        &batch,
                        StackSpecWire::TeacherConservative,
                        |_| {},
                        |_, _| {},
                    )
                    .unwrap_or_else(|e| panic!("session {session} failed: {e}"));
                    assert_bit_identical(
                        &summary,
                        &reference_summary(&batch),
                        &format!("session {session}"),
                    );
                    proxy.shutdown();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("session panicked");
        }
        server.shutdown();
    });
}

/// The full soak: a wider seed sweep of the matrix run twice (outcome
/// vectors compared for reproducibility) plus a concurrent-session storm.
/// Ignored by default; `scripts/soak.sh` runs it in release mode. Scale
/// with `CV_SOAK_SEEDS` (seed count, default 16).
#[test]
#[ignore = "long-running; driven by scripts/soak.sh"]
fn soak_full_matrix_and_session_storm() {
    let seed_count: u64 = std::env::var("CV_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let seeds: Vec<u64> = (1..=seed_count).collect();

    let (first, second) = with_deadline(Duration::from_secs(1800), "soak matrix", {
        let seeds = seeds.clone();
        move || (run_matrix(&seeds, 6), run_matrix(&seeds, 6))
    });
    assert_eq!(first.len(), 6 * seeds.len());
    for cell in &first {
        assert_eq!(cell.result, "ok", "soak cell failed: {cell:?}");
    }
    assert_eq!(first, second, "soak rerun diverged");

    // Session storm: 8 concurrent sessions × 3 rounds through random
    // per-session schedules against one shared server.
    with_deadline(Duration::from_secs(600), "soak session storm", || {
        let server = Server::start(ServerConfig {
            idle_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        for round in 0u64..3 {
            let handles: Vec<_> = (0u64..8)
                .map(|session| {
                    std::thread::spawn(move || {
                        let seed = derive_seed(round, "soak-session") ^ session;
                        let proxy =
                            ChaosProxy::start(addr, FaultSchedule::random(seed, 1)).unwrap();
                        let batch = paper_batch(4, seed);
                        let summary = Client::submit_with_retry(
                            proxy.local_addr(),
                            &chaos_config(seed),
                            &batch,
                            StackSpecWire::TeacherConservative,
                            |_| {},
                            |_, _| {},
                        )
                        .unwrap_or_else(|e| panic!("round {round} session {session} failed: {e}"));
                        assert_bit_identical(
                            &summary,
                            &reference_summary(&batch),
                            &format!("round {round} session {session}"),
                        );
                        proxy.shutdown();
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("soak session panicked");
            }
        }
        server.shutdown();
    });
}
