//! Bit-identity of cached episode results (ISSUE 6, satellite 1).
//!
//! A cache is only correct here if a hit is *indistinguishable* from a
//! recompute: every f64 in the summary must match to the bit, across
//! seeds, worker counts, mixed hit/miss batches, and a cancelled batch
//! whose hits survive into the partial summary.

use std::sync::atomic::{AtomicBool, Ordering};

use cv_server::{run_sharded_cached, Client, JobLimits, JobOutcome, Server, StackSpecWire};
use cv_sim::{BatchConfig, BatchSummary, EpisodeCache, EpisodeConfig, StackSpec};

fn paper_batch(seed: u64, episodes: usize) -> (BatchConfig, StackSpec) {
    let template = EpisodeConfig::paper_default(seed);
    let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
    (BatchConfig::new(template, episodes), spec)
}

/// Every floating-point field compared by `to_bits` — `assert_eq!` on the
/// f64s would let `-0.0 == 0.0` and NaN mismatches slip through.
fn assert_bit_identical(cold: &BatchSummary, warm: &BatchSummary, context: &str) {
    assert_eq!(
        (
            cold.episodes,
            cold.requested,
            cold.failed,
            cold.panicked,
            cold.skipped
        ),
        (
            warm.episodes,
            warm.requested,
            warm.failed,
            warm.panicked,
            warm.skipped
        ),
        "{context}: episode counts diverged"
    );
    for (name, a, b) in [
        ("reaching_time", cold.reaching_time, warm.reaching_time),
        ("safe_rate", cold.safe_rate, warm.safe_rate),
        ("eta_mean", cold.eta_mean, warm.eta_mean),
        (
            "emergency_frequency",
            cold.emergency_frequency,
            warm.emergency_frequency,
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: {name} diverged");
    }
    assert_eq!(
        cold.etas.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        warm.etas.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "{context}: per-episode etas diverged"
    );
    assert_eq!(
        cold.reaching_times
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        warm.reaching_times
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "{context}: per-episode reaching times diverged"
    );
}

fn run_with_cache(
    batch: &BatchConfig,
    spec: &StackSpec,
    workers: usize,
    cache: &EpisodeCache,
) -> JobOutcome {
    let cancel = AtomicBool::new(false);
    run_sharded_cached(
        batch,
        spec,
        JobLimits::new(workers),
        &cancel,
        None,
        Some(cache),
        |_| {},
    )
}

fn completed(outcome: JobOutcome) -> BatchSummary {
    match outcome {
        JobOutcome::Completed(summary) => summary,
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn cached_equals_recomputed_across_seeds_and_thread_counts() {
    for seed in [1, 7, 23, 101] {
        for workers in [1, 3] {
            let (batch, spec) = paper_batch(seed, 10);
            let cache = EpisodeCache::new(1 << 20);
            let cold = completed(run_with_cache(&batch, &spec, workers, &cache));
            assert_eq!(
                (cold.cache_hits, cold.cache_misses),
                (0, 10),
                "seed {seed}, {workers} workers: cold run"
            );
            let warm = completed(run_with_cache(&batch, &spec, workers, &cache));
            assert_eq!(
                (warm.cache_hits, warm.cache_misses),
                (10, 0),
                "seed {seed}, {workers} workers: warm run"
            );
            assert_bit_identical(&cold, &warm, &format!("seed {seed}, {workers} workers"));
        }
    }
}

#[test]
fn warm_run_is_bit_identical_regardless_of_who_warmed_it() {
    // Warmed single-threaded, served back to a 3-worker run (and vice
    // versa): the key is content-addressed, not execution-shaped.
    let (batch, spec) = paper_batch(5, 8);
    for (warm_workers, read_workers) in [(1, 3), (3, 1)] {
        let cache = EpisodeCache::new(1 << 20);
        let cold = completed(run_with_cache(&batch, &spec, warm_workers, &cache));
        let warm = completed(run_with_cache(&batch, &spec, read_workers, &cache));
        assert_eq!(warm.cache_hits, 8);
        assert_bit_identical(&cold, &warm, "cross-thread-count warm read");
    }
}

#[test]
fn mixed_hit_miss_batch_is_bit_identical_to_a_cold_superset() {
    // `BatchConfig::episode(i)` derives episode i from (base_seed + i,
    // starts[i % n]) alone, so a 12-episode batch shares its first 6
    // episodes with the 6-episode prefix batch: warming the prefix makes
    // the superset run exactly 6 hits + 6 misses.
    let (small, spec) = paper_batch(9, 6);
    let (big, _) = paper_batch(9, 12);

    let reference_cache = EpisodeCache::new(1 << 20);
    let reference = completed(run_with_cache(&big, &spec, 2, &reference_cache));

    let cache = EpisodeCache::new(1 << 20);
    let prefix = completed(run_with_cache(&small, &spec, 2, &cache));
    assert_eq!(prefix.cache_misses, 6);
    let mixed = completed(run_with_cache(&big, &spec, 2, &cache));
    assert_eq!(
        (mixed.cache_hits, mixed.cache_misses),
        (6, 6),
        "superset must hit exactly the warmed prefix"
    );
    assert_bit_identical(&reference, &mixed, "mixed hit/miss batch");
}

#[test]
fn cache_hits_survive_cancellation_and_resubmission_completes() {
    let (small, spec) = paper_batch(31, 6);
    let (big, _) = paper_batch(31, 12);
    let cache = EpisodeCache::new(1 << 20);
    let warmed = completed(run_with_cache(&small, &spec, 2, &cache));

    // Cancel is set before submission: no worker may run, but the 6 cached
    // episodes are served anyway and land in the partial summary.
    let cancel = AtomicBool::new(true);
    let outcome = run_sharded_cached(
        &big,
        &spec,
        JobLimits::new(2),
        &cancel,
        None,
        Some(&cache),
        |_| {},
    );
    let JobOutcome::Cancelled { done, partial } = outcome else {
        panic!("expected cancellation, got {outcome:?}");
    };
    assert_eq!(done, 6, "exactly the cached episodes resolve under cancel");
    assert_eq!((partial.episodes, partial.skipped), (6, 6));
    assert_eq!((partial.cache_hits, partial.cache_misses), (6, 6));
    assert_eq!(
        partial.etas.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        warmed.etas.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "partial summary must carry the cached episodes bit-identically"
    );

    // Resubmit without the cancel flag: the 6 hits return instantly, the 6
    // cancelled episodes are computed, and the batch completes.
    cancel.store(false, Ordering::Relaxed);
    let resumed = completed(run_with_cache(&big, &spec, 2, &cache));
    assert_eq!((resumed.cache_hits, resumed.cache_misses), (6, 6));
    let full = completed(run_with_cache(&big, &spec, 2, &cache));
    assert_eq!((full.cache_hits, full.cache_misses), (12, 0));
    assert_bit_identical(&resumed, &full, "resubmitted batch");
}

#[test]
fn server_round_trip_serves_warm_batches_from_cache() {
    // Through the real daemon and wire protocol: same batch twice, second
    // run all hits and bit-identical after a JSON round-trip.
    let server = Server::spawn_ephemeral().expect("spawn server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let batch = BatchConfig::new(EpisodeConfig::paper_default(77), 8);
    let cold = client
        .submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
        .expect("cold submit");
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 8));
    let warm = client
        .submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})
        .expect("warm submit");
    assert_eq!((warm.cache_hits, warm.cache_misses), (8, 0));
    assert_bit_identical(&cold, &warm, "server round trip");
    server.shutdown();
}
