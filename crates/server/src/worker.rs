//! Sharded, supervised execution of one batch job with streamed progress.
//!
//! The scheduling mirrors [`cv_sim::run_batch`]: every worker claims the
//! next unclaimed episode index from a shared [`cv_sim::scheduler::WorkQueue`]
//! (dynamic load balancing — early-exiting episodes don't leave tail workers
//! idle) and runs it on a per-worker [`cv_sim::EpisodeWorkspace`], each
//! episode on its own derived seed — so the per-episode results (and
//! therefore the final [`BatchSummary`]) are bit-identical to an in-process
//! `run_batch` of the same [`BatchConfig`], regardless of worker count,
//! claim interleaving, or completion order.
//!
//! Episodes run under the supervised executor
//! ([`cv_sim::supervised_episode`]): a panicking planner yields a typed
//! [`EpisodeOutcome::Panicked`] for that episode only, a per-episode
//! simulation error yields [`EpisodeOutcome::Failed`], and quarantined
//! seeds are skipped — the batch keeps going and completes with fault
//! counts in its summary instead of dying.
//!
//! Workers report each resolved episode over an [`mpsc`] rendezvous channel
//! to the coordinating thread (the job runner), which owns the progress
//! callback and result assembly — callbacks never run concurrently. The
//! coordinator polls the cancel flag and the job deadline between
//! rendezvous; when either fires it flips a stop flag that the episode loop
//! checks *every control step*, so a job stops at episode-step granularity
//! and flushes a partial [`BatchSummary`]. If a shard thread dies outright,
//! the coordinator's rescue pass re-runs its claimed-but-unreported
//! episodes inline, preserving bit-identical results.
//!
//! With [`JobLimits::with_lanes`] set above 1, each shard opts into the
//! lane-batched execution mode ([`cv_sim::lanes`]): it steps K claimed
//! episodes in lockstep and answers their NN evaluations with one batched
//! forward pass per round. Only stacks with an embedded NN planner take
//! the lane path (teacher stacks fall through to the per-episode loop);
//! cache hits still bypass compute entirely, since shards claim from the
//! post-prefill miss list either way. Lane-batched results follow the
//! tolerance contract documented in `cv_sim::lanes`, and the rescue pass
//! re-runs orphaned episodes through a lane group of the same width so
//! rescued results obey the same numeric contract.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use cv_sim::lanes::{drive_lanes, BatchMode};
use cv_sim::scheduler::WorkQueue;
use cv_sim::{
    episode_key, episode_weight, stack_digest, supervised_episode_with, BatchConfig, BatchReport,
    BatchSummary, CacheKey, EngineKind, EpisodeCache, EpisodeOutcome, EpisodeWorkspace, Quarantine,
    SimError, SkipReason, StackSpec,
};

/// How often the coordinator wakes to poll cancel/deadline while no episode
/// is being handed over.
const COORDINATOR_POLL: Duration = Duration::from_millis(50);

/// Per-job execution limits.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobLimits {
    /// Worker shards (`0` is treated as 1; always clamped to the episode
    /// count).
    pub workers: usize,
    /// Absolute deadline; when it passes, the job stops at episode-step
    /// granularity and reports [`JobOutcome::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Episodes each shard steps in lockstep with batched NN forwards
    /// (`cv_sim::lanes`). `0` and `1` both mean the per-episode reference
    /// path; values above the lane width are rejected as
    /// [`SimError::InvalidBatch`]. Only applies to stacks with an embedded
    /// NN planner — teacher stacks always run per-episode.
    pub lanes: usize,
    /// Run episodes on the event-driven engine
    /// ([`cv_sim::events`]). Takes precedence over [`JobLimits::lanes`]:
    /// an event-driven job always runs one episode at a time per shard.
    pub event_driven: bool,
    /// Test hook: worker `w` dies right after its next claim, leaving a
    /// claimed-but-unreported episode for the supervisor's rescue pass.
    /// Feature-gated so it cannot ship in a default build.
    #[cfg(feature = "fault-injection")]
    pub kill_worker: Option<usize>,
}

impl JobLimits {
    /// Limits with the given worker count and no deadline.
    pub fn new(workers: usize) -> Self {
        JobLimits {
            workers,
            deadline: None,
            lanes: 1,
            event_driven: false,
            #[cfg(feature = "fault-injection")]
            kill_worker: None,
        }
    }

    /// Attaches an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the lane count each shard steps in lockstep (see
    /// [`JobLimits::lanes`]).
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Selects the event-driven episode engine (see
    /// [`JobLimits::event_driven`]).
    #[must_use]
    pub fn with_event_driven(mut self, event_driven: bool) -> Self {
        self.event_driven = event_driven;
        self
    }

    /// The episode engine these limits select.
    pub fn engine(&self) -> EngineKind {
        if self.event_driven {
            EngineKind::EventDriven
        } else {
            EngineKind::FixedStep
        }
    }

    /// Arms the kill-a-shard test hook for worker `w`.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_kill_worker(mut self, w: usize) -> Self {
        self.kill_worker = Some(w);
        self
    }
}

/// One completed episode, as handed to the progress callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeProgress {
    /// Episode index within the batch (seed order).
    pub index: usize,
    /// The episode's `η` score.
    pub eta: f64,
    /// Episodes completed so far (including this one).
    pub done: usize,
    /// Total episodes in the batch.
    pub total: usize,
    /// Estimated wall-clock seconds remaining, extrapolated from the mean
    /// episode time so far.
    pub eta_secs: f64,
}

/// Why an episode resolved without a result (the batch keeps going).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A typed simulation error.
    Failed,
    /// A contained planner panic.
    Panicked,
    /// The seed was quarantined after repeated panics and skipped.
    Quarantined,
}

impl FaultKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Failed => "failed",
            FaultKind::Panicked => "panicked",
            FaultKind::Quarantined => "quarantined",
        }
    }
}

/// What a running job streams to its progress callback.
#[derive(Debug, Clone, PartialEq)]
pub enum Progress {
    /// An episode completed.
    Episode(EpisodeProgress),
    /// An episode resolved without a result; the batch continues.
    Fault {
        /// Episode index within the batch.
        index: usize,
        /// The episode seed.
        seed: u64,
        /// What happened to it.
        kind: FaultKind,
        /// Human-readable detail (error display or panic payload).
        detail: String,
    },
}

/// Terminal state of a sharded job.
///
/// Partial summaries always carry the completed episodes' statistics (the
/// summary is empty-safe), with unresolved episodes counted as `skipped`.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The whole index space was resolved. The summary's fault counts say
    /// how many episodes completed versus failed / panicked / were
    /// quarantined; completed episodes are bit-identical to a clean run.
    Completed(BatchSummary),
    /// The cancel flag was observed before the batch resolved.
    Cancelled {
        /// Episodes that completed before the workers stopped.
        done: usize,
        /// Statistics over exactly those episodes.
        partial: BatchSummary,
    },
    /// The job deadline passed before the batch resolved.
    DeadlineExceeded {
        /// Episodes that completed before the workers stopped.
        done: usize,
        /// Statistics over exactly those episodes.
        partial: BatchSummary,
    },
    /// The batch configuration itself is unrunnable. Per-episode faults do
    /// *not* end up here — they are contained and counted in a
    /// [`JobOutcome::Completed`] summary.
    Failed(SimError),
}

/// Runs `batch` with `spec` across `limits.workers` shards under
/// supervision, invoking `on_progress` for every resolved episode.
///
/// `cancel` stops the job cooperatively at episode-step granularity, as
/// does `limits.deadline` expiring; `quarantine` (when given) is shared
/// across jobs to skip seeds that keep panicking.
pub fn run_sharded<F>(
    batch: &BatchConfig,
    spec: &StackSpec,
    limits: JobLimits,
    cancel: &AtomicBool,
    quarantine: Option<&Quarantine>,
    on_progress: F,
) -> JobOutcome
where
    F: FnMut(Progress),
{
    run_sharded_cached(batch, spec, limits, cancel, quarantine, None, on_progress)
}

/// [`run_sharded`] with an optional content-addressed episode cache in
/// front of the shard scheduler.
///
/// Before any worker spawns, every episode's [`CacheKey`] (stack digest ×
/// episode config, see `cv_sim::cache`) is looked up; hits fill their
/// result slots and stream progress immediately — without claiming a
/// worker, and before the cancel flag or deadline is ever consulted, so
/// cached episodes survive a cancellation that stops the rest of the
/// batch. Only the misses go through the work queue. A miss that resolves
/// as [`EpisodeOutcome::Completed`] is inserted on the coordinator thread;
/// failed, panicked, quarantined, and interrupted episodes are never
/// cached. If any key derivation fails (a NaN in the config — a typed
/// `KeyError`), the whole batch bypasses the cache instead of computing a
/// poisoned key.
///
/// The summary's `cache_hits` / `cache_misses` count this job's lookups
/// (both zero when `cache` is `None`); `cache_evictions` is the cache-wide
/// eviction delta observed while the job ran.
pub fn run_sharded_cached<F>(
    batch: &BatchConfig,
    spec: &StackSpec,
    limits: JobLimits,
    cancel: &AtomicBool,
    quarantine: Option<&Quarantine>,
    cache: Option<&EpisodeCache>,
    mut on_progress: F,
) -> JobOutcome
where
    F: FnMut(Progress),
{
    if let Err(e) = batch.validate() {
        return JobOutcome::Failed(e);
    }
    if let Err(e) = BatchMode::Lanes(limits.lanes.max(1)).validate() {
        return JobOutcome::Failed(e);
    }
    // Lane batching applies only to NN-planner stacks; everything else
    // takes the per-episode reference path regardless of the knob. An
    // event-driven job steps one episode at a time per shard, so the
    // engine switch wins over the lane knob.
    let lanes = if limits.lanes > 1 && spec.nn_planner().is_some() && !limits.event_driven {
        limits.lanes
    } else {
        1
    };
    let total = batch.episodes;
    // Flipped by the coordinator on cancel or deadline expiry; checked by
    // the claim loop *and* inside every episode's step loop.
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();

    let mut slots: Vec<Option<EpisodeOutcome>> = Vec::new();
    slots.resize_with(total, || None);
    let done = Cell::new(0usize);
    let mut interrupted = false;
    let mut deadline_hit = false;

    // Content keys, derived once up front. A NaN anywhere in the stack or
    // an episode config is a typed `KeyError`; it disables caching for the
    // whole batch rather than storing under a poisoned key.
    let mut cache = cache;
    let mut keys: Vec<Option<CacheKey>> = vec![None; total];
    if cache.is_some() {
        match stack_digest(spec) {
            Ok(digest) => {
                for (i, key) in keys.iter_mut().enumerate() {
                    match episode_key(digest, &batch.episode(i)) {
                        Ok(k) => *key = Some(k),
                        Err(_) => {
                            cache = None;
                            break;
                        }
                    }
                }
            }
            Err(_) => cache = None,
        }
    }
    let evictions_before = cache.map_or(0, EpisodeCache::evictions);

    // Progress reporting shared by the live path and the rescue pass.
    let mut report = |index: usize, outcome: &EpisodeOutcome| match outcome {
        EpisodeOutcome::Completed(r) => {
            done.set(done.get() + 1);
            let d = done.get();
            let elapsed = t0.elapsed().as_secs_f64();
            on_progress(Progress::Episode(EpisodeProgress {
                index,
                eta: r.eta,
                done: d,
                total,
                eta_secs: elapsed / d as f64 * (total - d) as f64,
            }));
        }
        EpisodeOutcome::Failed { seed, error } => on_progress(Progress::Fault {
            index,
            seed: *seed,
            kind: FaultKind::Failed,
            detail: error.to_string(),
        }),
        EpisodeOutcome::Panicked { seed, payload } => on_progress(Progress::Fault {
            index,
            seed: *seed,
            kind: FaultKind::Panicked,
            detail: payload.clone(),
        }),
        EpisodeOutcome::Skipped {
            seed,
            reason: SkipReason::Quarantined { panics },
        } => on_progress(Progress::Fault {
            index,
            seed: *seed,
            kind: FaultKind::Quarantined,
            detail: format!("{panics} prior panics"),
        }),
        // An episode abandoned by the stop flag is not a fault — it is
        // accounted for in the partial summary's skipped count.
        EpisodeOutcome::Skipped {
            reason: SkipReason::Interrupted,
            ..
        } => {}
    };

    // Cache prefill: hits fill their slots and stream progress before any
    // worker spawns — and before cancel/deadline are consulted, so cached
    // episodes survive a cancellation that stops the rest of the batch.
    let mut persisted_hits = 0usize;
    if let Some(c) = cache {
        for (i, slot) in slots.iter_mut().enumerate() {
            let Some(key) = keys[i] else { continue };
            if let Some((result, persisted)) = c.get_entry(&key) {
                if persisted {
                    persisted_hits += 1;
                }
                let outcome = EpisodeOutcome::Completed(result);
                report(i, &outcome);
                *slot = Some(outcome);
            }
        }
    }
    // Only the misses go through the work queue; workers claim positions in
    // this list, not raw episode indices.
    let pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
    let cache_hits = total - pending.len();
    let cache_misses = if cache.is_some() { pending.len() } else { 0 };
    let workers = limits.workers.clamp(1, total).min(pending.len().max(1));
    let queue = WorkQueue::new(pending.len());

    // A fully-warm batch needs no workers at all: skipping the thread scope
    // keeps an all-hits run at hash-lookup cost (microseconds, not
    // thread-spawn milliseconds).
    if !pending.is_empty() {
        run_shards(RunShards {
            batch,
            spec,
            limits,
            cancel,
            quarantine,
            cache,
            keys: &keys,
            pending: &pending,
            workers,
            lanes,
            queue: &queue,
            stop: &stop,
            slots: &mut slots,
            interrupted: &mut interrupted,
            deadline_hit: &mut deadline_hit,
            report: &mut report,
        });
    }

    // Shard supervisor: an unfilled slot means a shard died between
    // claiming the index and reporting it. Re-run those inline — the index
    // alone determines the episode, so rescued results are identical to
    // what the dead shard would have produced. Lane-batched jobs rescue
    // through a lane group of the same width (one-shot claim) so rescued
    // episodes obey the same numeric contract as the live pass.
    // Cancel/deadline are polled per rescued slot: a rescue can be most of
    // the batch, and it must stay as interruptible as the live pass was.
    if !interrupted {
        let lane_planner = if lanes > 1 { spec.nn_planner() } else { None };
        let mut rescue: Option<EpisodeWorkspace> = None;
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            // Breaking with slots still unfilled leaves them counted as
            // skipped, which forces the partial (non-Completed) outcome.
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            if limits.deadline.is_some_and(|d| Instant::now() >= d) {
                deadline_hit = true;
                break;
            }
            let outcome = match lane_planner {
                Some(planner) => {
                    let mut got: Option<EpisodeOutcome> = None;
                    let mut once = Some(i);
                    drive_lanes(
                        &mut || once.take(),
                        batch,
                        spec,
                        planner,
                        lanes,
                        quarantine,
                        None,
                        &mut |_, o| got = Some(o),
                    );
                    got.expect("drive_lanes emits one outcome per claimed index")
                }
                None => {
                    let ws = rescue.get_or_insert_with(|| EpisodeWorkspace::new(spec.clone()));
                    supervised_episode_with(
                        limits.engine(),
                        ws,
                        &batch.episode(i),
                        quarantine,
                        None,
                    )
                }
            };
            if let (Some(c), EpisodeOutcome::Completed(r), Some(key)) = (cache, &outcome, keys[i]) {
                c.insert(key, r.clone(), episode_weight(r));
            }
            report(i, &outcome);
            *slot = Some(outcome);
        }
    }

    // A stop that landed after the last episode resolved still yields the
    // complete (deterministic) summary.
    let fully_resolved = slots.iter().all(|s| {
        s.as_ref().is_some_and(|o| {
            !matches!(
                o,
                EpisodeOutcome::Skipped {
                    reason: SkipReason::Interrupted,
                    ..
                }
            )
        })
    });
    let outcomes: Vec<EpisodeOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.unwrap_or(EpisodeOutcome::Skipped {
                seed: batch.base_seed.wrapping_add(i as u64),
                reason: SkipReason::Interrupted,
            })
        })
        .collect();
    let mut summary = BatchReport { outcomes }.summary().with_timing(t0.elapsed());
    summary.lanes = lanes;
    if let Some(c) = cache {
        summary.cache_hits = cache_hits;
        summary.cache_misses = cache_misses;
        summary.cache_evictions = usize::try_from(c.evictions() - evictions_before).unwrap_or(0);
        summary.cache_persisted_hits = persisted_hits;
    }
    let done = done.get();

    if fully_resolved {
        JobOutcome::Completed(summary)
    } else if deadline_hit {
        JobOutcome::DeadlineExceeded {
            done,
            partial: summary,
        }
    } else {
        JobOutcome::Cancelled {
            done,
            partial: summary,
        }
    }
}

/// Borrowed state for the live shard pass, bundled so [`run_sharded_cached`]
/// can hand the whole thing to [`run_shards`] in one move.
struct RunShards<'a, 'f> {
    batch: &'a BatchConfig,
    spec: &'a StackSpec,
    limits: JobLimits,
    cancel: &'a AtomicBool,
    quarantine: Option<&'a Quarantine>,
    cache: Option<&'a EpisodeCache>,
    keys: &'a [Option<CacheKey>],
    pending: &'a [usize],
    workers: usize,
    lanes: usize,
    queue: &'a WorkQueue,
    stop: &'a AtomicBool,
    slots: &'a mut Vec<Option<EpisodeOutcome>>,
    interrupted: &'a mut bool,
    deadline_hit: &'a mut bool,
    report: &'a mut (dyn FnMut(usize, &EpisodeOutcome) + 'f),
}

/// The live pass: spawn the shard workers, pump the rendezvous channel,
/// poll cancel/deadline, insert completed misses into the cache.
fn run_shards(ctx: RunShards<'_, '_>) {
    let RunShards {
        batch,
        spec,
        limits,
        cancel,
        quarantine,
        cache,
        keys,
        pending,
        workers,
        lanes,
        queue,
        stop,
        slots,
        interrupted,
        deadline_hit,
        report,
    } = ctx;
    std::thread::scope(|scope| {
        // Rendezvous handoff: a worker's send completes only when the
        // coordinator receives, so workers observe a stop flag flipped by
        // the coordinator within one episode, instead of racing an
        // arbitrarily deep buffer ahead of it.
        let (tx, rx) = mpsc::sync_channel::<(usize, EpisodeOutcome)>(0);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let tx = tx.clone();
                let spec = spec.clone();
                let stop = &stop;
                let queue = &queue;
                let pending = &pending;
                scope.spawn(move || {
                    // Silence the unused-binding warning in default builds,
                    // where the kill hook below is compiled out.
                    let _ = w;
                    // Lane-batched shard: claim episodes into a lockstep
                    // group fed from the same miss queue, reporting each
                    // retired lane over the same rendezvous channel. The
                    // claim closure observes cancel/stop so the group
                    // drains instead of refilling once the job is stopping,
                    // and a dead coordinator (send error) stops claims too.
                    if lanes > 1 {
                        if let Some(planner) = spec.nn_planner() {
                            let dead = Cell::new(false);
                            let tx_lane = &tx;
                            let mut emit = |i: usize, outcome: EpisodeOutcome| {
                                if tx_lane.send((i, outcome)).is_err() {
                                    dead.set(true);
                                }
                            };
                            let mut claim = || {
                                if dead.get()
                                    || cancel.load(Ordering::Relaxed)
                                    || stop.load(Ordering::Relaxed)
                                {
                                    return None;
                                }
                                queue.claim().map(|c| pending[c])
                            };
                            drive_lanes(
                                &mut claim,
                                batch,
                                &spec,
                                planner,
                                lanes,
                                quarantine,
                                Some(*stop),
                                &mut emit,
                            );
                            return;
                        }
                    }
                    // One workspace per worker: the planner is cloned once
                    // and episode buffers are reused across every claimed
                    // episode (and rebuilt from the spec after a panic).
                    let mut ws = EpisodeWorkspace::new(spec);
                    while let Some(claimed) = queue.claim() {
                        let i = pending[claimed];
                        // A worker can observe `cancel` before the
                        // coordinator's own poll does; it then exits and the
                        // coordinator sees only a channel disconnect, with
                        // `interrupted` still false. The rescue pass below
                        // re-polls `cancel` before touching any unfilled
                        // slot, so that ordering cannot resurrect the job.
                        if cancel.load(Ordering::Relaxed) || stop.load(Ordering::Relaxed) {
                            return;
                        }
                        #[cfg(feature = "fault-injection")]
                        if limits.kill_worker == Some(w) {
                            // Die holding claimed-but-unreported index `i`:
                            // the rescue pass below must pick it up.
                            return;
                        }
                        let cfg = batch.episode(i);
                        let outcome = supervised_episode_with(
                            limits.engine(),
                            &mut ws,
                            &cfg,
                            quarantine,
                            Some(stop),
                        );
                        if tx.send((i, outcome)).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        loop {
            // Poll interrupts first so a pre-set cancel flag or an
            // already-expired deadline stops the job before more work is
            // accepted.
            if !*interrupted {
                if cancel.load(Ordering::Relaxed) {
                    *interrupted = true;
                    stop.store(true, Ordering::Relaxed);
                } else if limits.deadline.is_some_and(|d| Instant::now() >= d) {
                    *interrupted = true;
                    *deadline_hit = true;
                    stop.store(true, Ordering::Relaxed);
                }
            }
            let poll = match limits.deadline {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .clamp(Duration::from_millis(1), COORDINATOR_POLL),
                None => COORDINATOR_POLL,
            };
            match rx.recv_timeout(poll) {
                Ok((index, outcome)) => {
                    // Inserts happen only here and in the rescue pass —
                    // both on this coordinator thread — and only for
                    // episodes that actually completed.
                    if let (Some(c), EpisodeOutcome::Completed(r), Some(key)) =
                        (cache, &outcome, keys[index])
                    {
                        c.insert(key, r.clone(), episode_weight(r));
                    }
                    report(index, &outcome);
                    slots[index] = Some(outcome);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Join explicitly and swallow shard panics: one dead shard must not
        // poison the scope — its unreported episodes are rescued by the
        // caller's supervisor pass.
        for handle in handles {
            let _ = handle.join();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleLimits;
    use cv_nn::{Activation, Mlp, LANE_WIDTH};
    use cv_planner::{FeatureScaling, NnPlanner};
    use cv_sim::{run_batch, run_batch_lanes, EpisodeConfig};

    fn paper_batch(episodes: usize) -> (BatchConfig, StackSpec) {
        let template = EpisodeConfig::paper_default(11);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        (BatchConfig::new(template, episodes), spec)
    }

    fn nn_batch(episodes: usize) -> (BatchConfig, StackSpec) {
        let net = Mlp::new(&[5, 16, 1], Activation::Tanh, Activation::Tanh, 3).unwrap();
        let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap();
        let planner = NnPlanner::new(net, limits, FeatureScaling::left_turn(), "lane-shard-test");
        let template = EpisodeConfig::paper_default(11);
        (
            BatchConfig::new(template, episodes),
            StackSpec::basic(planner),
        )
    }

    #[test]
    fn sharded_matches_run_batch_bit_identically() {
        let (batch, spec) = paper_batch(10);
        let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());
        for workers in [1, 3, 10] {
            let cancel = AtomicBool::new(false);
            let mut seen = Vec::new();
            let outcome = run_sharded(&batch, &spec, JobLimits::new(workers), &cancel, None, |p| {
                if let Progress::Episode(p) = p {
                    seen.push(p.index)
                }
            });
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion with {workers} workers");
            };
            assert!(summary.stats_eq(&reference), "{workers} workers diverged");
            assert_eq!((summary.requested, summary.episodes), (10, 10));
            assert!(summary.wall_time_secs > 0.0);
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lane_sharding_matches_run_batch_lanes_bit_identically() {
        // The server's lane shards claim from a different queue (the cache
        // miss list) than the in-process scheduler, so this pins the lane
        // contract's claim-order invariance at the server layer: same K ⇒
        // bit-identical per-episode results, any worker count.
        let (batch, spec) = nn_batch(12);
        let reference = run_batch_lanes(&batch, &spec, cv_sim::BatchMode::Lanes(4), None, None)
            .unwrap()
            .summary();
        for workers in [1, 3] {
            let cancel = AtomicBool::new(false);
            let limits = JobLimits::new(workers).with_lanes(4);
            let mut seen = Vec::new();
            let outcome = run_sharded(&batch, &spec, limits, &cancel, None, |p| {
                if let Progress::Episode(p) = p {
                    seen.push(p.index)
                }
            });
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion with {workers} lane workers");
            };
            assert_eq!(summary.lanes, 4, "summary records the lane width");
            assert!(summary.stats_eq(&reference), "{workers} workers diverged");
            assert_eq!(
                summary.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                reference
                    .etas
                    .iter()
                    .map(|e| e.to_bits())
                    .collect::<Vec<_>>(),
            );
            seen.sort_unstable();
            assert_eq!(seen, (0..12).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lane_knob_is_inert_for_teacher_stacks() {
        // No embedded NN planner means nothing to batch: the job takes the
        // per-episode reference path bit-identically and the summary says
        // so (lanes = 1, not the configured width).
        let (batch, spec) = paper_batch(6);
        let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());
        let cancel = AtomicBool::new(false);
        let limits = JobLimits::new(2).with_lanes(LANE_WIDTH);
        let outcome = run_sharded(&batch, &spec, limits, &cancel, None, |_| {});
        let JobOutcome::Completed(summary) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!(summary.lanes, 1);
        assert!(summary.stats_eq(&reference));
    }

    #[test]
    fn out_of_range_lane_count_fails_typed() {
        let (batch, spec) = nn_batch(4);
        let cancel = AtomicBool::new(false);
        let limits = JobLimits::new(2).with_lanes(LANE_WIDTH + 1);
        let outcome = run_sharded(&batch, &spec, limits, &cancel, None, |_| {});
        assert!(matches!(
            outcome,
            JobOutcome::Failed(SimError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn warm_cache_serves_lane_batched_episodes() {
        // Cache hits bypass lane compute entirely: the second run resolves
        // every episode at prefill and still reports the configured width.
        let (batch, spec) = nn_batch(8);
        let cache = EpisodeCache::new(1 << 20);
        let run = || {
            let cancel = AtomicBool::new(false);
            let limits = JobLimits::new(2).with_lanes(4);
            let outcome =
                run_sharded_cached(&batch, &spec, limits, &cancel, None, Some(&cache), |_| {});
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion, got {outcome:?}");
            };
            summary
        };
        let cold = run();
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 8));
        let warm = run();
        assert_eq!((warm.cache_hits, warm.cache_misses), (8, 0));
        assert_eq!((cold.lanes, warm.lanes), (4, 4));
        assert!(cold.stats_eq(&warm));
        assert_eq!(
            cold.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            warm.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn warm_cache_serves_every_episode_bit_identically() {
        let (batch, spec) = paper_batch(8);
        let cache = EpisodeCache::new(1 << 20);
        let run = |progress: &mut Vec<usize>| {
            let cancel = AtomicBool::new(false);
            let outcome = run_sharded_cached(
                &batch,
                &spec,
                JobLimits::new(3),
                &cancel,
                None,
                Some(&cache),
                |p| {
                    if let Progress::Episode(p) = p {
                        progress.push(p.index)
                    }
                },
            );
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion, got {outcome:?}");
            };
            summary
        };
        let mut cold_seen = Vec::new();
        let cold = run(&mut cold_seen);
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 8));
        let mut warm_seen = Vec::new();
        let warm = run(&mut warm_seen);
        assert_eq!((warm.cache_hits, warm.cache_misses), (8, 0));
        assert_eq!(warm.cache_evictions, 0);
        assert!(cold.stats_eq(&warm));
        assert_eq!(
            cold.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            warm.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
        );
        warm_seen.sort_unstable();
        assert_eq!(
            warm_seen,
            (0..8).collect::<Vec<_>>(),
            "hits stream progress"
        );
    }

    #[test]
    fn uncached_run_reports_zero_cache_counters() {
        let (batch, spec) = paper_batch(4);
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, JobLimits::new(2), &cancel, None, |_| {});
        let JobOutcome::Completed(summary) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!(
            (
                summary.cache_hits,
                summary.cache_misses,
                summary.cache_evictions
            ),
            (0, 0, 0),
            "no cache means no lookups, not 'all misses'"
        );
    }

    #[test]
    fn nan_config_bypasses_the_cache_but_still_runs() {
        let (mut batch, spec) = paper_batch(3);
        batch.template.sensor_dropout = f64::NAN;
        let cache = EpisodeCache::new(1 << 20);
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded_cached(
            &batch,
            &spec,
            JobLimits::new(2),
            &cancel,
            None,
            Some(&cache),
            |_| {},
        );
        let JobOutcome::Completed(summary) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!((summary.cache_hits, summary.cache_misses), (0, 0));
        assert!(cache.is_empty(), "a NaN config must never be stored");
    }

    #[test]
    fn progress_counts_monotonically() {
        let (batch, spec) = paper_batch(6);
        let cancel = AtomicBool::new(false);
        let mut last_done = 0;
        let outcome = run_sharded(&batch, &spec, JobLimits::new(2), &cancel, None, |p| {
            let Progress::Episode(p) = p else {
                panic!("unexpected fault: {p:?}");
            };
            assert_eq!(p.done, last_done + 1);
            assert_eq!(p.total, 6);
            assert!(p.eta_secs >= 0.0);
            last_done = p.done;
        });
        assert!(matches!(outcome, JobOutcome::Completed(_)));
        assert_eq!(last_done, 6);
    }

    #[test]
    fn pre_set_cancel_flag_stops_immediately() {
        let (batch, spec) = paper_batch(8);
        let cancel = AtomicBool::new(true);
        let outcome = run_sharded(&batch, &spec, JobLimits::new(2), &cancel, None, |_| {});
        let JobOutcome::Cancelled { done, partial } = outcome else {
            panic!("expected cancellation, got {outcome:?}");
        };
        assert_eq!(done, 0);
        assert_eq!((partial.requested, partial.episodes), (8, 0));
        assert_eq!(partial.skipped, 8, "unrun episodes count as skipped");
    }

    #[test]
    fn cancel_mid_batch_flushes_a_partial_summary() {
        let (batch, spec) = paper_batch(12);
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, JobLimits::new(1), &cancel, None, |p| {
            if let Progress::Episode(p) = p {
                if p.done == 2 {
                    cancel.store(true, Ordering::Relaxed);
                }
            }
        });
        match outcome {
            JobOutcome::Cancelled { done, partial } => {
                assert!((2..12).contains(&done));
                assert_eq!(partial.episodes, done, "partial stats cover done episodes");
                assert_eq!(partial.requested, 12);
                assert_eq!(partial.skipped, 12 - done);
                assert_eq!(partial.etas.len(), done);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_stops_the_job_with_a_typed_outcome() {
        let (batch, spec) = paper_batch(20);
        let cancel = AtomicBool::new(false);
        let limits = JobLimits::new(2).with_deadline(Instant::now());
        let outcome = run_sharded(&batch, &spec, limits, &cancel, None, |_| {});
        let JobOutcome::DeadlineExceeded { done, partial } = outcome else {
            panic!("expected deadline expiry, got {outcome:?}");
        };
        assert!(done < 20, "an expired deadline cannot run the whole batch");
        assert_eq!(partial.requested, 20);
        assert_eq!(partial.episodes + partial.skipped, 20);
    }

    #[test]
    fn invalid_batch_fails_typed() {
        let (mut batch, spec) = paper_batch(4);
        batch.starts.clear();
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, JobLimits::new(2), &cancel, None, |_| {});
        assert!(matches!(
            outcome,
            JobOutcome::Failed(SimError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn scenario_errors_are_contained_per_episode() {
        let (mut batch, spec) = paper_batch(4);
        // C1 starting inside the conflict zone is geometrically invalid —
        // every episode fails, but the job completes with typed fault
        // events instead of dying.
        batch.starts = vec![10.0];
        let cancel = AtomicBool::new(false);
        let mut faults = Vec::new();
        let outcome = run_sharded(&batch, &spec, JobLimits::new(2), &cancel, None, |p| {
            if let Progress::Fault { index, kind, .. } = p {
                faults.push((index, kind));
            }
        });
        let JobOutcome::Completed(summary) = outcome else {
            panic!("expected completion, got {outcome:?}");
        };
        assert_eq!((summary.episodes, summary.failed), (0, 4));
        faults.sort_unstable_by_key(|(i, _)| *i);
        assert_eq!(
            faults,
            (0..4).map(|i| (i, FaultKind::Failed)).collect::<Vec<_>>()
        );
    }

    #[cfg(feature = "fault-injection")]
    mod fault_injection {
        use super::*;

        #[test]
        fn dead_shard_episodes_are_rescued_bit_identically() {
            let (batch, spec) = paper_batch(16);
            let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());
            for killed in [0, 2] {
                let cancel = AtomicBool::new(false);
                let limits = JobLimits::new(4).with_kill_worker(killed);
                let mut seen = Vec::new();
                let outcome = run_sharded(&batch, &spec, limits, &cancel, None, |p| {
                    if let Progress::Episode(p) = p {
                        seen.push(p.index)
                    }
                });
                let JobOutcome::Completed(summary) = outcome else {
                    panic!("expected completion after killing shard {killed}");
                };
                assert!(summary.stats_eq(&reference), "shard {killed} diverged");
                seen.sort_unstable();
                assert_eq!(seen, (0..16).collect::<Vec<_>>(), "episodes lost");
            }
        }

        #[test]
        fn panicking_seed_is_contained_and_job_completes() {
            let (batch, spec) = paper_batch(6);
            let clean = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());
            let faulty =
                StackSpec::panic_injection(&batch.template, vec![batch.base_seed + 1]).unwrap();
            let cancel = AtomicBool::new(false);
            let mut faults = Vec::new();
            let outcome = run_sharded(&batch, &faulty, JobLimits::new(3), &cancel, None, |p| {
                if let Progress::Fault { index, kind, .. } = p {
                    faults.push((index, kind));
                }
            });
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion, got {outcome:?}");
            };
            assert_eq!(faults, vec![(1, FaultKind::Panicked)]);
            assert_eq!((summary.episodes, summary.panicked), (5, 1));
            // Survivors are bit-identical to the clean run (index 1 absent).
            let expected: Vec<f64> = clean
                .etas
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 1)
                .map(|(_, e)| *e)
                .collect();
            assert_eq!(
                summary.etas.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
                expected.iter().map(|e| e.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
