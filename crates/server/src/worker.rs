//! Sharded execution of one batch job with streamed per-episode progress.
//!
//! The scheduling mirrors [`cv_sim::run_batch`]: every worker claims the
//! next unclaimed episode index from a shared [`cv_sim::scheduler::WorkQueue`]
//! (dynamic load balancing — early-exiting episodes don't leave tail workers
//! idle) and runs it on a per-worker [`cv_sim::EpisodeWorkspace`], each
//! episode on its own derived seed — so the per-episode results (and
//! therefore the final [`BatchSummary`]) are bit-identical to an in-process
//! `run_batch` of the same [`BatchConfig`], regardless of worker count,
//! claim interleaving, or completion order.
//!
//! Workers report each finished episode over an [`mpsc`] channel to the
//! coordinating thread (the job runner), which owns the progress callback
//! and result assembly — callbacks never run concurrently. Cancellation is
//! a relaxed [`AtomicBool`] checked between episodes; a simulation error in
//! any shard aborts the others at the same granularity.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use cv_sim::scheduler::WorkQueue;
use cv_sim::{BatchConfig, BatchSummary, EpisodeResult, EpisodeWorkspace, SimError, StackSpec};

/// One finished episode, as handed to the progress callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeProgress {
    /// Episode index within the batch (seed order).
    pub index: usize,
    /// The episode's `η` score.
    pub eta: f64,
    /// Episodes finished so far (including this one).
    pub done: usize,
    /// Total episodes in the batch.
    pub total: usize,
    /// Estimated wall-clock seconds remaining, extrapolated from the mean
    /// episode time so far.
    pub eta_secs: f64,
}

/// Terminal state of a sharded job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Every episode ran; summary carries measured wall-clock timing.
    Completed(BatchSummary),
    /// The cancel flag was observed before the batch finished.
    Cancelled {
        /// Episodes that completed before the workers stopped.
        done: usize,
    },
    /// An episode failed; the whole batch fails (episodes are
    /// configuration-deterministic, so a retry cannot succeed either).
    Failed(SimError),
}

/// Runs `batch` with `spec` across `workers` shards, invoking `on_episode`
/// for every finished episode.
///
/// The batch must already be validated ([`BatchConfig::validate`]); an
/// invalid one surfaces as [`JobOutcome::Failed`].
pub fn run_sharded<F>(
    batch: &BatchConfig,
    spec: &StackSpec,
    workers: usize,
    cancel: &AtomicBool,
    mut on_episode: F,
) -> JobOutcome
where
    F: FnMut(EpisodeProgress),
{
    if let Err(e) = batch.validate() {
        return JobOutcome::Failed(e);
    }
    let total = batch.episodes;
    let workers = workers.clamp(1, total);
    let queue = WorkQueue::new(total);
    let abort = AtomicBool::new(false);
    let t0 = Instant::now();

    let mut slots: Vec<Option<EpisodeResult>> = Vec::new();
    slots.resize_with(total, || None);
    let mut first_error: Option<SimError> = None;
    let mut done = 0usize;

    std::thread::scope(|scope| {
        // Rendezvous handoff: a worker's send completes only when the
        // coordinator receives, so workers observe a cancel flag flipped by
        // the progress callback within one episode, instead of racing an
        // arbitrarily deep buffer ahead of it.
        let (tx, rx) = mpsc::sync_channel::<(usize, Result<EpisodeResult, SimError>)>(0);
        for _ in 0..workers {
            let tx = tx.clone();
            let spec = spec.clone();
            let abort = &abort;
            let queue = &queue;
            scope.spawn(move || {
                // One workspace per worker: the planner is cloned once and
                // episode buffers are reused across every claimed episode.
                let mut ws = EpisodeWorkspace::new(spec);
                while let Some(i) = queue.claim() {
                    if cancel.load(Ordering::Relaxed) || abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let result = ws.run(&batch.episode(i), false);
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                    }
                    if tx.send((i, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        while let Ok((index, result)) = rx.recv() {
            match result {
                Ok(r) => {
                    done += 1;
                    let elapsed = t0.elapsed().as_secs_f64();
                    let eta_secs = if done > 0 {
                        elapsed / done as f64 * (total - done) as f64
                    } else {
                        f64::NAN
                    };
                    on_episode(EpisodeProgress {
                        index,
                        eta: r.eta,
                        done,
                        total,
                        eta_secs,
                    });
                    slots[index] = Some(r);
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    });

    if let Some(e) = first_error {
        return JobOutcome::Failed(e);
    }
    // `done == total` means every episode ran — a cancel that landed after
    // the last result still yields the complete (deterministic) summary.
    if done < total {
        return JobOutcome::Cancelled { done };
    }
    let results: Vec<EpisodeResult> = slots
        .into_iter()
        .map(|s| s.expect("all episodes completed"))
        .collect();
    JobOutcome::Completed(BatchSummary::from_results(&results).with_timing(t0.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_sim::{run_batch, EpisodeConfig};

    fn paper_batch(episodes: usize) -> (BatchConfig, StackSpec) {
        let template = EpisodeConfig::paper_default(11);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        (BatchConfig::new(template, episodes), spec)
    }

    #[test]
    fn sharded_matches_run_batch_bit_identically() {
        let (batch, spec) = paper_batch(10);
        let reference = BatchSummary::from_results(&run_batch(&batch, &spec).unwrap());
        for workers in [1, 3, 10] {
            let cancel = AtomicBool::new(false);
            let mut seen = Vec::new();
            let outcome = run_sharded(&batch, &spec, workers, &cancel, |p| seen.push(p.index));
            let JobOutcome::Completed(summary) = outcome else {
                panic!("expected completion with {workers} workers");
            };
            assert!(summary.stats_eq(&reference), "{workers} workers diverged");
            assert!(summary.wall_time_secs > 0.0);
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn progress_counts_monotonically() {
        let (batch, spec) = paper_batch(6);
        let cancel = AtomicBool::new(false);
        let mut last_done = 0;
        let outcome = run_sharded(&batch, &spec, 2, &cancel, |p| {
            assert_eq!(p.done, last_done + 1);
            assert_eq!(p.total, 6);
            assert!(p.eta_secs >= 0.0);
            last_done = p.done;
        });
        assert!(matches!(outcome, JobOutcome::Completed(_)));
        assert_eq!(last_done, 6);
    }

    #[test]
    fn pre_set_cancel_flag_stops_immediately() {
        let (batch, spec) = paper_batch(8);
        let cancel = AtomicBool::new(true);
        let outcome = run_sharded(&batch, &spec, 2, &cancel, |_| {});
        assert_eq!(outcome, JobOutcome::Cancelled { done: 0 });
    }

    #[test]
    fn cancel_mid_batch_reports_partial_progress() {
        let (batch, spec) = paper_batch(12);
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, 1, &cancel, |p| {
            if p.done == 2 {
                cancel.store(true, Ordering::Relaxed);
            }
        });
        match outcome {
            JobOutcome::Cancelled { done } => assert!((2..12).contains(&done)),
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn invalid_batch_fails_typed() {
        let (mut batch, spec) = paper_batch(4);
        batch.starts.clear();
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, 2, &cancel, |_| {});
        assert!(matches!(
            outcome,
            JobOutcome::Failed(SimError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn scenario_error_fails_the_job() {
        let (mut batch, spec) = paper_batch(4);
        // C1 starting inside the conflict zone is geometrically invalid.
        batch.starts = vec![10.0];
        let cancel = AtomicBool::new(false);
        let outcome = run_sharded(&batch, &spec, 2, &cancel, |_| {});
        assert!(matches!(outcome, JobOutcome::Failed(SimError::Scenario(_))));
    }
}
