//! Bounded FIFO job queue with backpressure.
//!
//! Producers (connection handlers) never block: [`JobQueue::try_push`]
//! returns a typed [`PushError`] immediately — [`PushError::Full`] when the
//! queue is at capacity (the server translates it into an `overloaded`
//! event carrying a retry hint) and [`PushError::Closed`] once shutdown has
//! begun — so backpressure is pushed all the way out to the client instead
//! of buffering unboundedly or stranding items in a closing queue.
//! The single consumer (the job runner) blocks on [`JobQueue::pop`], which
//! drains remaining items after [`JobQueue::close`] before reporting
//! exhaustion — that drain is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Typed reasons [`JobQueue::try_push`] can refuse an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the item may be retried later.
    Full {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The queue is closed (shutdown began); the item can never be
    /// accepted. Distinct from [`PushError::Full`] because the caller's
    /// remedy differs: retrying a closed queue is futile.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "job queue is at capacity ({capacity} jobs)")
            }
            PushError::Closed => write!(f, "job queue is closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / blocking-consumer FIFO.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity; [`PushError::Closed`] once
    /// [`JobQueue::close`] has run, however the two calls were interleaved
    /// — an item pushed concurrently with `close` either lands in the queue
    /// (and is drained by [`JobQueue::pop`]) or gets the typed error back,
    /// never silently stranded.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, returning `None` only in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: no new items, consumers drain what remains.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{self, RecvTimeoutError};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    /// Upper bound on any single wait in these tests; generous so slow CI
    /// never false-fails, but a hang still surfaces as a test failure
    /// instead of a stuck run.
    const DEADLINE: Duration = Duration::from_secs(10);

    #[test]
    fn fifo_order_and_backpressure() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_from_another_thread() {
        let q = Arc::new(JobQueue::new(1));
        let rendezvous = Arc::new(Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        let consumer = {
            let q = Arc::clone(&q);
            let rendezvous = Arc::clone(&rendezvous);
            std::thread::spawn(move || {
                rendezvous.wait();
                tx.send(q.pop()).expect("main is waiting on the channel");
            })
        };
        rendezvous.wait();
        // The queue is empty, so pop() cannot return yet — observing the
        // channel (bounded, not a sleep) proves it blocks rather than
        // spuriously returning.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout),
            "pop returned from an empty queue"
        );
        q.try_push(99).unwrap();
        assert_eq!(
            rx.recv_timeout(DEADLINE)
                .expect("push must wake the consumer"),
            Some(99)
        );
        consumer.join().unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let rendezvous = Arc::new(Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        let consumer = {
            let q = Arc::clone(&q);
            let rendezvous = Arc::clone(&rendezvous);
            std::thread::spawn(move || {
                rendezvous.wait();
                tx.send(q.pop()).expect("main is waiting on the channel");
            })
        };
        rendezvous.wait();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout),
            "pop returned from an empty, open queue"
        );
        q.close();
        assert_eq!(
            rx.recv_timeout(DEADLINE)
                .expect("close must wake the consumer"),
            None
        );
        consumer.join().unwrap();
    }

    #[test]
    fn try_push_at_exact_capacity_returns_queue_full_without_blocking() {
        let q = JobQueue::new(3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // At exactly capacity the producer gets the typed error back
        // immediately — even run on this single thread, where blocking
        // would deadlock the test rather than time out.
        assert_eq!(q.try_push(99), Err(PushError::Full { capacity: 3 }));
        assert_eq!(q.len(), 3, "the rejected item must not be buffered");
        // Draining one slot re-admits exactly one item, no more.
        assert_eq!(q.pop(), Some(0));
        q.try_push(99).unwrap();
        assert_eq!(q.try_push(100), Err(PushError::Full { capacity: 3 }));
    }

    #[test]
    fn push_after_concurrent_close_is_typed_closed_not_silent_success() {
        // Barrier-sequenced close/push race: the closer thread runs
        // `close()` strictly between the two barrier crossings, so by the
        // time the producer pushes, the queue is provably closed — the push
        // must come back as the typed `Closed` error, and the item must not
        // be silently stranded in a queue nobody will drain.
        let q = Arc::new(JobQueue::new(4));
        let seq = Arc::new(Barrier::new(2));
        let closer = {
            let q = Arc::clone(&q);
            let seq = Arc::clone(&seq);
            std::thread::spawn(move || {
                seq.wait(); // 1: producer is ready
                q.close();
                seq.wait(); // 2: close has completed
            })
        };
        seq.wait(); // 1
        seq.wait(); // 2 — happens-after close()
        assert_eq!(q.try_push(7), Err(PushError::Closed));
        assert_eq!(q.len(), 0, "the refused item must not be stranded");
        assert_eq!(q.pop(), None, "closed and empty: pop reports exhaustion");
        closer.join().unwrap();
    }

    #[test]
    fn closed_beats_full_in_the_race() {
        // A queue that is both full and closed reports Closed: retrying is
        // futile, and the caller must learn that rather than backing off
        // forever against a server that is shutting down.
        let q = JobQueue::new(1);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }
}
