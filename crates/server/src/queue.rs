//! Bounded FIFO job queue with backpressure.
//!
//! Producers (connection handlers) never block: [`JobQueue::try_push`]
//! returns [`QueueFull`] immediately when the queue is at capacity, which
//! the server translates into a `queue_full` error frame — backpressure is
//! pushed all the way out to the client instead of buffering unboundedly.
//! The single consumer (the job runner) blocks on [`JobQueue::pop`], which
//! drains remaining items after [`JobQueue::close`] before reporting
//! exhaustion — that drain is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Typed backpressure error: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured capacity that was hit.
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is at capacity ({} jobs)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / blocking-consumer FIFO.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] at capacity; closed queues also refuse new items (as
    /// `QueueFull`, since the caller's remedy — report and retry later — is
    /// the same, and the server rejects submissions before this once
    /// shutdown begins).
    pub fn try_push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, returning `None` only in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: no new items, consumers drain what remains.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::{self, RecvTimeoutError};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    /// Upper bound on any single wait in these tests; generous so slow CI
    /// never false-fails, but a hang still surfaces as a test failure
    /// instead of a stuck run.
    const DEADLINE: Duration = Duration::from_secs(10);

    #[test]
    fn fifo_order_and_backpressure() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull { capacity: 2 }));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(q.try_push("c").is_err());
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push_from_another_thread() {
        let q = Arc::new(JobQueue::new(1));
        let rendezvous = Arc::new(Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        let consumer = {
            let q = Arc::clone(&q);
            let rendezvous = Arc::clone(&rendezvous);
            std::thread::spawn(move || {
                rendezvous.wait();
                tx.send(q.pop()).expect("main is waiting on the channel");
            })
        };
        rendezvous.wait();
        // The queue is empty, so pop() cannot return yet — observing the
        // channel (bounded, not a sleep) proves it blocks rather than
        // spuriously returning.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout),
            "pop returned from an empty queue"
        );
        q.try_push(99).unwrap();
        assert_eq!(
            rx.recv_timeout(DEADLINE)
                .expect("push must wake the consumer"),
            Some(99)
        );
        consumer.join().unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let rendezvous = Arc::new(Barrier::new(2));
        let (tx, rx) = mpsc::channel();
        let consumer = {
            let q = Arc::clone(&q);
            let rendezvous = Arc::clone(&rendezvous);
            std::thread::spawn(move || {
                rendezvous.wait();
                tx.send(q.pop()).expect("main is waiting on the channel");
            })
        };
        rendezvous.wait();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Timeout),
            "pop returned from an empty, open queue"
        );
        q.close();
        assert_eq!(
            rx.recv_timeout(DEADLINE)
                .expect("close must wake the consumer"),
            None
        );
        consumer.join().unwrap();
    }

    #[test]
    fn try_push_at_exact_capacity_returns_queue_full_without_blocking() {
        let q = JobQueue::new(3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        // At exactly capacity the producer gets the typed error back
        // immediately — even run on this single thread, where blocking
        // would deadlock the test rather than time out.
        assert_eq!(q.try_push(99), Err(QueueFull { capacity: 3 }));
        assert_eq!(q.len(), 3, "the rejected item must not be buffered");
        // Draining one slot re-admits exactly one item, no more.
        assert_eq!(q.pop(), Some(0));
        q.try_push(99).unwrap();
        assert_eq!(q.try_push(100), Err(QueueFull { capacity: 3 }));
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(q.try_push(2).is_err());
    }
}
