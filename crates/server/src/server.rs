//! The TCP service: accept loop, per-connection handlers, job runner.
//!
//! Threading model, one line each:
//!
//! * **accept loop** — blocks in `accept`, spawns one handler thread per
//!   connection, exits when shutdown begins (woken by a self-connect);
//! * **connection handlers** — parse newline-delimited request frames,
//!   answer control requests inline, and for `submit_batch` stay on the
//!   connection streaming the job's progress events until a terminal frame;
//! * **job runner** — single consumer of the bounded [`JobQueue`], runs one
//!   job at a time sharded across [`run_sharded`] workers, pushing events
//!   into the submitting connection's channel.
//!
//! A malformed line gets an `error` frame and the connection keeps reading;
//! a client that disconnects mid-batch flips its job's cancel flag and the
//! runner moves on — neither path panics or wedges the service. Graceful
//! shutdown stops the accept loop and closes the queue, which the runner
//! then drains: every accepted job still reaches a terminal frame.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cv_sim::{
    store_salt, BatchConfig, EpisodeCache, Quarantine, RecoveryReport, SimError, StackSpec,
    DEFAULT_CACHE_BYTES,
};

use crate::protocol::{Event, JobStatus, Request};
use crate::queue::{JobQueue, PushError};
use crate::wire::{FrameError, FrameReader, Json, MAX_FRAME_BYTES};
use crate::worker::{run_sharded_cached, JobLimits, JobOutcome, Progress};

/// How often an idle connection rechecks the shutdown flag and its idle
/// deadline.
const READ_POLL: Duration = Duration::from_millis(200);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` for an OS-assigned ephemeral port).
    pub addr: String,
    /// Maximum queued (not yet running) jobs before submissions are
    /// refused with a terminal `overloaded` event carrying a retry hint.
    pub queue_capacity: usize,
    /// Worker threads per job (`0` = all available parallelism).
    pub workers: usize,
    /// Per-connection idle deadline: a connection that produces no
    /// complete frame for this long — including one stalled mid-frame
    /// (half-open peer) — is closed, so a bad peer cannot pin a handler
    /// thread forever.
    pub idle_timeout: Duration,
    /// Deadline for one streamed frame write to drain; a peer that stops
    /// reading while its job streams gets disconnected (and its job
    /// cancelled) once the socket buffer stays full this long.
    pub write_timeout: Duration,
    /// Malformed-frame quarantine threshold: after this many undecodable
    /// frames the connection gets a final `quarantined` error frame and is
    /// closed. Each malformed frame before that is answered with
    /// `bad_request` and the connection keeps reading.
    pub max_bad_frames: u32,
    /// Per-frame size cap (see [`crate::wire::MAX_FRAME_BYTES`]); an
    /// oversize line closes the connection (the stream is no longer
    /// frame-aligned).
    pub max_frame_bytes: usize,
    /// Admission-control ceiling on episodes admitted but not yet resolved
    /// (queued + running), across all jobs. A submission that would exceed
    /// it gets a terminal `overloaded` event with a retry hint instead of
    /// being queued. `0` disables the episode budget (the bounded job
    /// queue still applies).
    pub max_pending_episodes: usize,
    /// How many contained panics a single episode seed may cause before the
    /// server quarantines it: further episodes with that seed are skipped
    /// (typed, counted in summaries) rather than re-run. Floor 1.
    pub panic_budget: u32,
    /// Byte budget for the content-addressed episode-result cache that
    /// fronts the shard scheduler: a resubmitted episode whose config,
    /// stack, and code version all match a previous run is answered from
    /// the cache without touching a worker. `0` disables caching.
    pub cache_bytes: usize,
    /// Lane-batched execution width: episodes each worker shard steps in
    /// lockstep with batched NN forward passes (`cv_sim::lanes`). `0` and
    /// `1` both mean the per-episode reference path. Applies only to jobs
    /// whose stack embeds an NN planner; the teacher stacks nameable on
    /// the wire always run per-episode, so today this is forward-looking
    /// configuration surfaced in each summary's `lanes` field.
    pub lanes: usize,
    /// Run every job's episodes on the event-driven engine
    /// (`cv_sim::events`, DESIGN.md §18). Bit-identical to fixed-step
    /// whenever every cadence divides the control step; takes precedence
    /// over [`ServerConfig::lanes`].
    pub event_driven: bool,
    /// Directory for the persistent cache tier (DESIGN.md §17). `None`
    /// keeps the cache memory-only; `Some(dir)` makes the cache survive
    /// daemon restarts: results are appended to checksummed segment files
    /// in the background and reloaded (after checksum verification, torn-
    /// tail truncation, and quarantine of corrupt segments) at startup.
    /// Requires `cache_bytes > 0`. Disk faults degrade the cache to
    /// memory-only; they never fail the server.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 8,
            workers: 0,
            idle_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            max_bad_frames: 8,
            max_frame_bytes: MAX_FRAME_BYTES,
            max_pending_episodes: 0,
            panic_budget: 3,
            cache_bytes: DEFAULT_CACHE_BYTES,
            lanes: 1,
            event_driven: false,
            cache_dir: None,
        }
    }
}

/// Lifecycle phase of a job, for `status` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Cancelled,
    DeadlineExceeded,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::DeadlineExceeded => "deadline_exceeded",
            Phase::Failed => "failed",
        }
    }
}

/// Shared per-job state: progress counters and the cancel flag.
struct JobState {
    id: u64,
    total: usize,
    done: AtomicUsize,
    phase: Mutex<Phase>,
    cancel: AtomicBool,
}

impl JobState {
    fn status(&self) -> JobStatus {
        JobStatus {
            job: self.id,
            state: self
                .phase
                .lock()
                .expect("phase poisoned")
                .name()
                .to_string(),
            done: self.done.load(Ordering::Relaxed),
            total: self.total,
        }
    }

    fn set_phase(&self, phase: Phase) {
        *self.phase.lock().expect("phase poisoned") = phase;
    }
}

/// A queued unit of work.
struct Job {
    state: Arc<JobState>,
    batch: BatchConfig,
    spec: StackSpec,
    /// Absolute deadline, fixed at admission so queue wait counts too.
    deadline: Option<Instant>,
    events: std::sync::mpsc::Sender<Event>,
}

struct Shared {
    queue: JobQueue<Job>,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    config: ServerConfig,
    addr: SocketAddr,
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Episodes admitted but not yet resolved, across all jobs; the unit
    /// the admission budget and the `retry_after_ms` hint are computed in.
    pending_episodes: AtomicUsize,
    /// EWMA of observed per-episode wall time, nanoseconds; seeds the
    /// overload retry hint before any job has completed.
    ewma_episode_nanos: AtomicU64,
    /// Panic-budget bookkeeping for repeat-offender seeds, shared across
    /// every job this server runs.
    quarantine: Quarantine,
    /// Content-addressed episode-result cache shared across every job this
    /// server runs; `None` when `cache_bytes` is 0.
    cache: Option<EpisodeCache>,
    /// What the persistent tier's startup scan found; `None` for
    /// memory-only caches. The quarantined-segment count is stamped onto
    /// every summary this server serves.
    recovery: Option<RecoveryReport>,
}

impl Shared {
    /// Begins graceful shutdown (idempotent): stop accepting, close the
    /// queue so the runner drains, wake the blocked accept call.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn job_statuses(&self, filter: Option<u64>) -> Vec<JobStatus> {
        let jobs = self.jobs.lock().expect("jobs poisoned");
        let mut out: Vec<JobStatus> = jobs
            .values()
            .filter(|j| filter.is_none_or(|id| j.id == id))
            .map(|j| j.status())
            .collect();
        out.sort_by_key(|j| j.job);
        out
    }

    /// Suggested client backoff before resubmitting, derived from how much
    /// admitted work is in front of a new job: pending episodes times the
    /// smoothed per-episode wall time, divided across the worker threads
    /// that will chew through it. Clamped so the hint is never a busy-loop
    /// nor an unbounded stall.
    fn retry_after_ms(&self) -> u64 {
        let pending = self.pending_episodes.load(Ordering::Relaxed) as u64;
        let ewma_nanos = self.ewma_episode_nanos.load(Ordering::Relaxed);
        let workers = effective_workers(self.config.workers, 0) as u64;
        let est_ms = pending.saturating_mul(ewma_nanos) / workers.max(1) / 1_000_000;
        est_ms.clamp(50, 10_000)
    }

    /// Folds one completed job's measured per-episode time into the EWMA.
    fn observe_episode_time(&self, wall: Duration, episodes: usize) {
        if episodes == 0 {
            return;
        }
        let sample = (wall.as_nanos() as u64) / episodes as u64;
        let old = self.ewma_episode_nanos.load(Ordering::Relaxed);
        let next = old / 5 * 4 + sample / 5;
        self.ewma_episode_nanos
            .store(next.max(1), Ordering::Relaxed);
    }

    fn draining(&self) -> usize {
        let jobs = self.jobs.lock().expect("jobs poisoned");
        jobs.values()
            .filter(|j| {
                matches!(
                    *j.phase.lock().expect("phase poisoned"),
                    Phase::Queued | Phase::Running
                )
            })
            .count()
    }
}

/// A running batch-simulation service.
///
/// Dropping (or calling [`Server::shutdown`]) drains in-flight jobs and
/// joins every service thread.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    runner: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Disk-backed when a cache dir is configured: recover whatever a
        // previous daemon persisted (I/O errors here degrade the cache to
        // memory-only rather than failing startup — the cache is an
        // accelerator, never a dependency).
        let (cache, recovery) = match (&config.cache_dir, config.cache_bytes) {
            (_, 0) => (None, None),
            (None, bytes) => (Some(EpisodeCache::new(bytes)), None),
            (Some(dir), bytes) => match EpisodeCache::open(dir, bytes, store_salt()) {
                Ok((cache, report)) => (Some(cache), Some(report)),
                Err(_) => {
                    let report = RecoveryReport {
                        degraded: true,
                        ..RecoveryReport::default()
                    };
                    (Some(EpisodeCache::new(bytes)), Some(report))
                }
            },
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            quarantine: Quarantine::new(config.panic_budget),
            cache,
            recovery,
            config,
            addr,
            conns: Mutex::new(Vec::new()),
            pending_episodes: AtomicUsize::new(0),
            // Seed the hint with ~2 ms/episode, the observed order of
            // magnitude for a paper-default episode; replaced by real
            // measurements as soon as one job completes.
            ewma_episode_nanos: AtomicU64::new(2_000_000),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let runner = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || runner_loop(&shared))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            runner: Some(runner),
        })
    }

    /// Starts a server on an OS-assigned loopback port with default
    /// settings — the entry point for integration tests.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn spawn_ephemeral() -> std::io::Result<Server> {
        Server::start(ServerConfig::default())
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What the persistent cache tier's startup scan found — entries
    /// reloaded, torn bytes truncated, segments quarantined or refused as
    /// stale. `None` when the cache is memory-only (no `cache_dir`).
    pub fn cache_recovery(&self) -> Option<&RecoveryReport> {
        self.shared.recovery.as_ref()
    }

    /// Blocks until the service exits — i.e. until some client sends a
    /// `shutdown` request (or [`Server::shutdown`] runs on another thread)
    /// and the queue drains.
    pub fn wait(mut self) {
        self.finish();
    }

    /// Initiates graceful shutdown and joins all service threads: no new
    /// work is accepted, already-accepted jobs run to their terminal frame.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.runner.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns poisoned"));
        for h in conns {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.finish();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || handle_connection(stream, &shared))
        };
        shared.conns.lock().expect("conns poisoned").push(handle);
    }
}

/// Writes one frame (`json` + `\n`); an error means the client went away.
fn write_frame(stream: &mut TcpStream, event: &Event) -> std::io::Result<()> {
    let mut line = event.to_json().encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(BufReader::new(read_half), shared.config.max_frame_bytes);
    let mut writer = stream;
    let mut bad_frames = 0u32;
    let mut last_frame = Instant::now();

    'conn: loop {
        // Read one frame, polling so idle or half-open connections notice
        // shutdown and their idle deadline. A stalled mid-frame peer is
        // indistinguishable from an idle one here: both stop producing
        // complete frames, both get reaped by the same deadline.
        let line = loop {
            match reader.read_frame() {
                Ok(line) => {
                    last_frame = Instant::now();
                    break line;
                }
                Err(e) if e.is_timeout() => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if last_frame.elapsed() >= shared.config.idle_timeout {
                        let err = Event::Error {
                            code: "idle_timeout".into(),
                            message: format!(
                                "no complete frame in {:?}; closing",
                                shared.config.idle_timeout
                            ),
                        };
                        let _ = write_frame(&mut writer, &err);
                        return;
                    }
                }
                Err(FrameError::TooLong { limit }) => {
                    // The stream is no longer frame-aligned; tell the peer
                    // why and drop the connection.
                    let err = Event::Error {
                        code: "frame_too_long".into(),
                        message: format!("request frame exceeds the {limit}-byte limit"),
                    };
                    let _ = write_frame(&mut writer, &err);
                    return;
                }
                // Clean EOF, EOF mid-frame, or a hard socket error.
                Err(_) => return,
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }

        let request = Json::parse(trimmed)
            .map_err(|e| format!("not JSON: {e}"))
            .and_then(|frame| Request::from_json(&frame).map_err(|e| e.to_string()));
        let request = match request {
            Ok(r) => r,
            Err(message) => {
                bad_frames += 1;
                if bad_frames >= shared.config.max_bad_frames {
                    // Quarantine: this peer is speaking garbage; one final
                    // typed frame, then the connection is gone.
                    let err = Event::Error {
                        code: "quarantined".into(),
                        message: format!(
                            "{bad_frames} malformed frames on one connection; closing"
                        ),
                    };
                    let _ = write_frame(&mut writer, &err);
                    return;
                }
                let err = Event::Error {
                    code: "bad_request".into(),
                    message,
                };
                if write_frame(&mut writer, &err).is_err() {
                    return;
                }
                continue;
            }
        };

        let reply = match request {
            Request::Ping => Event::Pong,
            Request::Status { job } => Event::Status {
                jobs: shared.job_statuses(job),
                queue_capacity: shared.queue.capacity(),
                queue_len: shared.queue.len(),
            },
            Request::Cancel { job } => {
                let found = shared
                    .jobs
                    .lock()
                    .expect("jobs poisoned")
                    .get(&job)
                    .cloned();
                match found {
                    Some(state) => {
                        state.cancel.store(true, Ordering::Relaxed);
                        Event::Status {
                            jobs: vec![state.status()],
                            queue_capacity: shared.queue.capacity(),
                            queue_len: shared.queue.len(),
                        }
                    }
                    None => Event::Error {
                        code: "unknown_job".into(),
                        message: format!("no job with id {job}"),
                    },
                }
            }
            Request::Shutdown => {
                let draining = shared.draining();
                shared.begin_shutdown();
                Event::ShutdownAck { draining }
            }
            Request::SubmitBatch {
                batch,
                stack,
                deadline_ms,
            } => {
                match handle_submit(&mut writer, shared, batch, stack, deadline_ms) {
                    Ok(()) => continue,
                    Err(()) => return, // client went away mid-stream
                }
            }
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
        if matches!(reply, Event::ShutdownAck { .. }) {
            break 'conn;
        }
    }
}

/// Validates, enqueues, and streams one batch submission. `Err(())` means
/// the client disconnected and the connection should be dropped.
fn handle_submit(
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
    batch: BatchConfig,
    stack: crate::protocol::StackSpecWire,
    deadline_ms: Option<u64>,
) -> Result<(), ()> {
    let reject = |writer: &mut TcpStream, code: &str, message: String| {
        let err = Event::Error {
            code: code.into(),
            message,
        };
        write_frame(writer, &err).map_err(|_| ())
    };

    if shared.shutdown.load(Ordering::SeqCst) {
        return reject(
            writer,
            "shutting_down",
            "server is draining; not accepting work".into(),
        );
    }
    if let Err(e) = batch.validate() {
        return reject(writer, "invalid_batch", e.to_string());
    }
    let spec = match stack.resolve(&batch.template) {
        Ok(spec) => spec,
        Err(message) => return reject(writer, "invalid_batch", message),
    };

    // Admission control: refuse (typed, with a hint) rather than queue work
    // the episode budget says the server cannot absorb. The budget is
    // checked optimistically and claimed below only after the queue push
    // succeeds, so a refused job never leaks pending count.
    if shared.config.max_pending_episodes > 0 {
        let pending = shared.pending_episodes.load(Ordering::Relaxed);
        if pending.saturating_add(batch.episodes) > shared.config.max_pending_episodes {
            let overloaded = Event::Overloaded {
                retry_after_ms: shared.retry_after_ms(),
            };
            return write_frame(writer, &overloaded).map_err(|_| ());
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let state = Arc::new(JobState {
        id,
        total: batch.episodes,
        done: AtomicUsize::new(0),
        phase: Mutex::new(Phase::Queued),
        cancel: AtomicBool::new(false),
    });
    let (tx, rx) = std::sync::mpsc::channel();
    let episodes = batch.episodes;
    let job = Job {
        state: Arc::clone(&state),
        batch,
        spec,
        deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        events: tx,
    };
    let queued_ahead = shared.queue.len();
    match shared.queue.try_push(job) {
        Ok(()) => {
            shared
                .pending_episodes
                .fetch_add(episodes, Ordering::Relaxed);
        }
        Err(PushError::Full { .. }) => {
            let overloaded = Event::Overloaded {
                retry_after_ms: shared.retry_after_ms(),
            };
            return write_frame(writer, &overloaded).map_err(|_| ());
        }
        Err(PushError::Closed) => {
            return reject(
                writer,
                "shutting_down",
                "server is draining; not accepting work".into(),
            );
        }
    }
    shared
        .jobs
        .lock()
        .expect("jobs poisoned")
        .insert(id, Arc::clone(&state));

    let accepted = Event::Accepted {
        job: id,
        queued_ahead,
    };
    if write_frame(writer, &accepted).is_err() {
        state.cancel.store(true, Ordering::Relaxed);
        return Err(());
    }

    // Stream the job's events; a write failure = client disconnect, which
    // cancels the job so the runner stops burning CPU on it.
    while let Ok(event) = rx.recv() {
        let terminal = matches!(
            event,
            Event::BatchDone { .. }
                | Event::Cancelled { .. }
                | Event::DeadlineExceeded { .. }
                | Event::Error { .. }
        );
        if write_frame(writer, &event).is_err() {
            state.cancel.store(true, Ordering::Relaxed);
            return Err(());
        }
        if terminal {
            break;
        }
    }
    Ok(())
}

fn runner_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let state = job.state;
        let id = state.id;
        let total = job.batch.episodes;
        if state.cancel.load(Ordering::Relaxed) {
            state.set_phase(Phase::Cancelled);
            shared.pending_episodes.fetch_sub(total, Ordering::Relaxed);
            let _ = job.events.send(Event::Cancelled {
                job: id,
                done: 0,
                partial: None,
            });
            continue;
        }
        state.set_phase(Phase::Running);
        let t0 = Instant::now();
        let mut limits =
            JobLimits::new(effective_workers(shared.config.workers, job.batch.threads))
                .with_lanes(shared.config.lanes.max(1))
                .with_event_driven(shared.config.event_driven);
        if let Some(deadline) = job.deadline {
            limits = limits.with_deadline(deadline);
        }
        // Episodes this job resolved (completed or faulted); whatever it
        // never resolved is released from the pending budget at the end.
        let resolved = std::cell::Cell::new(0usize);
        let outcome = run_sharded_cached(
            &job.batch,
            &job.spec,
            limits,
            &state.cancel,
            Some(&shared.quarantine),
            shared.cache.as_ref(),
            |progress| match progress {
                Progress::Episode(p) => {
                    resolved.set(resolved.get() + 1);
                    shared.pending_episodes.fetch_sub(1, Ordering::Relaxed);
                    state.done.store(p.done, Ordering::Relaxed);
                    let _ = job.events.send(Event::EpisodeDone {
                        job: id,
                        index: p.index,
                        eta: p.eta,
                        done: p.done,
                        total: p.total,
                        eta_secs: p.eta_secs,
                    });
                }
                Progress::Fault {
                    index,
                    seed,
                    kind,
                    detail,
                } => {
                    resolved.set(resolved.get() + 1);
                    shared.pending_episodes.fetch_sub(1, Ordering::Relaxed);
                    let _ = job.events.send(Event::EpisodeFault {
                        job: id,
                        index,
                        seed,
                        kind: kind.name().to_string(),
                        detail,
                    });
                }
            },
        );
        shared
            .pending_episodes
            .fetch_sub(total - resolved.get().min(total), Ordering::Relaxed);
        // Quarantined-segment count from the persistent tier's startup
        // scan: operational metadata (excluded from stats_eq) stamped onto
        // every summary so clients can alert on a daemon that lost
        // segments to corruption.
        let quarantined = shared.recovery.as_ref().map_or(0, |r| r.quarantined.len());
        let stamp = |mut s: cv_sim::BatchSummary| {
            s.cache_quarantined = quarantined;
            s
        };
        let terminal = match outcome {
            JobOutcome::Completed(summary) => {
                state.set_phase(Phase::Done);
                shared.observe_episode_time(t0.elapsed(), summary.episodes);
                Event::BatchDone {
                    job: id,
                    summary: stamp(summary),
                }
            }
            JobOutcome::Cancelled { done, partial } => {
                state.set_phase(Phase::Cancelled);
                Event::Cancelled {
                    job: id,
                    done,
                    partial: Some(stamp(partial)),
                }
            }
            JobOutcome::DeadlineExceeded { done, partial } => {
                state.set_phase(Phase::DeadlineExceeded);
                Event::DeadlineExceeded {
                    job: id,
                    done,
                    partial: Some(stamp(partial)),
                }
            }
            JobOutcome::Failed(error) => {
                state.set_phase(Phase::Failed);
                Event::Error {
                    code: match error {
                        SimError::InvalidBatch { .. } => "invalid_batch".into(),
                        SimError::Scenario(_) => "episode_failed".into(),
                    },
                    message: error.to_string(),
                }
            }
        };
        let _ = job.events.send(terminal);
    }
}

/// Server-side worker count: the batch's own `threads` wins if set,
/// otherwise the server default (`0` = all available parallelism).
fn effective_workers(server_default: usize, batch_threads: usize) -> usize {
    let chosen = if batch_threads > 0 {
        batch_threads
    } else {
        server_default
    };
    if chosen > 0 {
        chosen
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}
