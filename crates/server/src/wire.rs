//! Hand-rolled JSON encode/parse for the wire protocol.
//!
//! The build environment has no crates.io access, so the service speaks a
//! small, fully self-contained JSON dialect over `std::net` instead of
//! pulling in serde. Two deliberate deviations from RFC 8259, both needed
//! because the simulator's statistics are IEEE floats:
//!
//! * numbers without `.`/`e` parse as [`Json::Int`] (`i128`), so `u64`
//!   seeds round-trip exactly;
//! * [`Json::Num`] encodes via Rust's shortest-roundtrip float formatting,
//!   so every finite `f64` survives encode → parse bit-identically, and the
//!   non-finite values encode as `null` (use [`Json::num_or_null`] /
//!   [`Json::as_f64_lossy`] for fields like a batch's reaching time, which
//!   is NaN when no episode reached the target).

use std::fmt::Write as _;
use std::io::{BufRead, ErrorKind};

/// Default upper bound on one newline-delimited frame, in bytes.
///
/// Generous for the protocol (the largest legitimate frame — a
/// `batch_done` summary with per-episode vectors for an 80k-episode batch —
/// stays under ~2 MiB), while still bounding what a malicious or broken
/// peer can make either end buffer for a single line.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// A failure while reading one newline-delimited frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a frame boundary (clean EOF).
    Closed,
    /// The peer closed the connection mid-frame: `partial` bytes of an
    /// unterminated line had arrived. The frame is unusable but the cause
    /// is a transport-level disconnect, not a protocol violation.
    Truncated {
        /// Bytes of the unterminated line that had arrived before EOF.
        partial: usize,
    },
    /// The line exceeded the configured cap before a newline appeared.
    /// The stream is no longer frame-aligned; the connection must be closed.
    TooLong {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// An I/O error, including `WouldBlock`/`TimedOut` from read timeouts
    /// (any partial line is retained, so the read can be resumed).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { partial } => {
                write!(f, "connection closed mid-frame ({partial} bytes buffered)")
            }
            FrameError::TooLong { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl FrameError {
    /// Whether this error is a read-timeout (`WouldBlock`/`TimedOut`) that
    /// the caller may simply retry (the partial line is retained).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
        )
    }
}

/// Reads newline-delimited frames with a hard per-frame size cap.
///
/// Both the client and the server read through this: it is what turns a
/// half-delivered line (connection cut mid-frame) into the typed
/// [`FrameError::Truncated`] instead of a silently mis-parsed partial JSON
/// document, and a runaway line into [`FrameError::TooLong`] instead of
/// unbounded buffering. Read timeouts surface as [`FrameError::Io`] with
/// the partial line retained, so a polling caller resumes where it left
/// off.
pub struct FrameReader<R> {
    inner: R,
    line: Vec<u8>,
    max: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered reader with the given per-frame byte cap.
    pub fn new(inner: R, max_frame_bytes: usize) -> Self {
        FrameReader {
            inner,
            line: Vec::new(),
            max: max_frame_bytes.max(1),
        }
    }

    /// Bytes of an unterminated line currently buffered.
    pub fn pending(&self) -> usize {
        self.line.len()
    }

    /// Reads the next `\n`-terminated frame (terminator stripped).
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on clean EOF, [`FrameError::Truncated`] on
    /// EOF mid-line, [`FrameError::TooLong`] when the cap is exceeded, and
    /// [`FrameError::Io`] for socket errors (including read timeouts,
    /// which are resumable).
    pub fn read_frame(&mut self) -> Result<String, FrameError> {
        loop {
            let buf = match self.inner.fill_buf() {
                Ok(buf) => buf,
                Err(e) => return Err(FrameError::Io(e)),
            };
            if buf.is_empty() {
                return if self.line.is_empty() {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Truncated {
                        partial: self.line.len(),
                    })
                };
            }
            if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
                self.line.extend_from_slice(&buf[..nl]);
                self.inner.consume(nl + 1);
                if self.line.len() > self.max {
                    return Err(FrameError::TooLong { limit: self.max });
                }
                let frame = String::from_utf8_lossy(&self.line).into_owned();
                self.line.clear();
                return Ok(frame);
            }
            let n = buf.len();
            self.line.extend_from_slice(buf);
            self.inner.consume(n);
            if self.line.len() > self.max {
                return Err(FrameError::TooLong { limit: self.max });
            }
        }
    }
}

/// A parsed JSON value.
///
/// Objects preserve insertion order (encoding is deterministic), and lookup
/// is linear — protocol frames are small.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer literal (no fraction/exponent in the source text).
    Int(i128),
    /// Any other number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] with the byte offset of the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Encodes a finite float as a number, or `null` for NaN/±∞.
    pub fn num_or_null(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(x)
        } else {
            Json::Null
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; booleans/strings don't).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Like [`Json::as_f64`] but maps `null` to NaN (inverse of
    /// [`Json::num_or_null`]).
    pub fn as_f64_lossy(&self) -> Option<f64> {
        match self {
            Json::Null => Some(f64::NAN),
            other => other.as_f64(),
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to compact JSON (no whitespace, one line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else {
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    // Integral floats must keep a `.0` (or exponent) so they
                    // parse back as Num, keeping round-trips type-stable.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("invalid integer '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_rng::{Rng, SplitMix64};

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.encode()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Num(0.1),
            Json::Num(-1.5e-12),
            Json::Num(3.0),
            Json::str(""),
            Json::str("plain"),
        ] {
            assert_eq!(roundtrip(&v), v, "{}", v.encode());
        }
    }

    #[test]
    fn u64_seeds_roundtrip_exactly() {
        let seed = 0xDEAD_BEEF_F00D_D00Du64;
        let v = Json::Int(seed as i128);
        assert_eq!(roundtrip(&v).as_u64(), Some(seed));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::num_or_null(f64::NAN).encode(), "null");
        assert_eq!(Json::num_or_null(f64::INFINITY).encode(), "null");
        assert!(Json::parse("null")
            .unwrap()
            .as_f64_lossy()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn escapes_roundtrip() {
        let nasty = "quote\" backslash\\ newline\n tab\t nul-adjacent\u{01} émoji🚗 slash/";
        let v = Json::str(nasty);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Json::str("Aé😀")
        );
    }

    #[test]
    fn structures_parse_with_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1.2.3",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\q\"",
            "\"\\ud800\"",
            "nullx",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    fn random_json(rng: &mut SplitMix64, depth: usize) -> Json {
        let pick = if depth == 0 {
            rng.random_range(0..5usize)
        } else {
            rng.random_range(0..7usize)
        };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(rng.random_bool(0.5)),
            2 => Json::Int(rng.next_u64() as i128 - (rng.next_u64() as i128)),
            3 => {
                // Random finite double from raw bits.
                let mut x = f64::from_bits(rng.next_u64());
                if !x.is_finite() {
                    x = rng.random_range(-1e9..1e9);
                }
                Json::Num(x)
            }
            4 => {
                let len = rng.random_range(0..12usize);
                Json::Str(
                    (0..len)
                        .map(|_| char::from_u32(rng.random_range(1u32..0xD7FF)).unwrap_or('x'))
                        .collect(),
                )
            }
            5 => {
                let len = rng.random_range(0..4usize);
                Json::Arr((0..len).map(|_| random_json(rng, depth - 1)).collect())
            }
            _ => {
                let len = rng.random_range(0..4usize);
                Json::Obj(
                    (0..len)
                        .map(|i| (format!("k{i}"), random_json(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }

    cv_rng::props! {
        fn random_values_roundtrip_bit_identically(seed in 0u64..1_000_000) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let v = random_json(&mut rng, 3);
            let back = roundtrip(&v);
            // Bit-identical floats, not just PartialEq (which this also is).
            assert_eq!(back, v, "encoded: {}", v.encode());
            assert_eq!(back.encode(), v.encode());
        }
    }

    mod frame_reader {
        use super::super::{FrameError, FrameReader};
        use std::io::{BufReader, Read};

        fn reader(bytes: &[u8], max: usize) -> FrameReader<BufReader<&[u8]>> {
            FrameReader::new(BufReader::new(bytes), max)
        }

        #[test]
        fn splits_frames_and_reports_clean_eof() {
            let mut r = reader(b"one\ntwo\n", 64);
            assert_eq!(r.read_frame().unwrap(), "one");
            assert_eq!(r.read_frame().unwrap(), "two");
            assert!(matches!(r.read_frame(), Err(FrameError::Closed)));
        }

        #[test]
        fn eof_mid_line_is_truncated_not_a_frame() {
            let mut r = reader(b"complete\n{\"op\":\"pi", 64);
            assert_eq!(r.read_frame().unwrap(), "complete");
            match r.read_frame() {
                Err(FrameError::Truncated { partial }) => assert_eq!(partial, "{\"op\":\"pi".len()),
                other => panic!("expected Truncated, got {other:?}"),
            }
        }

        #[test]
        fn oversize_line_is_too_long_never_buffered_unboundedly() {
            let big = vec![b'x'; 300];
            let mut r = reader(&big, 64);
            match r.read_frame() {
                Err(FrameError::TooLong { limit }) => assert_eq!(limit, 64),
                other => panic!("expected TooLong, got {other:?}"),
            }
            // A terminated line just over the cap is also rejected.
            let mut line = vec![b'y'; 65];
            line.push(b'\n');
            let mut r = reader(&line, 64);
            assert!(matches!(r.read_frame(), Err(FrameError::TooLong { .. })));
            // At exactly the cap it passes.
            let mut line = vec![b'z'; 64];
            line.push(b'\n');
            let mut r = reader(&line, 64);
            assert_eq!(r.read_frame().unwrap().len(), 64);
        }

        /// A reader that yields `WouldBlock` between two halves of a line,
        /// like a socket read timeout mid-frame.
        struct Stutter {
            parts: Vec<Vec<u8>>,
            blocked: bool,
        }

        impl Read for Stutter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.blocked {
                    self.blocked = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "stutter",
                    ));
                }
                self.blocked = false;
                match self.parts.first_mut() {
                    None => Ok(0),
                    Some(part) => {
                        let n = part.len().min(buf.len());
                        buf[..n].copy_from_slice(&part[..n]);
                        part.drain(..n);
                        if part.is_empty() {
                            self.parts.remove(0);
                        }
                        Ok(n)
                    }
                }
            }
        }

        #[test]
        fn timeouts_retain_the_partial_line_and_resume() {
            let stutter = Stutter {
                parts: vec![b"hel".to_vec(), b"lo\n".to_vec()],
                blocked: false,
            };
            let mut r = FrameReader::new(BufReader::new(stutter), 64);
            let mut timeouts = 0;
            loop {
                match r.read_frame() {
                    Ok(frame) => {
                        assert_eq!(frame, "hello");
                        break;
                    }
                    Err(e) if e.is_timeout() => timeouts += 1,
                    Err(other) => panic!("unexpected error {other:?}"),
                }
            }
            assert!(timeouts >= 2, "saw {timeouts} timeouts");
        }
    }
}
