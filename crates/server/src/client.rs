//! Blocking client helpers shared by `cv-submit` and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cv_sim::{BatchConfig, BatchSummary};

use crate::protocol::{Event, Request, StackSpecWire};
use crate::wire::Json;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something that is not a valid event frame.
    Protocol(String),
    /// The server answered with an `error` frame.
    Server {
        /// Machine-readable code (`queue_full`, `invalid_batch`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The job was cancelled before completing.
    Cancelled {
        /// Episodes finished before cancellation.
        done: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Cancelled { done } => {
                write!(f, "job cancelled after {done} episodes")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a `cv-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to the server.
    ///
    /// # Errors
    ///
    /// Socket errors from resolution or connection.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.to_json().encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads the next event frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on EOF/socket errors, [`ClientError::Protocol`]
    /// on undecodable frames.
    pub fn recv(&mut self) -> Result<Event, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let frame = Json::parse(line.trim()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Event::from_json(&frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends a request and reads a single reply frame.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn round_trip(&mut self, request: &Request) -> Result<Event, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Submits a batch and blocks until the terminal frame, invoking
    /// `on_event` for every streamed frame (including the terminal one).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the submission is rejected or the batch
    /// fails, [`ClientError::Cancelled`] when it is cancelled, plus the
    /// usual I/O and protocol errors.
    pub fn submit_batch<F>(
        &mut self,
        batch: &BatchConfig,
        stack: StackSpecWire,
        mut on_event: F,
    ) -> Result<BatchSummary, ClientError>
    where
        F: FnMut(&Event),
    {
        self.send(&Request::SubmitBatch {
            batch: batch.clone(),
            stack,
        })?;
        loop {
            let event = self.recv()?;
            on_event(&event);
            match event {
                Event::BatchDone { summary, .. } => return Ok(summary),
                Event::Cancelled { done, .. } => return Err(ClientError::Cancelled { done }),
                Event::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Event::Accepted { .. } | Event::EpisodeDone { .. } => {}
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame during submission: {other:?}"
                    )))
                }
            }
        }
    }
}
