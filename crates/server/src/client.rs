//! Blocking client helpers shared by `cv-submit`, the integration tests,
//! and the chaos suite.
//!
//! The client is hardened against a misbehaving network path (see the
//! `cv-chaos` proxy): every socket operation carries a deadline
//! ([`ClientConfig`]), failures are classified as retryable or terminal
//! ([`ClientError::is_retryable`]), and idempotent batch submissions can be
//! retried transparently with bounded, seeded-jitter exponential backoff
//! ([`Client::submit_with_retry`]). Batch submissions are safe to retry
//! because episode results are configuration-deterministic: a resubmitted
//! batch replays bit-identically, and a server that loses the connection
//! mid-stream cancels the orphaned job.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use cv_rng::{derive_seed, Rng, SplitMix64};
use cv_sim::{BatchConfig, BatchSummary};

use crate::protocol::{Event, Request, StackSpecWire};
use crate::wire::{FrameError, FrameReader, Json, MAX_FRAME_BYTES};

/// Deadlines and retry policy for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one `recv` to produce a frame. Must comfortably exceed
    /// the server's inter-frame gap (episodes stream continuously, so the
    /// gap is one episode's wall time plus network latency).
    pub read_timeout: Duration,
    /// Deadline for one frame write to drain into the socket.
    pub write_timeout: Duration,
    /// Per-frame size cap (see [`MAX_FRAME_BYTES`]).
    pub max_frame_bytes: usize,
    /// Retry policy for idempotent requests ([`Client::submit_with_retry`]).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: MAX_FRAME_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

/// Bounded exponential backoff with deterministic (seeded) full jitter.
///
/// Attempt `k` (0-based) sleeps for a uniform draw from
/// `[0, min(base · 2^k, max)]`; the draw comes from a [`SplitMix64`] stream
/// derived from `jitter_seed`, so a retry schedule is reproducible from its
/// seed — which is what lets the chaos suite assert identical outcomes on
/// identical seeds.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retry).
    pub max_attempts: u32,
    /// Backoff base (cap for the first retry's jitter draw).
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Optional bound on the *total* time spent across attempts and
    /// backoff sleeps: once the next sleep would cross it, the last error
    /// is returned instead of retrying. `None` bounds retries only by
    /// `max_attempts`.
    pub retry_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0,
            retry_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff sleep before retry number `attempt` (0-based: the sleep
    /// between the first failure and the second attempt is `attempt = 0`).
    /// Deterministic in `(jitter_seed, attempt)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let ceiling = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.max_delay);
        let mut rng =
            SplitMix64::seed_from_u64(derive_seed(self.jitter_seed, "cv-server.retry-jitter"));
        // Advance to this attempt's draw so schedules stay aligned even if
        // a caller queries attempts out of order.
        let mut draw = 0.0;
        for _ in 0..=attempt {
            draw = rng.random_f64();
        }
        ceiling.mul_f64(draw)
    }
}

/// A client-side failure, classified for retry.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (reset, refused, EOF, disconnect mid-frame).
    /// Retryable: the transport died, the request's effect is deterministic.
    Io(std::io::Error),
    /// A deadline expired (`connect`, `read`, or `write`). Retryable.
    Timeout {
        /// Which operation timed out.
        op: &'static str,
        /// The deadline that expired.
        after: Duration,
    },
    /// The server sent a complete frame that is not a valid event, or a
    /// frame over the size cap. Terminal: a protocol violation will not be
    /// fixed by resubmitting.
    Protocol(String),
    /// The server answered with an `error` frame. Retryable only for
    /// transient codes (`queue_full`); rejections (`invalid_batch`,
    /// `bad_request`, `shutting_down`, `quarantined`, …) are terminal.
    Server {
        /// Machine-readable code (`queue_full`, `invalid_batch`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The job was cancelled before completing. Terminal: cancellation is
    /// an explicit operator action, not a fault.
    Cancelled {
        /// Episodes finished before cancellation.
        done: usize,
    },
    /// The server refused admission: queue or episode budget saturated.
    /// Retryable — and the server's hint is honoured by
    /// [`Client::submit_with_retry`] as a floor on the next backoff sleep.
    Overloaded {
        /// Server-suggested minimum wait before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The job's deadline expired server-side. Terminal: resubmitting the
    /// same deadline would expire the same way; the caller must decide
    /// what to do with the partial results it streamed.
    DeadlineExceeded {
        /// Episodes finished before expiry.
        done: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Timeout { op, after } => {
                write!(f, "{op} timed out after {after:?}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Cancelled { done } => {
                write!(f, "job cancelled after {done} episodes")
            }
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            ClientError::DeadlineExceeded { done } => {
                write!(f, "job deadline exceeded after {done} episodes")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether retrying the same idempotent request on a fresh connection
    /// can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Timeout { .. } | ClientError::Overloaded { .. } => {
                true
            }
            ClientError::Server { code, .. } => code == "queue_full",
            ClientError::Protocol(_)
            | ClientError::Cancelled { .. }
            | ClientError::DeadlineExceeded { .. } => false,
        }
    }

    /// Process exit code for CLI front-ends (`cv-submit`): a typed,
    /// scriptable mapping so tier1/soak scripts can assert on *which*
    /// failure occurred instead of parsing stderr. `0` is success and never
    /// returned here; every error is non-zero.
    ///
    /// * `1` — transport/protocol trouble (I/O, timeout, malformed frames)
    /// * `2` — the server rejected the request with a typed `error` frame
    ///   (`invalid_batch`, `quarantined`, `shutting_down`, …)
    /// * `3` — admission refused: the server is overloaded, retry later
    /// * `4` — the job was cancelled before completing
    /// * `5` — the job's server-side deadline expired
    pub fn exit_code(&self) -> i32 {
        match self {
            ClientError::Io(_) | ClientError::Timeout { .. } | ClientError::Protocol(_) => 1,
            ClientError::Server { .. } => 2,
            ClientError::Overloaded { .. } => 3,
            ClientError::Cancelled { .. } => 4,
            ClientError::DeadlineExceeded { .. } => 5,
        }
    }
}

/// A connection to a `cv-serve` instance.
pub struct Client {
    reader: FrameReader<BufReader<TcpStream>>,
    writer: TcpStream,
    config: ClientConfig,
}

impl Client {
    /// Connects with default deadlines ([`ClientConfig::default`]): the
    /// client never blocks forever on a dead or half-open peer.
    ///
    /// # Errors
    ///
    /// Socket errors from resolution or connection, or
    /// [`ClientError::Timeout`] if the connect deadline expires.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit deadlines and retry policy.
    ///
    /// # Errors
    ///
    /// Socket errors from resolution or connection, or
    /// [`ClientError::Timeout`] if the connect deadline expires.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        for a in &addrs {
            match TcpStream::connect_timeout(a, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(match last {
                    Some(e) if matches!(e.kind(), std::io::ErrorKind::TimedOut) => {
                        ClientError::Timeout {
                            op: "connect",
                            after: config.connect_timeout,
                        }
                    }
                    Some(e) => ClientError::Io(e),
                    None => ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    )),
                })
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        stream.set_write_timeout(Some(config.write_timeout))?;
        let reader = FrameReader::new(BufReader::new(stream.try_clone()?), config.max_frame_bytes);
        Ok(Client {
            reader,
            writer: stream,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket errors; [`ClientError::Timeout`] if the write deadline
    /// expires.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        let mut line = request.to_json().encode();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| self.classify_io("write", e))
    }

    /// Reads the next event frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if no frame arrives within the read
    /// deadline, [`ClientError::Io`] on EOF/reset/disconnect-mid-frame,
    /// [`ClientError::Protocol`] on undecodable or oversize frames.
    pub fn recv(&mut self) -> Result<Event, ClientError> {
        let line = match self.reader.read_frame() {
            Ok(line) => line,
            Err(FrameError::Closed) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Err(FrameError::Truncated { partial }) => {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed mid-frame ({partial} bytes buffered)"),
                )))
            }
            Err(FrameError::TooLong { limit }) => {
                return Err(ClientError::Protocol(format!(
                    "server frame exceeds the {limit}-byte limit"
                )))
            }
            Err(e @ FrameError::Io(_)) if e.is_timeout() => {
                return Err(ClientError::Timeout {
                    op: "read",
                    after: self.config.read_timeout,
                })
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
        };
        let frame = Json::parse(line.trim()).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Event::from_json(&frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn classify_io(&self, op: &'static str, e: std::io::Error) -> ClientError {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ClientError::Timeout {
                op,
                after: match op {
                    "write" => self.config.write_timeout,
                    _ => self.config.read_timeout,
                },
            }
        } else {
            ClientError::Io(e)
        }
    }

    /// Sends a request and reads a single reply frame.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn round_trip(&mut self, request: &Request) -> Result<Event, ClientError> {
        self.send(request)?;
        self.recv()
    }

    /// Submits a batch and blocks until the terminal frame, invoking
    /// `on_event` for every streamed frame (including the terminal one).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the submission is rejected or the batch
    /// fails, [`ClientError::Cancelled`] when it is cancelled, plus the
    /// usual I/O, timeout and protocol errors.
    pub fn submit_batch<F>(
        &mut self,
        batch: &BatchConfig,
        stack: StackSpecWire,
        on_event: F,
    ) -> Result<BatchSummary, ClientError>
    where
        F: FnMut(&Event),
    {
        self.submit_batch_deadline(batch, stack, None, on_event)
    }

    /// [`Client::submit_batch`] with an optional per-job deadline
    /// (milliseconds from server-side admission; queue wait counts).
    ///
    /// # Errors
    ///
    /// As [`Client::submit_batch`], plus [`ClientError::DeadlineExceeded`]
    /// when the deadline expires server-side (partial progress streamed via
    /// `on_event` up to that point) and [`ClientError::Overloaded`] when
    /// admission is refused.
    pub fn submit_batch_deadline<F>(
        &mut self,
        batch: &BatchConfig,
        stack: StackSpecWire,
        deadline_ms: Option<u64>,
        mut on_event: F,
    ) -> Result<BatchSummary, ClientError>
    where
        F: FnMut(&Event),
    {
        self.send(&Request::SubmitBatch {
            batch: batch.clone(),
            stack,
            deadline_ms,
        })?;
        loop {
            let event = self.recv()?;
            on_event(&event);
            match event {
                Event::BatchDone { summary, .. } => return Ok(summary),
                Event::Cancelled { done, .. } => return Err(ClientError::Cancelled { done }),
                Event::DeadlineExceeded { done, .. } => {
                    return Err(ClientError::DeadlineExceeded { done })
                }
                Event::Overloaded { retry_after_ms } => {
                    return Err(ClientError::Overloaded { retry_after_ms })
                }
                Event::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                Event::Accepted { .. } | Event::EpisodeDone { .. } | Event::EpisodeFault { .. } => {
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame during submission: {other:?}"
                    )))
                }
            }
        }
    }

    /// Submits a batch with transparent retry: on a retryable failure
    /// ([`ClientError::is_retryable`]) the whole submission is re-driven on
    /// a *fresh* connection after a seeded-jitter backoff, up to the
    /// policy's attempt budget. Safe because batch results are
    /// configuration-deterministic (a resubmission replays bit-identically)
    /// and the server cancels jobs whose connection died mid-stream.
    ///
    /// `on_event` observes the frames of every attempt, so progress events
    /// may repeat across retries; `on_retry` is told about each abandoned
    /// attempt (its 0-based index and the error that ended it).
    ///
    /// # Errors
    ///
    /// The last error once the attempt budget is exhausted, or the first
    /// terminal (non-retryable) error.
    pub fn submit_with_retry<F, R>(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
        batch: &BatchConfig,
        stack: StackSpecWire,
        on_event: F,
        on_retry: R,
    ) -> Result<BatchSummary, ClientError>
    where
        F: FnMut(&Event),
        R: FnMut(u32, &ClientError),
    {
        Client::submit_with_retry_deadline(addr, config, batch, stack, None, on_event, on_retry)
    }

    /// [`Client::submit_with_retry`] with an optional per-job deadline.
    ///
    /// Two extra behaviours over the plain retry loop: a server
    /// [`ClientError::Overloaded`] hint becomes a *floor* on the next
    /// backoff sleep (the server knows its queue depth better than the
    /// client's blind exponential), and the policy's `retry_deadline`
    /// bounds the total time spent — once the next sleep would cross it,
    /// the last error is returned instead of sleeping.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_with_retry`].
    #[allow(clippy::too_many_arguments)]
    pub fn submit_with_retry_deadline<F, R>(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
        batch: &BatchConfig,
        stack: StackSpecWire,
        deadline_ms: Option<u64>,
        mut on_event: F,
        mut on_retry: R,
    ) -> Result<BatchSummary, ClientError>
    where
        F: FnMut(&Event),
        R: FnMut(u32, &ClientError),
    {
        let attempts = config.retry.max_attempts.max(1);
        let t0 = Instant::now();
        let mut last = None;
        for attempt in 0..attempts {
            let result = Client::connect_with(&addr, config.clone()).and_then(|mut client| {
                client.submit_batch_deadline(batch, stack, deadline_ms, &mut on_event)
            });
            match result {
                Ok(summary) => return Ok(summary),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let mut sleep = config.retry.backoff(attempt);
                    if let ClientError::Overloaded { retry_after_ms } = &e {
                        sleep = sleep.max(Duration::from_millis(*retry_after_ms));
                    }
                    if let Some(budget) = config.retry.retry_deadline {
                        if t0.elapsed() + sleep >= budget {
                            return Err(e);
                        }
                    }
                    on_retry(attempt, &e);
                    std::thread::sleep(sleep);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("attempt budget >= 1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_deterministic_and_grows() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(1),
            jitter_seed: 42,
            retry_deadline: None,
        };
        for attempt in 0..6 {
            let a = policy.backoff(attempt);
            let b = policy.backoff(attempt);
            assert_eq!(a, b, "jitter must be deterministic per attempt");
            let ceiling = Duration::from_millis(100 * (1 << attempt)).min(Duration::from_secs(1));
            assert!(a <= ceiling, "attempt {attempt}: {a:?} > {ceiling:?}");
        }
        // Different seeds give different schedules.
        let other = RetryPolicy {
            jitter_seed: 43,
            ..policy.clone()
        };
        assert!((0..6).any(|k| policy.backoff(k) != other.backoff(k)));
        // The ceiling saturates at max_delay (never overflows).
        assert!(policy.backoff(31) <= Duration::from_secs(1));
    }

    #[test]
    fn error_classification_retryable_vs_terminal() {
        let retryable: Vec<ClientError> = vec![
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "reset",
            )),
            ClientError::Timeout {
                op: "read",
                after: Duration::from_secs(1),
            },
            ClientError::Server {
                code: "queue_full".into(),
                message: "at capacity".into(),
            },
            ClientError::Overloaded { retry_after_ms: 75 },
        ];
        let terminal: Vec<ClientError> = vec![
            ClientError::Protocol("garbage".into()),
            ClientError::Cancelled { done: 3 },
            ClientError::Server {
                code: "invalid_batch".into(),
                message: "zero episodes".into(),
            },
            ClientError::Server {
                code: "shutting_down".into(),
                message: "draining".into(),
            },
            ClientError::Server {
                code: "quarantined".into(),
                message: "too many malformed frames".into(),
            },
            ClientError::DeadlineExceeded { done: 9 },
        ];
        for e in &retryable {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        for e in &terminal {
            assert!(!e.is_retryable(), "{e} should be terminal");
        }
    }

    #[test]
    fn retry_policy_none_gives_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn exit_codes_are_typed_and_nonzero() {
        let cases: Vec<(ClientError, i32)> = vec![
            (
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "reset",
                )),
                1,
            ),
            (
                ClientError::Timeout {
                    op: "read",
                    after: Duration::from_secs(1),
                },
                1,
            ),
            (ClientError::Protocol("garbage".into()), 1),
            (
                ClientError::Server {
                    code: "quarantined".into(),
                    message: "too many malformed frames".into(),
                },
                2,
            ),
            (
                ClientError::Server {
                    code: "invalid_batch".into(),
                    message: "zero episodes".into(),
                },
                2,
            ),
            (ClientError::Overloaded { retry_after_ms: 75 }, 3),
            (ClientError::Cancelled { done: 3 }, 4),
            (ClientError::DeadlineExceeded { done: 9 }, 5),
        ];
        for (e, want) in &cases {
            assert_eq!(e.exit_code(), *want, "{e}");
            assert_ne!(e.exit_code(), 0, "errors must never exit 0");
        }
    }
}
