//! The batch-simulation daemon.
//!
//! Usage: `cargo run --release -p cv-server --bin cv-serve --
//! [--addr 127.0.0.1:7878] [--queue-depth 8] [--workers 0] [--lanes 1]
//! [--event-driven] [--idle-timeout-secs 60] [--max-pending-episodes 0]
//! [--panic-budget 3] [--cache-bytes 67108864] [--no-cache]
//! [--cache-dir PATH]`
//!
//! `--max-pending-episodes` caps episodes admitted but not yet resolved
//! across all jobs (0 = unlimited); a submission over the cap gets a
//! terminal `overloaded` frame with a retry hint. `--panic-budget` is how
//! many contained panics one episode seed may cause before it is
//! quarantined (skipped, typed) on later encounters. `--cache-bytes` sets
//! the byte budget of the content-addressed episode-result cache (default
//! 64 MiB); `--no-cache` (equivalent to `--cache-bytes 0`) disables it.
//! `--cache-dir PATH` makes the cache persistent (DESIGN.md §17): results
//! are appended to checksummed segment files in PATH and recovered —
//! checksum-verified, torn tails truncated, corrupt segments quarantined
//! to `.bad` — when a daemon restarts with the same directory.
//! `--lanes` sets the lane-batched execution width (episodes each worker
//! steps in lockstep with batched NN forward passes; 1 = per-episode) for
//! jobs whose planner stack embeds a neural network. `--event-driven`
//! runs every job on the event-driven episode engine (`cv_sim::events`,
//! DESIGN.md §18) — bit-identical whenever every cadence divides the
//! control step, fastest on sparse platoon workloads; it takes precedence
//! over `--lanes`.
//!
//! Listens for newline-delimited JSON requests (see `cv_server::protocol`),
//! runs submitted batches through the sharded worker pool, and streams
//! progress back to each submitter. Runs until a client sends
//! `{"op":"shutdown"}`, then drains in-flight jobs and exits.

use cv_server::{Server, ServerConfig};

fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn arg_usize(flag: &str, default: usize) -> usize {
    arg_string(flag, &default.to_string())
        .parse()
        .unwrap_or(default)
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn main() {
    let cache_bytes = if has_flag("--no-cache") {
        0
    } else {
        arg_usize("--cache-bytes", cv_sim::DEFAULT_CACHE_BYTES)
    };
    let config = ServerConfig {
        addr: arg_string("--addr", "127.0.0.1:7878"),
        queue_capacity: arg_usize("--queue-depth", 8),
        workers: arg_usize("--workers", 0),
        idle_timeout: std::time::Duration::from_secs(arg_usize("--idle-timeout-secs", 60) as u64),
        max_pending_episodes: arg_usize("--max-pending-episodes", 0),
        panic_budget: arg_usize("--panic-budget", 3) as u32,
        cache_bytes,
        lanes: arg_usize("--lanes", 1),
        event_driven: has_flag("--event-driven"),
        cache_dir: has_flag("--cache-dir")
            .then(|| std::path::PathBuf::from(arg_string("--cache-dir", "cv-cache"))),
        ..ServerConfig::default()
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cv-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    if let Some(r) = server.cache_recovery() {
        println!(
            "cv-serve: cache recovered {} entries from {} segments \
             ({} stale, {} bytes torn tail truncated)",
            r.loaded, r.segments, r.stale, r.truncated_bytes
        );
        for q in &r.quarantined {
            println!(
                "cv-serve: cache quarantined segment {} at offset {}: {}",
                q.segment, q.offset, q.reason
            );
        }
        if r.degraded {
            println!("cv-serve: cache degraded to memory-only (disk unavailable)");
        }
    }
    println!("cv-serve listening on {}", server.local_addr());
    server.wait();
    println!("cv-serve: drained and shut down");
}
