//! Submits a Monte-Carlo batch to a running `cv-serve` and streams progress.
//!
//! Usage:
//!
//! ```text
//! cv-submit [--addr 127.0.0.1:7878] [--episodes 16] [--seed 1]
//!           [--stack teacher_conservative|teacher_aggressive]
//!           [--comm none|delayed|lost] [--drop-prob 0.0]
//!           [--platoon N] [--deadline-ms N] [--quiet]
//! cv-submit status   [--addr …]
//! cv-submit cancel JOB [--addr …]      # or: cv-submit --cancel JOB
//! cv-submit shutdown [--addr …]
//! ```
//!
//! `--deadline-ms` asks the server to stop the job (at episode-step
//! granularity) once that many milliseconds have passed since admission;
//! the partial summary streamed back covers exactly the episodes that
//! finished. `--cancel JOB` is a flag-style alias for the `cancel`
//! subcommand.
//!
//! The batch uses the paper's defaults: template `EpisodeConfig::paper_default`,
//! the 20-point `p_1(0)` start grid, per-episode seeds `base_seed + i`.
//!
//! `--platoon N` swaps the template for an `N`-vehicle platoon
//! (`PlatoonSpec::paper_default`): the leader is the paper's conflicting
//! vehicle, the `N − 2` followers hold 9 m gap-tracking formation behind
//! it, and the comm flags still apply to every V2V channel. `N ≥ 2`;
//! `--platoon 2` is the paper scenario itself.

use cv_server::{Client, ClientError, Event, Request, StackSpecWire};
use cv_sim::{BatchConfig, EpisodeConfig, PlatoonSpec};

fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn arg_usize(flag: &str, default: usize) -> usize {
    arg_string(flag, &default.to_string())
        .parse()
        .unwrap_or(default)
}

fn arg_f64(flag: &str, default: f64) -> f64 {
    arg_string(flag, &default.to_string())
        .parse()
        .unwrap_or(default)
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn die(msg: String) -> ! {
    eprintln!("cv-submit: {msg}");
    std::process::exit(1);
}

/// Typed-error exit: the process code is [`ClientError::exit_code`]'s
/// mapping (2 = server error frame, 3 = overloaded, 4 = cancelled, 5 =
/// deadline exceeded, 1 = transport), so scripts can branch on *which*
/// failure occurred instead of parsing stderr.
fn die_err(e: ClientError) -> ! {
    eprintln!("cv-submit: {e}");
    std::process::exit(e.exit_code());
}

fn main() {
    let addr = arg_string("--addr", "127.0.0.1:7878");
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cv-submit: connect {addr}: {e}");
        std::process::exit(e.exit_code());
    });

    // Accept the subcommand anywhere among the flags: "--addr X status" is
    // as natural to type as "status --addr X", and a silent fall-through to
    // submit would fire off a batch the user never asked for.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let subcommand = args
        .iter()
        .find(|a| matches!(a.as_str(), "status" | "cancel" | "--cancel" | "shutdown"))
        .cloned()
        .unwrap_or_default();
    match subcommand.as_str() {
        "status" => {
            let reply = client
                .round_trip(&Request::Status { job: None })
                .unwrap_or_else(|e| die_err(e));
            print_status(&reply);
        }
        "cancel" | "--cancel" => {
            let pos = args
                .iter()
                .position(|a| a == "cancel" || a == "--cancel")
                .unwrap();
            let job = args
                .get(pos + 1)
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| die("usage: cv-submit cancel JOB (or --cancel JOB)".into()));
            let reply = client
                .round_trip(&Request::Cancel { job })
                .unwrap_or_else(|e| die_err(e));
            print_status(&reply);
        }
        "shutdown" => {
            match client
                .round_trip(&Request::Shutdown)
                .unwrap_or_else(|e| die_err(e))
            {
                Event::ShutdownAck { draining } => {
                    println!("server shutting down ({draining} jobs draining)");
                }
                other => die(format!("unexpected reply: {other:?}")),
            }
        }
        _ => submit(&mut client),
    }
}

fn submit(client: &mut Client) {
    let episodes = arg_usize("--episodes", 16);
    let seed = arg_usize("--seed", 1) as u64;
    let quiet = has_flag("--quiet");
    let deadline_ms = if has_flag("--deadline-ms") {
        Some(arg_usize("--deadline-ms", 0) as u64)
    } else {
        None
    };
    let stack = StackSpecWire::from_name(&arg_string("--stack", "teacher_conservative"))
        .unwrap_or_else(|e| die(e.to_string()));

    let comm = match arg_string("--comm", "none").as_str() {
        "none" => cv_comm::CommSetting::NoDisturbance,
        "delayed" => cv_comm::CommSetting::delayed_with_drop(arg_f64("--drop-prob", 0.0)),
        "lost" => cv_comm::CommSetting::Lost,
        other => die(format!("unknown --comm '{other}' (none|delayed|lost)")),
    };
    let mut template = if has_flag("--platoon") {
        let n = arg_usize("--platoon", 2);
        PlatoonSpec::paper_default(n, seed)
            .unwrap_or_else(|e| die(format!("--platoon {n}: {e}")))
            .episode()
    } else {
        EpisodeConfig::paper_default(seed)
    };
    template.comm = comm;
    let batch = BatchConfig::new(template, episodes);

    let summary = client
        .submit_batch_deadline(&batch, stack, deadline_ms, |event| match event {
            Event::Accepted { job, queued_ahead } => {
                eprintln!("job {job} accepted ({queued_ahead} ahead in queue)");
            }
            Event::EpisodeDone {
                index,
                eta,
                done,
                total,
                eta_secs,
                ..
            } if !quiet => {
                eprintln!(
                    "episode {index:>4}: eta = {eta:+.4}   [{done}/{total}, ~{eta_secs:.1}s left]"
                );
            }
            Event::EpisodeFault {
                index,
                kind,
                detail,
                ..
            } => {
                eprintln!("episode {index:>4}: {kind} — {detail}");
            }
            Event::Overloaded { retry_after_ms } => {
                eprintln!("server overloaded; suggested retry in {retry_after_ms} ms");
            }
            Event::Cancelled { done, partial, .. }
            | Event::DeadlineExceeded { done, partial, .. } => {
                eprintln!("job stopped early after {done} episodes");
                if let Some(p) = partial {
                    eprintln!(
                        "partial: {} completed, {} failed, {} panicked, {} skipped of {}",
                        p.episodes, p.failed, p.panicked, p.skipped, p.requested
                    );
                }
            }
            _ => {}
        })
        .unwrap_or_else(|e| die_err(e));

    println!("episodes            {}", summary.episodes);
    println!("reaching time (s)   {:.3}", summary.reaching_time);
    println!("safe rate           {:.4}", summary.safe_rate);
    println!(
        "mean eta            {:+.4} ± {:.4}",
        summary.eta_mean,
        summary.eta_ci95()
    );
    println!("emergency freq      {:.4}", summary.emergency_frequency);
    println!(
        "wall time           {:.2}s  ({:.1} episodes/s)",
        summary.wall_time_secs, summary.episodes_per_sec
    );
    println!(
        "cache               {} hits, {} misses, {} evictions",
        summary.cache_hits, summary.cache_misses, summary.cache_evictions
    );
    // Persistent-tier counters, printed only when they carry signal (a
    // memory-only daemon stays byte-identical to the pre-persistence
    // output). The "cache" prefix keeps these on the operational side of
    // scripts that diff deterministic summary lines.
    if summary.cache_persisted_hits > 0 || summary.cache_quarantined > 0 {
        println!(
            "cache persisted     {} hits, {} segments quarantined",
            summary.cache_persisted_hits, summary.cache_quarantined
        );
    }
}

fn print_status(reply: &Event) {
    match reply {
        Event::Status {
            jobs,
            queue_capacity,
            queue_len,
        } => {
            println!("queue: {queue_len}/{queue_capacity}");
            if jobs.is_empty() {
                println!("no jobs");
            }
            for j in jobs {
                println!(
                    "job {:>4}  {:<10} {:>5}/{}",
                    j.job, j.state, j.done, j.total
                );
            }
        }
        Event::Error { code, message } => die_err(ClientError::Server {
            code: code.clone(),
            message: message.clone(),
        }),
        other => die(format!("unexpected reply: {other:?}")),
    }
}
