//! Networked batch-simulation service for the connected-vehicle simulator.
//!
//! `cv-server` exposes [`cv_sim::run_batch`]-equivalent Monte-Carlo batches
//! over a TCP JSON-lines protocol, so experiment sweeps (the paper's
//! Tables I/II grids) can run on a long-lived daemon instead of a fresh
//! process per batch:
//!
//! * one request or response frame per line, hand-rolled JSON ([`wire`]) —
//!   the build environment has no crates.io access, so no serde/tokio;
//! * a bounded FIFO job queue plus an episode-count admission budget, both
//!   surfaced as typed backpressure ([`queue`]): a saturated server answers
//!   a submission with a terminal `overloaded` frame carrying a
//!   `retry_after_ms` hint instead of queueing or resetting;
//! * a supervised sharded worker pool ([`worker`]): episodes run under
//!   `catch_unwind` with per-seed panic quarantine, jobs carry optional
//!   deadlines and honour cancellation at episode-step granularity, and a
//!   job that stops early still flushes a typed partial
//!   [`cv_sim::BatchSummary`] over exactly the episodes that finished —
//!   results stay **bit-identical** to an in-process `run_batch` of the
//!   same [`cv_sim::BatchConfig`];
//! * streamed progress (`episode_done` frames with the episode's `η` and a
//!   remaining-time estimate, `episode_fault` frames for contained
//!   failures) followed by one terminal frame: `batch_done`, `cancelled`,
//!   `deadline_exceeded`, or a typed error;
//! * graceful shutdown: the accept loop stops, the queue drains, and every
//!   accepted job still reaches its terminal frame.
//!
//! Binaries: `cv-serve` (the daemon) and `cv-submit` (submit a batch and
//! print streamed progress). In-process use:
//!
//! ```
//! use cv_server::{Client, Server, StackSpecWire};
//! use cv_sim::{BatchConfig, EpisodeConfig};
//!
//! let server = Server::spawn_ephemeral()?;
//! let mut client = Client::connect(server.local_addr())?;
//! let batch = BatchConfig::new(EpisodeConfig::paper_default(1), 4);
//! let summary = client.submit_batch(&batch, StackSpecWire::TeacherConservative, |_| {})?;
//! assert_eq!(summary.episodes, 4);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod wire;
pub mod worker;

pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use protocol::{Event, JobStatus, Request, StackSpecWire};
pub use queue::{JobQueue, PushError};
pub use server::{Server, ServerConfig};
pub use wire::{FrameError, FrameReader, MAX_FRAME_BYTES};
pub use worker::{
    run_sharded, run_sharded_cached, EpisodeProgress, FaultKind, JobLimits, JobOutcome, Progress,
};
