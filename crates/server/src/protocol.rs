//! Typed protocol frames and their JSON (de)serialisation.
//!
//! Every frame is one [`wire::Json`] object on one line. Requests carry an
//! `"op"` discriminator, responses an `"event"` discriminator. The episode
//! payload mirrors [`cv_sim::EpisodeConfig`] field for field, so a submitted
//! batch replays bit-identically to an in-process [`cv_sim::run_batch`].
//!
//! Planner stacks travel by *name* ([`StackSpecWire`]): the NN planners'
//! weight matrices are too heavy for a control protocol, so the wire names
//! the analytic teacher stacks and the server instantiates them against the
//! submitted template ([`StackSpecWire::resolve`]).

use cv_comm::CommSetting;
use cv_dynamics::VehicleState;
use cv_sensing::SensorNoise;
use cv_sim::{BatchConfig, BatchSummary, DriverModel, EpisodeConfig, ExtraVehicle, StackSpec};

use crate::wire::Json;

/// A decode failure: the frame was valid JSON but not a valid frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn bad(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, DecodeError> {
    v.get(key)
        .ok_or_else(|| bad(format!("missing field '{key}'")))
}

/// A float field that may legitimately be NaN (encoded as `null`).
fn nan_field(v: &Json, key: &str) -> Result<f64, DecodeError> {
    field(v, key)?
        .as_f64_lossy()
        .ok_or_else(|| bad(format!("field '{key}' must be a number or null")))
}

fn f64_field(v: &Json, key: &str) -> Result<f64, DecodeError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("field '{key}' must be a number")))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, DecodeError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer")))
}

fn usize_field(v: &Json, key: &str) -> Result<usize, DecodeError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer")))
}

/// A counter added to the summary after the wire format shipped: absent in
/// frames from older peers, decoded as zero rather than a frame error.
fn compat_usize_field(v: &Json, key: &str) -> Result<usize, DecodeError> {
    match v.get(key) {
        None => Ok(0),
        Some(x) => x
            .as_usize()
            .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer"))),
    }
}

/// The lane-width field added after the wire format shipped: absent in
/// frames from older peers, decoded as 1 (every pre-lanes run was the
/// per-episode path) rather than a frame error.
fn compat_lanes_field(v: &Json) -> Result<usize, DecodeError> {
    match v.get("lanes") {
        None => Ok(1),
        Some(x) => x
            .as_usize()
            .ok_or_else(|| bad("field 'lanes' must be a non-negative integer".to_string())),
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, DecodeError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| bad(format!("field '{key}' must be a string")))
}

/// A planner stack nameable on the wire.
///
/// Only the analytic teacher stacks are remotely constructible — they are
/// derived from the episode geometry alone, which keeps the protocol free of
/// multi-kilobyte NN weight payloads while still exercising the full
/// simulator (and the bit-identical acceptance test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackSpecWire {
    /// `StackSpec::pure_teacher_conservative` over the submitted template.
    TeacherConservative,
    /// `StackSpec::pure_teacher_aggressive` over the submitted template.
    TeacherAggressive,
    /// `StackSpec::panic_injection` over the submitted template, panicking
    /// on the template's own seed (episode 0 of a default batch). Only
    /// nameable when the server was built with the `fault-injection`
    /// feature — production builds reject the name at decode time.
    #[cfg(feature = "fault-injection")]
    PanicInjection,
}

impl StackSpecWire {
    /// Wire name of the stack.
    pub fn name(self) -> &'static str {
        match self {
            StackSpecWire::TeacherConservative => "teacher_conservative",
            StackSpecWire::TeacherAggressive => "teacher_aggressive",
            #[cfg(feature = "fault-injection")]
            StackSpecWire::PanicInjection => "panic_injection",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown stack names.
    pub fn from_name(name: &str) -> Result<Self, DecodeError> {
        match name {
            "teacher_conservative" => Ok(StackSpecWire::TeacherConservative),
            "teacher_aggressive" => Ok(StackSpecWire::TeacherAggressive),
            #[cfg(feature = "fault-injection")]
            "panic_injection" => Ok(StackSpecWire::PanicInjection),
            other => Err(bad(format!(
                "unknown stack '{other}' (expected teacher_conservative or teacher_aggressive)"
            ))),
        }
    }

    /// Instantiates the stack against the batch's template episode.
    ///
    /// # Errors
    ///
    /// A human-readable message if the template geometry is invalid.
    pub fn resolve(self, template: &EpisodeConfig) -> Result<StackSpec, String> {
        match self {
            StackSpecWire::TeacherConservative => {
                StackSpec::pure_teacher_conservative(template).map_err(|e| e.to_string())
            }
            StackSpecWire::TeacherAggressive => {
                StackSpec::pure_teacher_aggressive(template).map_err(|e| e.to_string())
            }
            #[cfg(feature = "fault-injection")]
            StackSpecWire::PanicInjection => {
                StackSpec::panic_injection(template, vec![template.seed]).map_err(|e| e.to_string())
            }
        }
    }
}

fn comm_to_json(comm: &CommSetting) -> Json {
    match comm {
        CommSetting::NoDisturbance => Json::obj(vec![("kind", Json::str("no_disturbance"))]),
        CommSetting::Delayed { delay, drop_prob } => Json::obj(vec![
            ("kind", Json::str("delayed")),
            ("delay", Json::Num(*delay)),
            ("drop_prob", Json::Num(*drop_prob)),
        ]),
        CommSetting::Lost => Json::obj(vec![("kind", Json::str("lost"))]),
    }
}

fn comm_from_json(v: &Json) -> Result<CommSetting, DecodeError> {
    match str_field(v, "kind")? {
        "no_disturbance" => Ok(CommSetting::NoDisturbance),
        "delayed" => Ok(CommSetting::Delayed {
            delay: f64_field(v, "delay")?,
            drop_prob: f64_field(v, "drop_prob")?,
        }),
        "lost" => Ok(CommSetting::Lost),
        other => Err(bad(format!("unknown comm kind '{other}'"))),
    }
}

fn driver_to_json(driver: &DriverModel) -> Json {
    match driver {
        DriverModel::UniformRandom => Json::obj(vec![("kind", Json::str("uniform_random"))]),
        DriverModel::OrnsteinUhlenbeck { theta, sigma } => Json::obj(vec![
            ("kind", Json::str("ornstein_uhlenbeck")),
            ("theta", Json::Num(*theta)),
            ("sigma", Json::Num(*sigma)),
        ]),
        DriverModel::ConstantSpeed => Json::obj(vec![("kind", Json::str("constant_speed"))]),
        DriverModel::Ambush { brake_at } => Json::obj(vec![
            ("kind", Json::str("ambush")),
            ("brake_at", Json::Num(*brake_at)),
        ]),
        DriverModel::GapTracking { target_gap, gain } => Json::obj(vec![
            ("kind", Json::str("gap_tracking")),
            ("target_gap", Json::Num(*target_gap)),
            ("gain", Json::Num(*gain)),
        ]),
    }
}

fn driver_from_json(v: &Json) -> Result<DriverModel, DecodeError> {
    match str_field(v, "kind")? {
        "uniform_random" => Ok(DriverModel::UniformRandom),
        "ornstein_uhlenbeck" => Ok(DriverModel::OrnsteinUhlenbeck {
            theta: f64_field(v, "theta")?,
            sigma: f64_field(v, "sigma")?,
        }),
        "constant_speed" => Ok(DriverModel::ConstantSpeed),
        "ambush" => Ok(DriverModel::Ambush {
            brake_at: f64_field(v, "brake_at")?,
        }),
        "gap_tracking" => Ok(DriverModel::GapTracking {
            target_gap: f64_field(v, "target_gap")?,
            gain: f64_field(v, "gain")?,
        }),
        other => Err(bad(format!("unknown driver kind '{other}'"))),
    }
}

fn state_to_json(s: &VehicleState) -> Json {
    Json::obj(vec![
        ("position", Json::Num(s.position)),
        ("velocity", Json::Num(s.velocity)),
        ("acceleration", Json::Num(s.acceleration)),
    ])
}

fn state_from_json(v: &Json) -> Result<VehicleState, DecodeError> {
    Ok(VehicleState::new(
        f64_field(v, "position")?,
        f64_field(v, "velocity")?,
        f64_field(v, "acceleration")?,
    ))
}

/// Encodes an [`EpisodeConfig`] as a JSON object.
pub fn episode_to_json(cfg: &EpisodeConfig) -> Json {
    Json::obj(vec![
        ("other_start_shared", Json::Num(cfg.other_start_shared)),
        ("ego_init", state_to_json(&cfg.ego_init)),
        ("other_init_speed", Json::Num(cfg.other_init_speed)),
        ("dt_c", Json::Num(cfg.dt_c)),
        ("dt_m", Json::Num(cfg.dt_m)),
        ("dt_s", Json::Num(cfg.dt_s)),
        ("horizon", Json::Num(cfg.horizon)),
        ("comm", comm_to_json(&cfg.comm)),
        (
            "noise",
            Json::obj(vec![
                ("delta_p", Json::Num(cfg.noise.delta_p)),
                ("delta_v", Json::Num(cfg.noise.delta_v)),
                ("delta_a", Json::Num(cfg.noise.delta_a)),
            ]),
        ),
        ("seed", Json::Int(cfg.seed as i128)),
        ("sensor_dropout", Json::Num(cfg.sensor_dropout)),
        ("driver", driver_to_json(&cfg.driver)),
        (
            "extra_others",
            Json::Arr(
                cfg.extra_others
                    .iter()
                    .map(|e| {
                        let mut pairs = vec![
                            ("start_shared", Json::Num(e.start_shared)),
                            ("init_speed", Json::Num(e.init_speed)),
                            ("driver", driver_to_json(&e.driver)),
                        ];
                        // Per-vehicle channel override (platoons): only on
                        // the wire when set, so pre-platoon peers still
                        // parse our frames.
                        if let Some(comm) = &e.comm {
                            pairs.push(("comm", comm_to_json(comm)));
                        }
                        Json::obj(pairs)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes an [`EpisodeConfig`] from a JSON object.
///
/// # Errors
///
/// [`DecodeError`] for missing or mistyped fields.
pub fn episode_from_json(v: &Json) -> Result<EpisodeConfig, DecodeError> {
    let noise = field(v, "noise")?;
    let extras = field(v, "extra_others")?
        .as_arr()
        .ok_or_else(|| bad("field 'extra_others' must be an array"))?
        .iter()
        .map(|e| {
            Ok(ExtraVehicle {
                start_shared: f64_field(e, "start_shared")?,
                init_speed: f64_field(e, "init_speed")?,
                driver: driver_from_json(field(e, "driver")?)?,
                // Absent in frames from pre-platoon peers: inherit the
                // template comm, which is exactly what they simulated.
                comm: match e.get("comm") {
                    None | Some(Json::Null) => None,
                    Some(c) => Some(comm_from_json(c)?),
                },
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(EpisodeConfig {
        other_start_shared: f64_field(v, "other_start_shared")?,
        ego_init: state_from_json(field(v, "ego_init")?)?,
        other_init_speed: f64_field(v, "other_init_speed")?,
        dt_c: f64_field(v, "dt_c")?,
        dt_m: f64_field(v, "dt_m")?,
        dt_s: f64_field(v, "dt_s")?,
        horizon: f64_field(v, "horizon")?,
        comm: comm_from_json(field(v, "comm")?)?,
        noise: SensorNoise {
            delta_p: f64_field(noise, "delta_p")?,
            delta_v: f64_field(noise, "delta_v")?,
            delta_a: f64_field(noise, "delta_a")?,
        },
        seed: u64_field(v, "seed")?,
        sensor_dropout: f64_field(v, "sensor_dropout")?,
        driver: driver_from_json(field(v, "driver")?)?,
        extra_others: extras,
    })
}

/// Encodes a [`BatchConfig`] as a JSON object.
pub fn batch_to_json(batch: &BatchConfig) -> Json {
    Json::obj(vec![
        ("template", episode_to_json(&batch.template)),
        ("episodes", Json::Int(batch.episodes as i128)),
        ("base_seed", Json::Int(batch.base_seed as i128)),
        (
            "starts",
            Json::Arr(batch.starts.iter().map(|s| Json::Num(*s)).collect()),
        ),
        ("threads", Json::Int(batch.threads as i128)),
    ])
}

/// Decodes a [`BatchConfig`] from a JSON object.
///
/// # Errors
///
/// [`DecodeError`] for missing or mistyped fields.
pub fn batch_from_json(v: &Json) -> Result<BatchConfig, DecodeError> {
    let starts = field(v, "starts")?
        .as_arr()
        .ok_or_else(|| bad("field 'starts' must be an array"))?
        .iter()
        .map(|s| {
            s.as_f64()
                .ok_or_else(|| bad("starts entries must be numbers"))
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(BatchConfig {
        template: episode_from_json(field(v, "template")?)?,
        episodes: usize_field(v, "episodes")?,
        base_seed: u64_field(v, "base_seed")?,
        starts,
        threads: usize_field(v, "threads")?,
    })
}

/// Encodes a [`BatchSummary`] as a JSON object.
///
/// `reaching_time` (and its per-episode entries) may be NaN, as may the
/// mean statistics of a partial summary that completed zero episodes
/// (cancelled or expired before the first result); NaN encodes as `null`
/// and the decoder maps `null` back to NaN, so a summary round-trips
/// through the wire with [`BatchSummary::stats_eq`] holding.
pub fn summary_to_json(s: &BatchSummary) -> Json {
    Json::obj(vec![
        ("episodes", Json::Int(s.episodes as i128)),
        ("requested", Json::Int(s.requested as i128)),
        ("failed", Json::Int(s.failed as i128)),
        ("panicked", Json::Int(s.panicked as i128)),
        ("skipped", Json::Int(s.skipped as i128)),
        ("reaching_time", Json::num_or_null(s.reaching_time)),
        ("safe_rate", Json::num_or_null(s.safe_rate)),
        ("eta_mean", Json::num_or_null(s.eta_mean)),
        (
            "emergency_frequency",
            Json::num_or_null(s.emergency_frequency),
        ),
        (
            "etas",
            Json::Arr(s.etas.iter().map(|x| Json::num_or_null(*x)).collect()),
        ),
        (
            "reaching_times",
            Json::Arr(
                s.reaching_times
                    .iter()
                    .map(|x| Json::num_or_null(*x))
                    .collect(),
            ),
        ),
        ("wall_time_secs", Json::Num(s.wall_time_secs)),
        ("episodes_per_sec", Json::Num(s.episodes_per_sec)),
        ("cache_hits", Json::Int(s.cache_hits as i128)),
        ("cache_misses", Json::Int(s.cache_misses as i128)),
        ("cache_evictions", Json::Int(s.cache_evictions as i128)),
        (
            "cache_persisted_hits",
            Json::Int(s.cache_persisted_hits as i128),
        ),
        ("cache_quarantined", Json::Int(s.cache_quarantined as i128)),
        ("lanes", Json::Int(s.lanes as i128)),
    ])
}

/// Decodes a [`BatchSummary`] from a JSON object.
///
/// # Errors
///
/// [`DecodeError`] for missing or mistyped fields.
pub fn summary_from_json(v: &Json) -> Result<BatchSummary, DecodeError> {
    fn lossy_vec(v: &Json, key: &str) -> Result<Vec<f64>, DecodeError> {
        field(v, key)?
            .as_arr()
            .ok_or_else(|| bad(format!("field '{key}' must be an array")))?
            .iter()
            .map(|x| {
                x.as_f64_lossy()
                    .ok_or_else(|| bad(format!("'{key}' entries must be numbers or null")))
            })
            .collect()
    }
    Ok(BatchSummary {
        episodes: usize_field(v, "episodes")?,
        requested: usize_field(v, "requested")?,
        failed: usize_field(v, "failed")?,
        panicked: usize_field(v, "panicked")?,
        skipped: usize_field(v, "skipped")?,
        reaching_time: nan_field(v, "reaching_time")?,
        safe_rate: nan_field(v, "safe_rate")?,
        eta_mean: nan_field(v, "eta_mean")?,
        emergency_frequency: nan_field(v, "emergency_frequency")?,
        etas: lossy_vec(v, "etas")?,
        reaching_times: lossy_vec(v, "reaching_times")?,
        wall_time_secs: f64_field(v, "wall_time_secs")?,
        episodes_per_sec: f64_field(v, "episodes_per_sec")?,
        cache_hits: compat_usize_field(v, "cache_hits")?,
        cache_misses: compat_usize_field(v, "cache_misses")?,
        cache_evictions: compat_usize_field(v, "cache_evictions")?,
        cache_persisted_hits: compat_usize_field(v, "cache_persisted_hits")?,
        cache_quarantined: compat_usize_field(v, "cache_quarantined")?,
        lanes: compat_lanes_field(v)?,
    })
}

/// A client → server request frame.
///
/// `SubmitBatch` dominates the enum size, but requests are decoded one at a
/// time and handed off immediately — never stored in bulk — so the
/// indirection a `Box` would add buys nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a batch; the connection then streams progress events.
    SubmitBatch {
        /// The batch to run.
        batch: BatchConfig,
        /// Which planner stack to run it with.
        stack: StackSpecWire,
        /// Optional job deadline, milliseconds from admission. Queue wait
        /// counts against it; expiry stops the job at episode-step
        /// granularity with a typed `deadline_exceeded` event.
        deadline_ms: Option<u64>,
    },
    /// Report queue/job state — all jobs, or one if `job` is given.
    Status {
        /// Restrict the report to this job id.
        job: Option<u64>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Liveness probe.
    Ping,
    /// Stop accepting work, drain in-flight jobs, exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as one JSON frame.
    pub fn to_json(&self) -> Json {
        match self {
            Request::SubmitBatch {
                batch,
                stack,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("op", Json::str("submit_batch")),
                    ("batch", batch_to_json(batch)),
                    ("stack", Json::str(stack.name())),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", Json::Int(*ms as i128)));
                }
                Json::obj(pairs)
            }
            Request::Status { job } => {
                let mut pairs = vec![("op", Json::str("status"))];
                if let Some(id) = job {
                    pairs.push(("job", Json::Int(*id as i128)));
                }
                Json::obj(pairs)
            }
            Request::Cancel { job } => Json::obj(vec![
                ("op", Json::str("cancel")),
                ("job", Json::Int(*job as i128)),
            ]),
            Request::Ping => Json::obj(vec![("op", Json::str("ping"))]),
            Request::Shutdown => Json::obj(vec![("op", Json::str("shutdown"))]),
        }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown ops or malformed payloads.
    pub fn from_json(v: &Json) -> Result<Request, DecodeError> {
        match str_field(v, "op")? {
            "submit_batch" => Ok(Request::SubmitBatch {
                batch: batch_from_json(field(v, "batch")?)?,
                stack: StackSpecWire::from_name(str_field(v, "stack")?)?,
                deadline_ms: match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(ms) => Some(ms.as_u64().ok_or_else(|| {
                        bad("field 'deadline_ms' must be a non-negative integer")
                    })?),
                },
            }),
            "status" => Ok(Request::Status {
                job: match v.get("job") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_u64()
                            .ok_or_else(|| bad("field 'job' must be a non-negative integer"))?,
                    ),
                },
            }),
            "cancel" => Ok(Request::Cancel {
                job: u64_field(v, "job")?,
            }),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!("unknown op '{other}'"))),
        }
    }
}

/// A server → client response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The batch was accepted under `job` (with its queue position).
    Accepted {
        /// Assigned job id.
        job: u64,
        /// Jobs ahead of it in the queue.
        queued_ahead: usize,
    },
    /// One episode finished.
    EpisodeDone {
        /// Job id.
        job: u64,
        /// Episode index within the batch (seed order).
        index: usize,
        /// The episode's `η` score.
        eta: f64,
        /// Episodes finished so far.
        done: usize,
        /// Total episodes in the batch.
        total: usize,
        /// Estimated wall-clock seconds remaining (extrapolated).
        eta_secs: f64,
    },
    /// The batch finished; terminal frame for a submission.
    BatchDone {
        /// Job id.
        job: u64,
        /// Aggregate statistics (timing fields measured server-side).
        summary: BatchSummary,
    },
    /// The job was cancelled; terminal frame for a submission.
    Cancelled {
        /// Job id.
        job: u64,
        /// Episodes that had finished before cancellation.
        done: usize,
        /// Partial statistics over exactly those episodes (absent when the
        /// job was cancelled while still queued).
        partial: Option<BatchSummary>,
    },
    /// The job's deadline passed; terminal frame for a submission.
    DeadlineExceeded {
        /// Job id.
        job: u64,
        /// Episodes that had finished before expiry.
        done: usize,
        /// Partial statistics over exactly those episodes.
        partial: Option<BatchSummary>,
    },
    /// One episode resolved without a result (typed error, contained
    /// panic, or quarantined seed); the batch keeps running. Non-terminal.
    EpisodeFault {
        /// Job id.
        job: u64,
        /// Episode index within the batch.
        index: usize,
        /// The episode seed.
        seed: u64,
        /// `failed`, `panicked`, or `quarantined`.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Admission control refused the submission: the queue or the in-flight
    /// episode budget is saturated. Terminal for a submission; the hint is
    /// honoured by `submit_with_retry` as a backoff floor.
    Overloaded {
        /// Suggested minimum wait before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// Something went wrong; terminal when it answers a submission.
    Error {
        /// Machine-readable code (`queue_full`, `invalid_batch`, `bad_request`, …).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `status`.
    Status {
        /// One entry per known job.
        jobs: Vec<JobStatus>,
        /// Queue capacity.
        queue_capacity: usize,
        /// Jobs currently queued (not yet running).
        queue_len: usize,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`: the server will drain and exit.
    ShutdownAck {
        /// Jobs still queued or running at the time of the request.
        draining: usize,
    },
}

/// One job's state in a [`Event::Status`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub job: u64,
    /// `queued`, `running`, `done`, `cancelled`, or `failed`.
    pub state: String,
    /// Episodes finished.
    pub done: usize,
    /// Episodes total.
    pub total: usize,
}

impl Event {
    /// Encodes the event as one JSON frame.
    pub fn to_json(&self) -> Json {
        match self {
            Event::Accepted { job, queued_ahead } => Json::obj(vec![
                ("event", Json::str("accepted")),
                ("job", Json::Int(*job as i128)),
                ("queued_ahead", Json::Int(*queued_ahead as i128)),
            ]),
            Event::EpisodeDone {
                job,
                index,
                eta,
                done,
                total,
                eta_secs,
            } => Json::obj(vec![
                ("event", Json::str("episode_done")),
                ("job", Json::Int(*job as i128)),
                ("index", Json::Int(*index as i128)),
                ("eta", Json::num_or_null(*eta)),
                ("done", Json::Int(*done as i128)),
                ("total", Json::Int(*total as i128)),
                ("eta_secs", Json::num_or_null(*eta_secs)),
            ]),
            Event::BatchDone { job, summary } => Json::obj(vec![
                ("event", Json::str("batch_done")),
                ("job", Json::Int(*job as i128)),
                ("summary", summary_to_json(summary)),
            ]),
            Event::Cancelled { job, done, partial } => {
                let mut pairs = vec![
                    ("event", Json::str("cancelled")),
                    ("job", Json::Int(*job as i128)),
                    ("done", Json::Int(*done as i128)),
                ];
                if let Some(p) = partial {
                    pairs.push(("partial", summary_to_json(p)));
                }
                Json::obj(pairs)
            }
            Event::DeadlineExceeded { job, done, partial } => {
                let mut pairs = vec![
                    ("event", Json::str("deadline_exceeded")),
                    ("job", Json::Int(*job as i128)),
                    ("done", Json::Int(*done as i128)),
                ];
                if let Some(p) = partial {
                    pairs.push(("partial", summary_to_json(p)));
                }
                Json::obj(pairs)
            }
            Event::EpisodeFault {
                job,
                index,
                seed,
                kind,
                detail,
            } => Json::obj(vec![
                ("event", Json::str("episode_fault")),
                ("job", Json::Int(*job as i128)),
                ("index", Json::Int(*index as i128)),
                ("seed", Json::Int(*seed as i128)),
                ("kind", Json::str(kind.clone())),
                ("detail", Json::str(detail.clone())),
            ]),
            Event::Overloaded { retry_after_ms } => Json::obj(vec![
                ("event", Json::str("overloaded")),
                ("retry_after_ms", Json::Int(*retry_after_ms as i128)),
            ]),
            Event::Error { code, message } => Json::obj(vec![
                ("event", Json::str("error")),
                ("code", Json::str(code.clone())),
                ("message", Json::str(message.clone())),
            ]),
            Event::Status {
                jobs,
                queue_capacity,
                queue_len,
            } => Json::obj(vec![
                ("event", Json::str("status")),
                (
                    "jobs",
                    Json::Arr(
                        jobs.iter()
                            .map(|j| {
                                Json::obj(vec![
                                    ("job", Json::Int(j.job as i128)),
                                    ("state", Json::str(j.state.clone())),
                                    ("done", Json::Int(j.done as i128)),
                                    ("total", Json::Int(j.total as i128)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("queue_capacity", Json::Int(*queue_capacity as i128)),
                ("queue_len", Json::Int(*queue_len as i128)),
            ]),
            Event::Pong => Json::obj(vec![("event", Json::str("pong"))]),
            Event::ShutdownAck { draining } => Json::obj(vec![
                ("event", Json::str("shutdown_ack")),
                ("draining", Json::Int(*draining as i128)),
            ]),
        }
    }

    /// Decodes an event frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown events or malformed payloads.
    pub fn from_json(v: &Json) -> Result<Event, DecodeError> {
        match str_field(v, "event")? {
            "accepted" => Ok(Event::Accepted {
                job: u64_field(v, "job")?,
                queued_ahead: usize_field(v, "queued_ahead")?,
            }),
            "episode_done" => Ok(Event::EpisodeDone {
                job: u64_field(v, "job")?,
                index: usize_field(v, "index")?,
                eta: field(v, "eta")?
                    .as_f64_lossy()
                    .ok_or_else(|| bad("field 'eta' must be a number or null"))?,
                done: usize_field(v, "done")?,
                total: usize_field(v, "total")?,
                eta_secs: field(v, "eta_secs")?
                    .as_f64_lossy()
                    .ok_or_else(|| bad("field 'eta_secs' must be a number or null"))?,
            }),
            "batch_done" => Ok(Event::BatchDone {
                job: u64_field(v, "job")?,
                summary: summary_from_json(field(v, "summary")?)?,
            }),
            "cancelled" => Ok(Event::Cancelled {
                job: u64_field(v, "job")?,
                done: usize_field(v, "done")?,
                partial: match v.get("partial") {
                    None | Some(Json::Null) => None,
                    Some(p) => Some(summary_from_json(p)?),
                },
            }),
            "deadline_exceeded" => Ok(Event::DeadlineExceeded {
                job: u64_field(v, "job")?,
                done: usize_field(v, "done")?,
                partial: match v.get("partial") {
                    None | Some(Json::Null) => None,
                    Some(p) => Some(summary_from_json(p)?),
                },
            }),
            "episode_fault" => Ok(Event::EpisodeFault {
                job: u64_field(v, "job")?,
                index: usize_field(v, "index")?,
                seed: u64_field(v, "seed")?,
                kind: str_field(v, "kind")?.to_string(),
                detail: str_field(v, "detail")?.to_string(),
            }),
            "overloaded" => Ok(Event::Overloaded {
                retry_after_ms: u64_field(v, "retry_after_ms")?,
            }),
            "error" => Ok(Event::Error {
                code: str_field(v, "code")?.to_string(),
                message: str_field(v, "message")?.to_string(),
            }),
            "status" => Ok(Event::Status {
                jobs: field(v, "jobs")?
                    .as_arr()
                    .ok_or_else(|| bad("field 'jobs' must be an array"))?
                    .iter()
                    .map(|j| {
                        Ok(JobStatus {
                            job: u64_field(j, "job")?,
                            state: str_field(j, "state")?.to_string(),
                            done: usize_field(j, "done")?,
                            total: usize_field(j, "total")?,
                        })
                    })
                    .collect::<Result<Vec<_>, DecodeError>>()?,
                queue_capacity: usize_field(v, "queue_capacity")?,
                queue_len: usize_field(v, "queue_len")?,
            }),
            "pong" => Ok(Event::Pong),
            "shutdown_ack" => Ok(Event::ShutdownAck {
                draining: usize_field(v, "draining")?,
            }),
            other => Err(bad(format!("unknown event '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> BatchConfig {
        let mut template = EpisodeConfig::paper_default(42);
        template.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.35,
        };
        template.driver = DriverModel::OrnsteinUhlenbeck {
            theta: 0.5,
            sigma: 1.25,
        };
        template.extra_others.push(ExtraVehicle::new(
            80.0,
            9.0,
            DriverModel::Ambush { brake_at: 2.0 },
        ));
        template.extra_others.push(
            ExtraVehicle::new(
                89.0,
                10.0,
                DriverModel::GapTracking {
                    target_gap: 9.0,
                    gain: 0.6,
                },
            )
            .with_comm(CommSetting::Lost),
        );
        let mut batch = BatchConfig::new(template, 16);
        batch.base_seed = u64::MAX - 7;
        batch.threads = 3;
        batch
    }

    #[test]
    fn batch_roundtrips_exactly() {
        let batch = sample_batch();
        let json = batch_to_json(&batch);
        let reparsed = Json::parse(&json.encode()).unwrap();
        assert_eq!(batch_from_json(&reparsed).unwrap(), batch);
    }

    #[test]
    fn extras_without_comm_decode_as_inherited() {
        // Frames from pre-platoon peers carry no per-vehicle comm entry;
        // those vehicles must inherit the template channel (comm: None),
        // not fail the frame.
        let batch = sample_batch();
        let Json::Obj(mut top) = batch_to_json(&batch) else {
            panic!("batch must encode as an object");
        };
        for (k, v) in &mut top {
            if k != "template" {
                continue;
            }
            let Json::Obj(tpl) = v else { unreachable!() };
            for (tk, tv) in tpl.iter_mut() {
                if tk != "extra_others" {
                    continue;
                }
                let Json::Arr(extras) = tv else {
                    unreachable!()
                };
                for e in extras.iter_mut() {
                    let Json::Obj(pairs) = e else { unreachable!() };
                    pairs.retain(|(k, _)| k != "comm");
                }
            }
        }
        let back = batch_from_json(&Json::parse(&Json::Obj(top).encode()).unwrap()).unwrap();
        assert!(back.template.extra_others.iter().all(|e| e.comm.is_none()));
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::SubmitBatch {
                batch: sample_batch(),
                stack: StackSpecWire::TeacherAggressive,
                deadline_ms: None,
            },
            Request::SubmitBatch {
                batch: sample_batch(),
                stack: StackSpecWire::TeacherConservative,
                deadline_ms: Some(2_500),
            },
            Request::Status { job: None },
            Request::Status { job: Some(3) },
            Request::Cancel { job: 9 },
            Request::Ping,
            Request::Shutdown,
        ] {
            let reparsed = Json::parse(&req.to_json().encode()).unwrap();
            assert_eq!(Request::from_json(&reparsed).unwrap(), req);
        }
    }

    #[test]
    fn summary_with_nan_reaching_time_roundtrips_stats_eq() {
        let summary = BatchSummary {
            episodes: 2,
            requested: 4,
            failed: 1,
            panicked: 1,
            skipped: 0,
            reaching_time: f64::NAN,
            safe_rate: 0.5,
            eta_mean: -0.25,
            emergency_frequency: 0.125,
            etas: vec![0.5, -1.0],
            reaching_times: vec![],
            wall_time_secs: 1.5,
            episodes_per_sec: 4.0 / 3.0,
            cache_hits: 1,
            cache_misses: 3,
            cache_evictions: 2,
            cache_persisted_hits: 1,
            cache_quarantined: 2,
            lanes: 4,
        };
        let reparsed = Json::parse(&summary_to_json(&summary).encode()).unwrap();
        let back = summary_from_json(&reparsed).unwrap();
        assert!(back.stats_eq(&summary));
        assert_eq!(back.wall_time_secs, summary.wall_time_secs);
        assert_eq!(
            (back.cache_hits, back.cache_misses, back.cache_evictions),
            (1, 3, 2)
        );
        assert_eq!(
            (back.cache_persisted_hits, back.cache_quarantined),
            (1, 2),
            "persistent-tier counters ride the wire"
        );
        assert_eq!(back.lanes, 4, "lane width rides the wire");
    }

    #[test]
    fn summary_without_cache_counters_decodes_as_zero() {
        // Frames from peers that predate the cache counters must still
        // decode — the counters default to zero, not a frame error.
        let summary = BatchSummary {
            episodes: 1,
            requested: 1,
            failed: 0,
            panicked: 0,
            skipped: 0,
            reaching_time: 8.0,
            safe_rate: 1.0,
            eta_mean: 0.5,
            emergency_frequency: 0.0,
            etas: vec![0.5],
            reaching_times: vec![8.0],
            wall_time_secs: 0.1,
            episodes_per_sec: 10.0,
            cache_hits: 7,
            cache_misses: 1,
            cache_evictions: 4,
            cache_persisted_hits: 5,
            cache_quarantined: 2,
            lanes: 1,
        };
        let Json::Obj(pairs) = summary_to_json(&summary) else {
            panic!("summary must encode as an object");
        };
        let legacy = Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| !k.starts_with("cache_"))
                .collect(),
        );
        let back = summary_from_json(&Json::parse(&legacy.encode()).unwrap()).unwrap();
        assert_eq!(
            (back.cache_hits, back.cache_misses, back.cache_evictions),
            (0, 0, 0)
        );
        assert_eq!(
            (back.cache_persisted_hits, back.cache_quarantined),
            (0, 0),
            "persistent-tier counters default to zero from older peers"
        );
    }

    #[test]
    fn summary_without_lanes_decodes_as_one() {
        // Frames from peers that predate lane batching must still decode —
        // every pre-lanes run was the per-episode path, so the field
        // defaults to 1, not 0 and not a frame error.
        let summary = BatchSummary {
            episodes: 1,
            requested: 1,
            failed: 0,
            panicked: 0,
            skipped: 0,
            reaching_time: 8.0,
            safe_rate: 1.0,
            eta_mean: 0.5,
            emergency_frequency: 0.0,
            etas: vec![0.5],
            reaching_times: vec![8.0],
            wall_time_secs: 0.1,
            episodes_per_sec: 10.0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_persisted_hits: 0,
            cache_quarantined: 0,
            lanes: 8,
        };
        let Json::Obj(pairs) = summary_to_json(&summary) else {
            panic!("summary must encode as an object");
        };
        let legacy = Json::Obj(pairs.into_iter().filter(|(k, _)| k != "lanes").collect());
        let back = summary_from_json(&Json::parse(&legacy.encode()).unwrap()).unwrap();
        assert_eq!(back.lanes, 1);
        assert!(back.stats_eq(&summary), "lanes is operational metadata");
    }

    #[test]
    fn events_roundtrip() {
        for ev in [
            Event::Accepted {
                job: 1,
                queued_ahead: 2,
            },
            Event::EpisodeDone {
                job: 1,
                index: 5,
                eta: 0.25,
                done: 6,
                total: 16,
                eta_secs: 1.5,
            },
            Event::Cancelled {
                job: 1,
                done: 3,
                partial: None,
            },
            Event::EpisodeFault {
                job: 1,
                index: 7,
                seed: 42,
                kind: "panicked".into(),
                detail: "injected planner fault".into(),
            },
            Event::Overloaded {
                retry_after_ms: 250,
            },
            Event::Error {
                code: "queue_full".into(),
                message: "queue is at capacity (4 jobs)".into(),
            },
            Event::Status {
                jobs: vec![JobStatus {
                    job: 1,
                    state: "running".into(),
                    done: 4,
                    total: 16,
                }],
                queue_capacity: 4,
                queue_len: 1,
            },
            Event::Pong,
            Event::ShutdownAck { draining: 2 },
        ] {
            let reparsed = Json::parse(&ev.to_json().encode()).unwrap();
            assert_eq!(Event::from_json(&reparsed).unwrap(), ev);
        }
    }

    #[test]
    fn unknown_stack_is_a_decode_error() {
        assert!(StackSpecWire::from_name("ultimate").is_err());
        let req = Json::parse(r#"{"op":"warp_drive"}"#).unwrap();
        assert!(Request::from_json(&req).is_err());
    }
}
