//! Lane-batched SIMD kernels for the structure-of-arrays forward pass.
//!
//! The lane layout is fixed at [`LANE_WIDTH`] = 8 episodes wide: an
//! activation block for a layer of width `d` is a flat `d × 8` row-major
//! slab where element `k * 8 + lane` is feature `k` of episode `lane`.
//! Each element's value depends only on its own lane's column, so dead
//! (unoccupied) lanes simply carry zeros and never perturb live lanes.
//!
//! Three kernel tiers are provided — AVX-512VL (256-bit ops, the fastest
//! on current hardware with a single 512-bit FMA port), AVX2+FMA, and a
//! scalar fallback — selected once per process by runtime feature
//! detection. All three compute **bit-identical** results: the scalar tier
//! mirrors the vector tiers' exact per-element op sequence (`mul_add` ≡
//! FMA, exponent-field construction of `2^n` ≡ `vscalefpd`), so batched
//! results never depend on the host's ISA, only on the lane math itself.
//!
//! `tanh` is the one place the lane path diverges numerically from the
//! per-episode reference: `f64::tanh` goes through libm and does not
//! vectorise, so the lane kernels use a branchless `expm1`-based
//! approximation ([`tanh_lane`], max relative error ≈ 1e-15 ≈ a few ulp)
//! evaluated identically in all tiers. Every other activation is exact.

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// Number of episodes stepped in lockstep by the lane-batched kernels.
///
/// Activation slabs are always this many lanes wide regardless of how many
/// lanes are live; callers zero-fill dead lanes.
pub const LANE_WIDTH: usize = 8;

// Taylor coefficients of expm1 about 0 (degree 12), evaluated by Horner
// with FMA. |t| ≤ ln(2)/2 after range reduction, where degree 12 reaches
// ~1 ulp.
const C12: f64 = 1.0 / 479_001_600.0;
const C11: f64 = 1.0 / 39_916_800.0;
const C10: f64 = 1.0 / 3_628_800.0;
const C9: f64 = 1.0 / 362_880.0;
const C8: f64 = 1.0 / 40_320.0;
const C7: f64 = 1.0 / 5_040.0;
const C6: f64 = 1.0 / 720.0;
const C5: f64 = 1.0 / 120.0;
const C4: f64 = 1.0 / 24.0;
const C3: f64 = 1.0 / 6.0;
const LOG2E_2: f64 = 2.0 * std::f64::consts::LOG2_E;
const LN2: f64 = std::f64::consts::LN_2;

/// Scalar lane `tanh`: the reference the vector tiers are bit-tested
/// against, and the kernel itself on non-x86 hosts.
///
/// Computes `tanh(|x|) = (e^{2|x|} − 1)/(e^{2|x|} + 1)` with
/// `e^{2|x|} = 2^n · e^t` (range reduction `2|x| = n·ln2 + t`,
/// `|t| ≤ ln2/2`) in the cancellation-free `expm1` form
/// `N = 2^n·q + (2^n − 1)`, `D = 2^n·q + (2^n + 1)`, `q = e^t − 1`,
/// then restores the sign. `|x|` is capped at 20 (tanh saturates to 1.0
/// exactly well before that), which also bounds `n` for the exact
/// exponent-field construction of `2^n`.
#[inline(always)]
pub(crate) fn tanh_lane(x: f64) -> f64 {
    let ax = x.abs().min(20.0);
    let y = ax * LOG2E_2;
    let n = (y + 0.5).floor();
    let t = (y - n) * LN2;
    let mut q: f64 = C12;
    q = q.mul_add(t, C11);
    q = q.mul_add(t, C10);
    q = q.mul_add(t, C9);
    q = q.mul_add(t, C8);
    q = q.mul_add(t, C7);
    q = q.mul_add(t, C6);
    q = q.mul_add(t, C5);
    q = q.mul_add(t, C4);
    q = q.mul_add(t, C3);
    q = q.mul_add(t, 0.5);
    q = q.mul_add(t, 1.0);
    let q = q * t;
    // n is a small non-negative integer (≤ 58 given the cap), so 2^n is
    // exactly representable via the exponent field — the scalar twin of
    // `vscalefpd`.
    let p2n = f64::from_bits((1023u64 + n as u64) << 52);
    let num = p2n.mul_add(q, p2n - 1.0);
    let den = p2n.mul_add(q, p2n + 1.0);
    (num / den).copysign(x)
}

/// Scalar dense-lane kernel: `out[o·8+l] = bias[o] + Σ_k wt[o·in+k] ·
/// act[k·8+l]`, accumulated ascending-`k` with `mul_add` — the exact
/// float-op chain of the vector tiers (no zero-skip: lane slabs are dense
/// by construction and a skip would break the FMA chain equivalence).
fn dense_lanes_scalar(wt: &[f64], bias: &[f64], in_dim: usize, act: &[f64], out: &mut [f64]) {
    for (o, &b) in bias.iter().enumerate() {
        let wrow = &wt[o * in_dim..(o + 1) * in_dim];
        let orow = &mut out[o * LANE_WIDTH..(o + 1) * LANE_WIDTH];
        orow.fill(b);
        for (k, &w) in wrow.iter().enumerate() {
            let arow = &act[k * LANE_WIDTH..(k + 1) * LANE_WIDTH];
            for (acc, &a) in orow.iter_mut().zip(arow) {
                *acc = w.mul_add(a, *acc);
            }
        }
    }
}

fn tanh_lanes_scalar(xs: &mut [f64]) {
    for x in xs {
        *x = tanh_lane(*x);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{C10, C11, C12, C3, C4, C5, C6, C7, C8, C9, LANE_WIDTH, LN2, LOG2E_2};
    use std::arch::x86_64::*;

    /// One 4-lane tanh in ymm registers; shared op sequence for the AVX2
    /// and AVX-512VL tiers (only `2^n` construction differs, and both
    /// constructions are exact).
    macro_rules! tanh_vec4_body {
        ($x:expr, $p2n_of:expr) => {{
            let sign_mask = _mm256_set1_pd(-0.0);
            let one = _mm256_set1_pd(1.0);
            let half = _mm256_set1_pd(0.5);
            let x = $x;
            let ax = _mm256_min_pd(_mm256_andnot_pd(sign_mask, x), _mm256_set1_pd(20.0));
            let y = _mm256_mul_pd(ax, _mm256_set1_pd(LOG2E_2));
            let n = _mm256_floor_pd(_mm256_add_pd(y, half));
            let t = _mm256_mul_pd(_mm256_sub_pd(y, n), _mm256_set1_pd(LN2));
            let mut q = _mm256_set1_pd(C12);
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C11));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C10));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C9));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C8));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C7));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C6));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C5));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C4));
            q = _mm256_fmadd_pd(q, t, _mm256_set1_pd(C3));
            q = _mm256_fmadd_pd(q, t, half);
            q = _mm256_fmadd_pd(q, t, one);
            let q = _mm256_mul_pd(q, t);
            let p2n = $p2n_of(one, n);
            let num = _mm256_fmadd_pd(p2n, q, _mm256_sub_pd(p2n, one));
            let den = _mm256_fmadd_pd(p2n, q, _mm256_add_pd(p2n, one));
            let r = _mm256_div_pd(num, den);
            _mm256_or_pd(r, _mm256_and_pd(sign_mask, x))
        }};
    }

    #[target_feature(enable = "avx512vl,avx512f")]
    pub unsafe fn tanh_lanes_avx512vl(xs: &mut [f64]) {
        debug_assert_eq!(xs.len() % 4, 0);
        for c in xs.chunks_exact_mut(4) {
            let x = _mm256_loadu_pd(c.as_ptr());
            let r = tanh_vec4_body!(x, |one, n| _mm256_scalef_pd(one, n));
            _mm256_storeu_pd(c.as_mut_ptr(), r);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn tanh_lanes_avx2(xs: &mut [f64]) {
        debug_assert_eq!(xs.len() % 4, 0);
        for c in xs.chunks_exact_mut(4) {
            let x = _mm256_loadu_pd(c.as_ptr());
            // 2^n without vscalefpd: n ≥ 0 integer-valued, so adding
            // n << 52 to the bits of 1.0 sets the exponent exactly.
            let r = tanh_vec4_body!(x, |one: __m256d, n: __m256d| {
                let ni = _mm256_cvtpd_epi32(n);
                let ni64 = _mm256_cvtepi32_epi64(ni);
                _mm256_castsi256_pd(_mm256_add_epi64(
                    _mm256_castpd_si256(one),
                    _mm256_slli_epi64(ni64, 52),
                ))
            });
            _mm256_storeu_pd(c.as_mut_ptr(), r);
        }
    }

    /// AVX-512VL dense-lane kernel: blocks four output features at a time
    /// (16 ymm accumulators — the VL tier's registers 16–31 keep the block
    /// resident), broadcasting weights against the two 4-lane halves of
    /// each activation row. Bias seeds the accumulators.
    #[target_feature(enable = "avx512vl,avx512f")]
    pub unsafe fn dense_lanes_avx512vl(
        wt: &[f64],
        bias: &[f64],
        in_dim: usize,
        act: &[f64],
        out: &mut [f64],
    ) {
        let out_dim = bias.len();
        let mut oo = 0;
        while oo + 4 <= out_dim {
            let w0 = &wt[oo * in_dim..];
            let w1 = &wt[(oo + 1) * in_dim..];
            let w2 = &wt[(oo + 2) * in_dim..];
            let w3 = &wt[(oo + 3) * in_dim..];
            let b0 = _mm256_set1_pd(bias[oo]);
            let b1 = _mm256_set1_pd(bias[oo + 1]);
            let b2 = _mm256_set1_pd(bias[oo + 2]);
            let b3 = _mm256_set1_pd(bias[oo + 3]);
            let (mut a0l, mut a0h, mut a1l, mut a1h) = (b0, b0, b1, b1);
            let (mut a2l, mut a2h, mut a3l, mut a3h) = (b2, b2, b3, b3);
            for k in 0..in_dim {
                let avl = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH));
                let avh = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH + 4));
                let wv0 = _mm256_set1_pd(w0[k]);
                let wv1 = _mm256_set1_pd(w1[k]);
                let wv2 = _mm256_set1_pd(w2[k]);
                let wv3 = _mm256_set1_pd(w3[k]);
                a0l = _mm256_fmadd_pd(wv0, avl, a0l);
                a0h = _mm256_fmadd_pd(wv0, avh, a0h);
                a1l = _mm256_fmadd_pd(wv1, avl, a1l);
                a1h = _mm256_fmadd_pd(wv1, avh, a1h);
                a2l = _mm256_fmadd_pd(wv2, avl, a2l);
                a2h = _mm256_fmadd_pd(wv2, avh, a2h);
                a3l = _mm256_fmadd_pd(wv3, avl, a3l);
                a3h = _mm256_fmadd_pd(wv3, avh, a3h);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH), a0l);
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH + 4), a0h);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 1) * LANE_WIDTH), a1l);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 1) * LANE_WIDTH + 4), a1h);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 2) * LANE_WIDTH), a2l);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 2) * LANE_WIDTH + 4), a2h);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 3) * LANE_WIDTH), a3l);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 3) * LANE_WIDTH + 4), a3h);
            oo += 4;
        }
        while oo < out_dim {
            let w0 = &wt[oo * in_dim..(oo + 1) * in_dim];
            let b0 = _mm256_set1_pd(bias[oo]);
            let (mut a0l, mut a0h) = (b0, b0);
            for (k, &w) in w0.iter().enumerate() {
                let avl = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH));
                let avh = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH + 4));
                let wv0 = _mm256_set1_pd(w);
                a0l = _mm256_fmadd_pd(wv0, avl, a0l);
                a0h = _mm256_fmadd_pd(wv0, avh, a0h);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH), a0l);
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH + 4), a0h);
            oo += 1;
        }
    }

    /// AVX2+FMA dense-lane kernel: same math as the VL tier, blocked two
    /// output features at a time (AVX2 has only ymm0–15).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dense_lanes_avx2(
        wt: &[f64],
        bias: &[f64],
        in_dim: usize,
        act: &[f64],
        out: &mut [f64],
    ) {
        let out_dim = bias.len();
        let mut oo = 0;
        while oo + 2 <= out_dim {
            let w0 = &wt[oo * in_dim..];
            let w1 = &wt[(oo + 1) * in_dim..];
            let b0 = _mm256_set1_pd(bias[oo]);
            let b1 = _mm256_set1_pd(bias[oo + 1]);
            let (mut a0l, mut a0h, mut a1l, mut a1h) = (b0, b0, b1, b1);
            for k in 0..in_dim {
                let avl = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH));
                let avh = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH + 4));
                let wv0 = _mm256_set1_pd(w0[k]);
                let wv1 = _mm256_set1_pd(w1[k]);
                a0l = _mm256_fmadd_pd(wv0, avl, a0l);
                a0h = _mm256_fmadd_pd(wv0, avh, a0h);
                a1l = _mm256_fmadd_pd(wv1, avl, a1l);
                a1h = _mm256_fmadd_pd(wv1, avh, a1h);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH), a0l);
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH + 4), a0h);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 1) * LANE_WIDTH), a1l);
            _mm256_storeu_pd(out.as_mut_ptr().add((oo + 1) * LANE_WIDTH + 4), a1h);
            oo += 2;
        }
        while oo < out_dim {
            let w0 = &wt[oo * in_dim..(oo + 1) * in_dim];
            let b0 = _mm256_set1_pd(bias[oo]);
            let (mut a0l, mut a0h) = (b0, b0);
            for (k, &w) in w0.iter().enumerate() {
                let avl = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH));
                let avh = _mm256_loadu_pd(act.as_ptr().add(k * LANE_WIDTH + 4));
                let wv0 = _mm256_set1_pd(w);
                a0l = _mm256_fmadd_pd(wv0, avl, a0l);
                a0h = _mm256_fmadd_pd(wv0, avh, a0h);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH), a0l);
            _mm256_storeu_pd(out.as_mut_ptr().add(oo * LANE_WIDTH + 4), a0h);
            oo += 1;
        }
    }
}

/// Kernel tier selected at runtime, once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Isa {
    /// AVX-512VL 256-bit kernels (fastest measured: wide register file
    /// without the 512-bit port bottleneck).
    #[cfg(target_arch = "x86_64")]
    Avx512Vl,
    /// AVX2 + FMA kernels.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// Portable `mul_add` kernels; also the bit-identity reference.
    Scalar,
}

#[cfg(target_arch = "x86_64")]
static ISA: OnceLock<Isa> = OnceLock::new();

/// The kernel tier in use on this host.
pub(crate) fn isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        *ISA.get_or_init(|| {
            if is_x86_feature_detected!("avx512vl") && is_x86_feature_detected!("avx512f") {
                Isa::Avx512Vl
            } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                Isa::Avx2Fma
            } else {
                Isa::Scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Isa::Scalar
    }
}

/// Dense-lane kernel entry: `out = Wᵀ·act + b` over 8-lane SoA slabs.
///
/// `wt` is the **transposed** weight matrix (`out_dim × in_dim` row-major),
/// `act` is `in_dim × 8`, `out` is `out_dim × 8`. Callers (the shape-checked
/// [`crate::Matrix::matmul_lanes_into`]) guarantee the slice lengths.
pub(crate) fn dense_lanes(wt: &[f64], bias: &[f64], in_dim: usize, act: &[f64], out: &mut [f64]) {
    debug_assert_eq!(wt.len(), bias.len() * in_dim);
    debug_assert_eq!(act.len(), in_dim * LANE_WIDTH);
    debug_assert_eq!(out.len(), bias.len() * LANE_WIDTH);
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier selected only when the features are detected; slice
        // lengths are asserted above and rechecked by the caller.
        Isa::Avx512Vl => unsafe { x86::dense_lanes_avx512vl(wt, bias, in_dim, act, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Isa::Avx2Fma => unsafe { x86::dense_lanes_avx2(wt, bias, in_dim, act, out) },
        Isa::Scalar => dense_lanes_scalar(wt, bias, in_dim, act, out),
    }
}

/// In-place lane `tanh` over an SoA slab (`xs.len()` a multiple of 8).
pub(crate) fn tanh_lanes(xs: &mut [f64]) {
    debug_assert_eq!(xs.len() % LANE_WIDTH, 0);
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier selected only when the features are detected.
        Isa::Avx512Vl => unsafe { x86::tanh_lanes_avx512vl(xs) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Isa::Avx2Fma => unsafe { x86::tanh_lanes_avx2(xs) },
        Isa::Scalar => tanh_lanes_scalar(xs),
    }
}

/// Applies `act` element-wise to an SoA slab. `Tanh` uses the lane
/// approximation; the rest are exact and identical in every tier
/// (`Relu`/`Identity` are branch-free compares, `Sigmoid` stays scalar —
/// it is not on any planner hot path).
pub(crate) fn activate_lanes(act: crate::Activation, xs: &mut [f64]) {
    match act {
        crate::Activation::Tanh => tanh_lanes(xs),
        crate::Activation::Relu => {
            for x in xs {
                *x = x.max(0.0);
            }
        }
        crate::Activation::Sigmoid => {
            for x in xs {
                *x = 1.0 / (1.0 + (-*x).exp());
            }
        }
        crate::Activation::Identity => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_rng::{Rng, SplitMix64};

    #[test]
    fn tanh_lane_is_accurate_to_a_few_ulp() {
        let mut max_rel = 0.0f64;
        for i in 0..40_000 {
            let x = (i as f64 - 20_000.0) * 0.00125; // [-25, 25]
            let got = tanh_lane(x);
            let want = x.tanh();
            let rel = if want != 0.0 {
                ((want - got) / want).abs()
            } else {
                (want - got).abs()
            };
            max_rel = max_rel.max(rel);
            assert!(
                (-1.0..=1.0).contains(&got),
                "tanh({x}) = {got} out of range"
            );
        }
        assert!(max_rel < 5e-15, "max rel err {max_rel:e}");
    }

    #[test]
    fn tanh_lane_edge_cases() {
        assert_eq!(tanh_lane(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(tanh_lane(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(tanh_lane(50.0), 1.0);
        assert_eq!(tanh_lane(-50.0), -1.0);
        assert_eq!(tanh_lane(1e300), 1.0);
        // Odd symmetry is exact (copysign of an |x| computation).
        for x in [1e-8, 0.3, 1.0, 5.0, 19.9] {
            assert_eq!(tanh_lane(-x).to_bits(), (-tanh_lane(x)).to_bits());
        }
    }

    /// Every detected vector tier must reproduce the scalar kernels to the
    /// bit — the property the cross-ISA determinism contract rests on.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_tiers_are_bit_identical_to_scalar() {
        let mut rng = SplitMix64::seed_from_u64(0xBEEF);
        for (in_dim, out_dim) in [(5, 32), (32, 32), (32, 1), (3, 7), (1, 1), (7, 5)] {
            let wt: Vec<f64> = (0..out_dim * in_dim)
                .map(|_| rng.random_range(-2.0..2.0))
                .collect();
            let bias: Vec<f64> = (0..out_dim).map(|_| rng.random_range(-1.0..1.0)).collect();
            let act: Vec<f64> = (0..in_dim * LANE_WIDTH)
                .map(|_| rng.random_range(-3.0..3.0))
                .collect();
            let mut reference = vec![0.0; out_dim * LANE_WIDTH];
            dense_lanes_scalar(&wt, &bias, in_dim, &act, &mut reference);
            let mut tanh_ref = reference.clone();
            tanh_lanes_scalar(&mut tanh_ref);

            if is_x86_feature_detected!("avx512vl") && is_x86_feature_detected!("avx512f") {
                let mut got = vec![0.0; out_dim * LANE_WIDTH];
                // SAFETY: feature checked above.
                unsafe { x86::dense_lanes_avx512vl(&wt, &bias, in_dim, &act, &mut got) };
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "avx512vl dense {in_dim}x{out_dim}"
                    );
                }
                // SAFETY: feature checked above.
                unsafe { x86::tanh_lanes_avx512vl(&mut got) };
                for (g, r) in got.iter().zip(&tanh_ref) {
                    assert_eq!(g.to_bits(), r.to_bits(), "avx512vl tanh {in_dim}x{out_dim}");
                }
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                let mut got = vec![0.0; out_dim * LANE_WIDTH];
                // SAFETY: feature checked above.
                unsafe { x86::dense_lanes_avx2(&wt, &bias, in_dim, &act, &mut got) };
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.to_bits(), r.to_bits(), "avx2 dense {in_dim}x{out_dim}");
                }
                // SAFETY: feature checked above.
                unsafe { x86::tanh_lanes_avx2(&mut got) };
                for (g, r) in got.iter().zip(&tanh_ref) {
                    assert_eq!(g.to_bits(), r.to_bits(), "avx2 tanh {in_dim}x{out_dim}");
                }
            }
        }
    }

    #[test]
    fn dead_lanes_stay_independent() {
        // Zeros in dead lanes must not perturb live lanes: recompute with
        // garbage in lanes 4..8 and check lanes 0..4 are unchanged.
        let mut rng = SplitMix64::seed_from_u64(7);
        let (in_dim, out_dim) = (5, 8);
        let wt: Vec<f64> = (0..out_dim * in_dim)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let bias: Vec<f64> = (0..out_dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut act: Vec<f64> = (0..in_dim * LANE_WIDTH)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let mut out_a = vec![0.0; out_dim * LANE_WIDTH];
        dense_lanes(&wt, &bias, in_dim, &act, &mut out_a);
        tanh_lanes(&mut out_a);
        for k in 0..in_dim {
            for lane in 4..LANE_WIDTH {
                act[k * LANE_WIDTH + lane] = 1e6 * (lane as f64);
            }
        }
        let mut out_b = vec![0.0; out_dim * LANE_WIDTH];
        dense_lanes(&wt, &bias, in_dim, &act, &mut out_b);
        tanh_lanes(&mut out_b);
        for o in 0..out_dim {
            for lane in 0..4 {
                let i = o * LANE_WIDTH + lane;
                assert_eq!(out_a[i].to_bits(), out_b[i].to_bits());
            }
        }
    }

    #[test]
    fn activate_lanes_matches_exact_activations() {
        use crate::Activation;
        let xs: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 0.4).collect();
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Identity] {
            let mut got = xs.clone();
            activate_lanes(act, &mut got);
            for (&g, &x) in got.iter().zip(&xs) {
                assert_eq!(g.to_bits(), act.apply(x).to_bits(), "{act}");
            }
        }
    }
}
