use crate::{Matrix, NnError};

/// Gradient-descent optimizers.
///
/// Construct with [`Optimizer::sgd`] or [`Optimizer::adam`]; the [`crate::Trainer`]
/// owns the per-parameter state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Adam (Kingma & Ba) with bias-corrected moments.
    Adam {
        /// Learning rate.
        lr: f64,
        /// First-moment decay (default 0.9).
        beta1: f64,
        /// Second-moment decay (default 0.999).
        beta2: f64,
        /// Numerical floor (default 1e-8).
        eps: f64,
    },
}

impl Optimizer {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn sgd(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Optimizer::Sgd { lr }
    }

    /// Adam with default betas and learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn adam(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-layer optimizer state (Adam moments; empty for SGD).
#[derive(Debug, Clone)]
pub(crate) struct LayerOptState {
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
    step: u64,
}

impl LayerOptState {
    pub(crate) fn new(in_dim: usize, out_dim: usize) -> Self {
        Self {
            mw: Matrix::zeros(in_dim, out_dim),
            vw: Matrix::zeros(in_dim, out_dim),
            mb: vec![0.0; out_dim],
            vb: vec![0.0; out_dim],
            step: 0,
        }
    }

    /// Computes the additive parameter update for the given gradients.
    pub(crate) fn update(
        &mut self,
        opt: &Optimizer,
        d_weights: &Matrix,
        d_bias: &[f64],
    ) -> Result<(Matrix, Vec<f64>), NnError> {
        match *opt {
            Optimizer::Sgd { lr } => Ok((
                d_weights.scale(-lr),
                d_bias.iter().map(|g| -lr * g).collect(),
            )),
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                self.step += 1;
                let t = self.step as f64;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);

                self.mw = self.mw.scale(beta1).add(&d_weights.scale(1.0 - beta1))?;
                self.vw = self
                    .vw
                    .scale(beta2)
                    .add(&d_weights.hadamard(d_weights)?.scale(1.0 - beta2))?;
                let dw = Matrix::from_fn(d_weights.rows(), d_weights.cols(), |r, c| {
                    let m_hat = self.mw.get(r, c) / bc1;
                    let v_hat = self.vw.get(r, c) / bc2;
                    -lr * m_hat / (v_hat.sqrt() + eps)
                });

                let mut db = vec![0.0; d_bias.len()];
                for (i, g) in d_bias.iter().enumerate() {
                    self.mb[i] = beta1 * self.mb[i] + (1.0 - beta1) * g;
                    self.vb[i] = beta2 * self.vb[i] + (1.0 - beta2) * g * g;
                    let m_hat = self.mb[i] / bc1;
                    let v_hat = self.vb[i] / bc2;
                    db[i] = -lr * m_hat / (v_hat.sqrt() + eps);
                }
                Ok((dw, db))
            }
        }
    }

    /// Applies the update directly to `weights`/`bias` without allocating
    /// the intermediate delta. The per-element arithmetic replicates the
    /// exact expression grouping of [`LayerOptState::update`] followed by
    /// `apply_update` (`w + (-lr·m̂/(√v̂+ε))` for Adam, `w + g·(−lr)` for
    /// SGD), so the resulting weight trajectory is bit-identical.
    pub(crate) fn update_in_place(
        &mut self,
        opt: &Optimizer,
        d_weights: &Matrix,
        d_bias: &[f64],
        weights: &mut Matrix,
        bias: &mut [f64],
    ) -> Result<(), NnError> {
        if d_weights.rows() != weights.rows()
            || d_weights.cols() != weights.cols()
            || d_bias.len() != bias.len()
        {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "in-place update: grads {}x{}/{} vs params {}x{}/{}",
                    d_weights.rows(),
                    d_weights.cols(),
                    d_bias.len(),
                    weights.rows(),
                    weights.cols(),
                    bias.len()
                ),
            });
        }
        match *opt {
            Optimizer::Sgd { lr } => {
                for (w, &g) in weights.as_mut_slice().iter_mut().zip(d_weights.as_slice()) {
                    *w += g * -lr;
                }
                for (b, g) in bias.iter_mut().zip(d_bias) {
                    *b += -lr * g;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                self.step += 1;
                let t = self.step as f64;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);

                for (((w, &g), m), v) in weights
                    .as_mut_slice()
                    .iter_mut()
                    .zip(d_weights.as_slice())
                    .zip(self.mw.as_mut_slice())
                    .zip(self.vw.as_mut_slice())
                {
                    *m = *m * beta1 + g * (1.0 - beta1);
                    *v = *v * beta2 + (g * g) * (1.0 - beta2);
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *w += -lr * m_hat / (v_hat.sqrt() + eps);
                }
                for (i, (b, g)) in bias.iter_mut().zip(d_bias).enumerate() {
                    self.mb[i] = beta1 * self.mb[i] + (1.0 - beta1) * g;
                    self.vb[i] = beta2 * self.vb[i] + (1.0 - beta2) * g * g;
                    let m_hat = self.mb[i] / bc1;
                    let v_hat = self.vb[i] / bc2;
                    *b += -lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_update_is_negative_scaled_gradient() {
        let mut st = LayerOptState::new(1, 1);
        let g = Matrix::from_rows(&[&[2.0]]).unwrap();
        let (dw, db) = st.update(&Optimizer::sgd(0.1), &g, &[4.0]).unwrap();
        assert!((dw.get(0, 0) + 0.2).abs() < 1e-12);
        assert!((db[0] + 0.4).abs() < 1e-12);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step is ≈ lr * sign(g).
        let mut st = LayerOptState::new(1, 1);
        let g = Matrix::from_rows(&[&[0.3]]).unwrap();
        let (dw, _) = st.update(&Optimizer::adam(0.01), &g, &[0.0]).unwrap();
        assert!((dw.get(0, 0) + 0.01).abs() < 1e-6, "{}", dw.get(0, 0));
    }

    #[test]
    fn adam_steps_shrink_with_consistent_gradient() {
        let mut st = LayerOptState::new(1, 1);
        let g = Matrix::from_rows(&[&[1.0]]).unwrap();
        let opt = Optimizer::adam(0.01);
        let mut last = f64::MAX;
        for _ in 0..5 {
            let (dw, _) = st.update(&opt, &g, &[0.0]).unwrap();
            let mag = dw.get(0, 0).abs();
            assert!(mag <= last + 1e-12);
            last = mag;
        }
    }

    #[test]
    #[should_panic]
    fn nonpositive_lr_panics() {
        let _ = Optimizer::sgd(0.0);
    }

    /// The in-place update must track the allocating update+apply
    /// composition to the bit across many steps, for both optimizers.
    #[test]
    fn update_in_place_is_bit_identical_to_update() {
        for opt in [Optimizer::sgd(0.05), Optimizer::adam(0.01)] {
            let mut st_a = LayerOptState::new(3, 2);
            let mut st_b = LayerOptState::new(3, 2);
            let mut w_a = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f64).sin());
            let mut w_b = w_a.clone();
            let mut b_a = vec![0.1, -0.2];
            let mut b_b = b_a.clone();
            for step in 0..25 {
                let g = Matrix::from_fn(3, 2, |r, c| ((step * 6 + r * 2 + c) as f64).cos());
                let gb = [((step * 2) as f64).sin(), ((step * 2 + 1) as f64).sin()];
                let (dw, db) = st_a.update(&opt, &g, &gb).unwrap();
                w_a = w_a.add(&dw).unwrap();
                for (b, d) in b_a.iter_mut().zip(&db) {
                    *b += d;
                }
                st_b.update_in_place(&opt, &g, &gb, &mut w_b, &mut b_b)
                    .unwrap();
                for (a, b) in w_a.as_slice().iter().zip(w_b.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{opt:?} step {step}");
                }
                for (a, b) in b_a.iter().zip(&b_b) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{opt:?} step {step}");
                }
            }
        }
    }

    #[test]
    fn update_in_place_rejects_shape_mismatch() {
        let mut st = LayerOptState::new(2, 2);
        let g = Matrix::zeros(2, 2);
        let mut w = Matrix::zeros(2, 1);
        let mut b = vec![0.0, 0.0];
        assert!(st
            .update_in_place(&Optimizer::sgd(0.1), &g, &[0.0, 0.0], &mut w, &mut b)
            .is_err());
    }
}
