use crate::{Matrix, NnError};

/// Training loss functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// Mean squared error over all entries.
    #[default]
    MeanSquaredError,
}

impl Loss {
    /// Loss value for predictions `y_hat` against targets `y`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn value(&self, y_hat: &Matrix, y: &Matrix) -> Result<f64, NnError> {
        match self {
            Loss::MeanSquaredError => Ok(y_hat.sub(y)?.mean_square()),
        }
    }

    /// Gradient `∂L/∂y_hat`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn gradient(&self, y_hat: &Matrix, y: &Matrix) -> Result<Matrix, NnError> {
        match self {
            Loss::MeanSquaredError => {
                let n = (y.rows() * y.cols()) as f64;
                Ok(y_hat.sub(y)?.scale(2.0 / n))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let y = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert_eq!(Loss::MeanSquaredError.value(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let y_hat = Matrix::from_rows(&[&[1.0], &[3.0]]).unwrap();
        let y = Matrix::from_rows(&[&[0.0], &[0.0]]).unwrap();
        assert_eq!(Loss::MeanSquaredError.value(&y_hat, &y).unwrap(), 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let y_hat = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]).unwrap();
        let y = Matrix::from_rows(&[&[0.0, 1.0], &[1.5, -0.5]]).unwrap();
        let g = Loss::MeanSquaredError.gradient(&y_hat, &y).unwrap();
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut p = y_hat.clone();
                p.set(r, c, y_hat.get(r, c) + h);
                let mut m = y_hat.clone();
                m.set(r, c, y_hat.get(r, c) - h);
                let fd = (Loss::MeanSquaredError.value(&p, &y).unwrap()
                    - Loss::MeanSquaredError.value(&m, &y).unwrap())
                    / (2.0 * h);
                assert!((g.get(r, c) - fd).abs() < 1e-6);
            }
        }
    }
}
