use crate::{Matrix, NnError};

/// Training loss functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Loss {
    /// Mean squared error over all entries.
    #[default]
    MeanSquaredError,
}

impl Loss {
    /// Loss value for predictions `y_hat` against targets `y`.
    ///
    /// Allocation-free: accumulates `(ŷ−y)²` in one ascending pass — the
    /// same per-element ops and summation order as the former
    /// `sub().mean_square()` form, so values are bit-identical to it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn value(&self, y_hat: &Matrix, y: &Matrix) -> Result<f64, NnError> {
        match self {
            Loss::MeanSquaredError => {
                Self::check_shapes("mse", y_hat, y)?;
                let n = y_hat.as_slice().len();
                if n == 0 {
                    return Ok(0.0);
                }
                let sum: f64 = y_hat
                    .as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .map(|(a, b)| {
                        let d = a - b;
                        d * d
                    })
                    .sum();
                Ok(sum / n as f64)
            }
        }
    }

    /// Gradient `∂L/∂y_hat`.
    ///
    /// Allocating reference path; the trainer's hot loop uses
    /// [`Loss::gradient_into`], which is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn gradient(&self, y_hat: &Matrix, y: &Matrix) -> Result<Matrix, NnError> {
        match self {
            Loss::MeanSquaredError => {
                let n = (y.rows() * y.cols()) as f64;
                Ok(y_hat.sub(y)?.scale(2.0 / n))
            }
        }
    }

    /// Gradient `∂L/∂y_hat` into a reusable buffer. Per element this
    /// computes `(ŷ−y) · (2/N)` — exactly the `sub().scale(2/N)` op order
    /// of [`Loss::gradient`] — with no heap allocation in the steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn gradient_into(
        &self,
        y_hat: &Matrix,
        y: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        match self {
            Loss::MeanSquaredError => {
                Self::check_shapes("mse gradient", y_hat, y)?;
                let n = (y.rows() * y.cols()) as f64;
                let k = 2.0 / n;
                out.reset_zeroed(y_hat.rows(), y_hat.cols());
                for ((o, &a), &b) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(y_hat.as_slice())
                    .zip(y.as_slice())
                {
                    *o = (a - b) * k;
                }
                Ok(())
            }
        }
    }

    fn check_shapes(op: &str, y_hat: &Matrix, y: &Matrix) -> Result<(), NnError> {
        if y_hat.rows() != y.rows() || y_hat.cols() != y.cols() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{op}: {}x{} vs {}x{}",
                    y_hat.rows(),
                    y_hat.cols(),
                    y.rows(),
                    y.cols()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let y = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert_eq!(Loss::MeanSquaredError.value(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let y_hat = Matrix::from_rows(&[&[1.0], &[3.0]]).unwrap();
        let y = Matrix::from_rows(&[&[0.0], &[0.0]]).unwrap();
        assert_eq!(Loss::MeanSquaredError.value(&y_hat, &y).unwrap(), 5.0);
    }

    #[test]
    fn value_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 1);
        assert!(Loss::MeanSquaredError.value(&a, &b).is_err());
        let mut g = Matrix::zeros(0, 0);
        assert!(Loss::MeanSquaredError
            .gradient_into(&a, &b, &mut g)
            .is_err());
    }

    #[test]
    fn gradient_into_is_bit_identical_to_gradient() {
        let y_hat = Matrix::from_fn(5, 3, |r, c| ((r * 13 + c) as f64).cos());
        let y = Matrix::from_fn(5, 3, |r, c| ((r + c * 11) as f64).sin());
        let reference = Loss::MeanSquaredError.gradient(&y_hat, &y).unwrap();
        let mut out = Matrix::zeros(0, 0);
        Loss::MeanSquaredError
            .gradient_into(&y_hat, &y, &mut out)
            .unwrap();
        for (a, b) in reference.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let y_hat = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]).unwrap();
        let y = Matrix::from_rows(&[&[0.0, 1.0], &[1.5, -0.5]]).unwrap();
        let g = Loss::MeanSquaredError.gradient(&y_hat, &y).unwrap();
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut p = y_hat.clone();
                p.set(r, c, y_hat.get(r, c) + h);
                let mut m = y_hat.clone();
                m.set(r, c, y_hat.get(r, c) - h);
                let fd = (Loss::MeanSquaredError.value(&p, &y).unwrap()
                    - Loss::MeanSquaredError.value(&m, &y).unwrap())
                    / (2.0 * h);
                assert!((g.get(r, c) - fd).abs() < 1e-6);
            }
        }
    }
}
