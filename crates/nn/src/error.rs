/// Errors produced by the neural-network library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Operand shapes are incompatible (e.g. matmul inner dims differ).
    ShapeMismatch {
        /// Human-readable description of the operation and the shapes.
        context: String,
    },
    /// A network was declared with fewer than two layer sizes.
    InvalidArchitecture,
    /// Parsing serialized weights failed.
    ParseWeights {
        /// What went wrong.
        context: String,
    },
    /// Training was invoked with inconsistent or empty data.
    InvalidTrainingData {
        /// What went wrong.
        context: String,
    },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NnError::InvalidArchitecture => {
                write!(f, "network needs at least an input and an output layer")
            }
            NnError::ParseWeights { context } => write!(f, "cannot parse weights: {context}"),
            NnError::InvalidTrainingData { context } => {
                write!(f, "invalid training data: {context}")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ShapeMismatch {
            context: "2x3 * 4x5".into(),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(!NnError::InvalidArchitecture.to_string().is_empty());
    }
}
