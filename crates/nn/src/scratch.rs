use crate::{Matrix, Mlp};

/// Reusable activation workspace for allocation-free [`Mlp`] inference.
///
/// [`Mlp::forward`] allocates one matrix per layer per call; on the episode
/// hot path the planner invokes the network every control step, so those
/// allocations dominate small-network inference cost. An `MlpScratch` holds
/// the input staging buffer and two ping-pong activation buffers; once they
/// have grown to the largest shape seen (done eagerly by
/// [`MlpScratch::for_net`] for single-sample inference),
/// [`Mlp::forward_into`] and [`Mlp::predict_into`] perform no heap
/// allocation at all.
///
/// A scratch is not tied to one network: buffers regrow on demand, so the
/// same scratch can serve differently shaped [`Mlp`]s (at the cost of a
/// one-time regrowth). Its contents carry no meaning between calls.
///
/// # Example
///
/// ```
/// use cv_nn::{Activation, Mlp, MlpScratch};
///
/// let net = Mlp::new(&[5, 16, 16, 1], Activation::Tanh, Activation::Tanh, 7)?;
/// let mut scratch = MlpScratch::for_net(&net);
/// let mut out = [0.0];
/// net.predict_into(&[0.1, 0.2, 0.3, 0.4, 0.5], &mut scratch, &mut out)?;
/// assert_eq!(vec![out[0]], net.predict(&[0.1, 0.2, 0.3, 0.4, 0.5])?);
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    /// Single-sample input staging buffer for [`Mlp::predict_into`].
    pub(crate) input: Matrix,
    /// Ping-pong activation buffers; layer `l` reads one and writes the
    /// other.
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
}

impl MlpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for single-sample inference through `net`, so
    /// even the first [`Mlp::predict_into`] call allocates nothing.
    pub fn for_net(net: &Mlp) -> Self {
        let widest = net.layers().iter().map(|l| l.out_dim()).max().unwrap_or(0);
        let mut s = Self::new();
        s.input.reset_zeroed(1, net.input_dim());
        s.ping.reset_zeroed(1, widest);
        s.pong.reset_zeroed(1, widest);
        s
    }
}

/// Reusable activation slabs for the lane-batched forward pass
/// ([`Mlp::forward_batch_into`]).
///
/// The lane path runs [`crate::LANE_WIDTH`] = 8 episodes in lockstep, so
/// its ping-pong buffers are structure-of-arrays slabs `width × 8` instead
/// of single rows. Like [`MlpScratch`], buffers regrow on demand and carry
/// no meaning between calls; [`BatchScratch::for_net`] pre-grows them so
/// even the first batched forward allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Ping-pong SoA activation slabs; layer `l` reads one and writes the
    /// other (the final layer writes the caller's output slab instead).
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
}

impl BatchScratch {
    /// An empty scratch; slabs grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for lane-batched inference through `net`.
    pub fn for_net(net: &Mlp) -> Self {
        let widest = net.layers().iter().map(|l| l.out_dim()).max().unwrap_or(0);
        let mut s = Self::new();
        s.ping.reset_zeroed(widest, crate::LANE_WIDTH);
        s.pong.reset_zeroed(widest, crate::LANE_WIDTH);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    #[test]
    fn for_net_sizes_buffers_for_one_row() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, 1).unwrap();
        let s = MlpScratch::for_net(&net);
        assert_eq!((s.input.rows(), s.input.cols()), (1, 3));
        assert_eq!(s.ping.cols(), 8);
        assert_eq!(s.pong.cols(), 8);
    }

    #[test]
    fn batch_scratch_sizes_slabs_lane_wide() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, 1).unwrap();
        let s = BatchScratch::for_net(&net);
        assert_eq!((s.ping.rows(), s.ping.cols()), (8, crate::LANE_WIDTH));
        assert_eq!((s.pong.rows(), s.pong.cols()), (8, crate::LANE_WIDTH));
    }
}
