use crate::{Matrix, Mlp};

/// Reusable activation workspace for allocation-free [`Mlp`] inference.
///
/// [`Mlp::forward`] allocates one matrix per layer per call; on the episode
/// hot path the planner invokes the network every control step, so those
/// allocations dominate small-network inference cost. An `MlpScratch` holds
/// the input staging buffer and two ping-pong activation buffers; once they
/// have grown to the largest shape seen (done eagerly by
/// [`MlpScratch::for_net`] for single-sample inference),
/// [`Mlp::forward_into`] and [`Mlp::predict_into`] perform no heap
/// allocation at all.
///
/// A scratch is not tied to one network: buffers regrow on demand, so the
/// same scratch can serve differently shaped [`Mlp`]s (at the cost of a
/// one-time regrowth). Its contents carry no meaning between calls.
///
/// # Example
///
/// ```
/// use cv_nn::{Activation, Mlp, MlpScratch};
///
/// let net = Mlp::new(&[5, 16, 16, 1], Activation::Tanh, Activation::Tanh, 7)?;
/// let mut scratch = MlpScratch::for_net(&net);
/// let mut out = [0.0];
/// net.predict_into(&[0.1, 0.2, 0.3, 0.4, 0.5], &mut scratch, &mut out)?;
/// assert_eq!(vec![out[0]], net.predict(&[0.1, 0.2, 0.3, 0.4, 0.5])?);
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    /// Single-sample input staging buffer for [`Mlp::predict_into`].
    pub(crate) input: Matrix,
    /// Ping-pong activation buffers; layer `l` reads one and writes the
    /// other.
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
}

impl MlpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown for single-sample inference through `net`, so
    /// even the first [`Mlp::predict_into`] call allocates nothing.
    pub fn for_net(net: &Mlp) -> Self {
        let widest = net.layers().iter().map(|l| l.out_dim()).max().unwrap_or(0);
        let mut s = Self::new();
        s.input.reset_zeroed(1, net.input_dim());
        s.ping.reset_zeroed(1, widest);
        s.pong.reset_zeroed(1, widest);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    #[test]
    fn for_net_sizes_buffers_for_one_row() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, 1).unwrap();
        let s = MlpScratch::for_net(&net);
        assert_eq!((s.input.rows(), s.input.cols()), (1, 3));
        assert_eq!(s.ping.cols(), 8);
        assert_eq!(s.pong.cols(), 8);
    }
}
