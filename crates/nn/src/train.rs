use cv_rng::{Rng, SplitMix64};

use crate::optimizer::LayerOptState;
use crate::{Loss, Matrix, Mlp, NnError, Optimizer};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of full passes over the data (an upper bound when early
    /// stopping is enabled).
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Loss function.
    pub loss: Loss,
    /// Fraction of the data held out for validation (0 disables).
    pub validation_fraction: f64,
    /// Early stopping: abort after this many epochs without validation
    /// improvement and restore the best weights. Requires
    /// `validation_fraction > 0`.
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 64,
            seed: 0,
            loss: Loss::MeanSquaredError,
            validation_fraction: 0.0,
            patience: None,
        }
    }
}

/// Mini-batch gradient-descent trainer for [`Mlp`]s.
///
/// # Example
///
/// ```
/// use cv_nn::{Activation, Matrix, Mlp, Optimizer, TrainConfig, Trainer};
///
/// // Fit XOR.
/// let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]])?;
/// let y = Matrix::from_rows(&[&[0.], &[1.], &[1.], &[0.]])?;
/// let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Identity, 1)?;
/// let cfg = TrainConfig { epochs: 500, batch_size: 4, ..TrainConfig::default() };
/// let history = Trainer::new(Optimizer::adam(0.05), cfg).fit(&mut net, &x, &y)?;
/// assert!(history.last().unwrap() < &0.05);
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    optimizer: Optimizer,
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(optimizer: Optimizer, config: TrainConfig) -> Self {
        Self { optimizer, config }
    }

    /// The configured optimizer.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// The configured hyperparameters.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Trains `net` on inputs `x` (N×in) and targets `y` (N×out), returning
    /// the per-epoch mean training loss.
    ///
    /// In-place hot loop: forward caches, gradients, and optimizer updates
    /// all run through preallocated [`FitScratch`] buffers, so after the
    /// first batch an epoch performs no per-mini-batch heap allocation. The
    /// weight trajectory is bit-identical to the allocating reference
    /// [`Trainer::fit_alloc`] (every kernel preserves per-element op order —
    /// see DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTrainingData`] if `x`/`y` row counts differ
    /// or the dataset is empty, and [`NnError::ShapeMismatch`] if the column
    /// counts do not match the network.
    pub fn fit(&self, net: &mut Mlp, x: &Matrix, y: &Matrix) -> Result<Vec<f64>, NnError> {
        self.fit_impl(net, x, y, true)
    }

    /// Allocating reference trainer: identical schedule and arithmetic to
    /// [`Trainer::fit`], but every mini-batch allocates its caches and
    /// deltas afresh. Kept as the A/B baseline (like `run_batch_static` in
    /// the sim crate) and used by the equivalence tests and the throughput
    /// benchmark's before/after comparison.
    ///
    /// # Errors
    ///
    /// Same contract as [`Trainer::fit`].
    pub fn fit_alloc(&self, net: &mut Mlp, x: &Matrix, y: &Matrix) -> Result<Vec<f64>, NnError> {
        self.fit_impl(net, x, y, false)
    }

    fn fit_impl(
        &self,
        net: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        in_place: bool,
    ) -> Result<Vec<f64>, NnError> {
        if x.rows() == 0 {
            return Err(NnError::InvalidTrainingData {
                context: "empty dataset".into(),
            });
        }
        if x.rows() != y.rows() {
            return Err(NnError::InvalidTrainingData {
                context: format!("{} inputs vs {} targets", x.rows(), y.rows()),
            });
        }
        if !(0.0..1.0).contains(&self.config.validation_fraction) {
            return Err(NnError::InvalidTrainingData {
                context: format!(
                    "validation fraction {} not in [0, 1)",
                    self.config.validation_fraction
                ),
            });
        }
        let mut rng = SplitMix64::seed_from_u64(self.config.seed);

        // Optional validation hold-out (deterministic shuffle, tail split).
        let early_stopping =
            self.config.patience.is_some() && self.config.validation_fraction > 0.0;
        let mut all: Vec<usize> = (0..x.rows()).collect();
        let (train_idx, val_idx): (Vec<usize>, Vec<usize>) = if early_stopping {
            rng.shuffle(&mut all);
            let val_n = ((x.rows() as f64 * self.config.validation_fraction) as usize)
                .clamp(1, x.rows() - 1);
            let split = x.rows() - val_n;
            (all[..split].to_vec(), all[split..].to_vec())
        } else {
            (all, Vec::new())
        };
        let (x_val, y_val) = if early_stopping {
            (x.select_rows(&val_idx), y.select_rows(&val_idx))
        } else {
            (Matrix::zeros(0, 0), Matrix::zeros(0, 0))
        };

        let batch = self.config.batch_size.clamp(1, train_idx.len().max(1));
        let mut states: Vec<LayerOptState> = net
            .layers()
            .iter()
            .map(|l| LayerOptState::new(l.in_dim(), l.out_dim()))
            .collect();
        let mut order = train_idx;
        let mut history = Vec::with_capacity(self.config.epochs);
        let mut best: Option<(f64, Mlp)> = None;
        let mut stale_epochs = 0usize;

        // Mini-batch buffers reused across every batch of every epoch.
        let mut xb = Matrix::zeros(0, 0);
        let mut yb = Matrix::zeros(0, 0);
        let mut scratch = FitScratch::for_net(net);
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                x.select_rows_into(chunk, &mut xb);
                y.select_rows_into(chunk, &mut yb);
                epoch_loss += if in_place {
                    self.step_in_place(net, &xb, &yb, &mut states, &mut scratch)?
                } else {
                    self.step_alloc(net, &xb, &yb, &mut states)?
                };
                batches += 1;
            }
            history.push(epoch_loss / batches.max(1) as f64);

            if early_stopping {
                let val_loss = self.config.loss.value(&net.forward(&x_val)?, &y_val)?;
                let improved = best.as_ref().is_none_or(|(b, _)| val_loss < *b);
                if improved {
                    best = Some((val_loss, net.clone()));
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= self.config.patience.expect("early stopping") {
                        break;
                    }
                }
            }
        }
        if let Some((_, best_net)) = best {
            *net = best_net; // restore the best validation weights
        }
        Ok(history)
    }

    /// One mini-batch step through the allocating reference path.
    fn step_alloc(
        &self,
        net: &mut Mlp,
        xb: &Matrix,
        yb: &Matrix,
        states: &mut [LayerOptState],
    ) -> Result<f64, NnError> {
        let (pred, caches) = net.forward_cached(xb)?;
        let loss = self.config.loss.value(&pred, yb)?;
        let mut grad = self.config.loss.gradient(&pred, yb)?;
        // Backward through the stack, updating as we go.
        for (idx, cache) in caches.iter().enumerate().rev() {
            let layer = &net.layers()[idx];
            let (d_input, grads) = layer.backward(cache, &grad)?;
            let (dw, db) = states[idx].update(&self.optimizer, &grads.d_weights, &grads.d_bias)?;
            net.layers_mut()[idx].apply_update(&dw, &db)?;
            grad = d_input;
        }
        Ok(loss)
    }

    /// One mini-batch step through the scratch-backed in-place path.
    fn step_in_place(
        &self,
        net: &mut Mlp,
        xb: &Matrix,
        yb: &Matrix,
        states: &mut [LayerOptState],
        s: &mut FitScratch,
    ) -> Result<f64, NnError> {
        let n_layers = net.layers().len();
        // Forward, caching pre-activations and activations per layer.
        for idx in 0..n_layers {
            let (done, rest) = s.acts.split_at_mut(idx);
            let input: &Matrix = if idx == 0 { xb } else { &done[idx - 1] };
            net.layers()[idx].forward_cached_into(input, &mut s.pres[idx], &mut rest[0])?;
        }
        let loss = self.config.loss.value(&s.acts[n_layers - 1], yb)?;
        self.config
            .loss
            .gradient_into(&s.acts[n_layers - 1], yb, &mut s.grad)?;
        // Backward through the stack, updating as we go.
        for idx in (0..n_layers).rev() {
            {
                let input: &Matrix = if idx == 0 { xb } else { &s.acts[idx - 1] };
                net.layers()[idx].backward_in_place(
                    input,
                    &s.pres[idx],
                    &s.grad,
                    &mut s.d_pre,
                    &mut s.d_w,
                    &mut s.d_b,
                    &mut s.w_t,
                    &mut s.d_inp,
                )?;
            }
            let (w, b) = net.layers_mut()[idx].params_mut();
            states[idx].update_in_place(&self.optimizer, &s.d_w, &s.d_b, w, b)?;
            std::mem::swap(&mut s.grad, &mut s.d_inp);
        }
        Ok(loss)
    }
}

/// Reusable buffers for the in-place training step: per-layer forward
/// caches plus the backward-pass intermediates. Everything regrows on
/// demand (`reset_zeroed`), so after the first full-size mini-batch no
/// buffer reallocates.
#[derive(Debug, Clone, Default)]
struct FitScratch {
    /// Per-layer activations (`acts[l]` is the output of layer `l`).
    acts: Vec<Matrix>,
    /// Per-layer pre-activations `z = x·W + b`.
    pres: Vec<Matrix>,
    /// Gradient flowing backward (`∂L/∂y` of the current layer).
    grad: Matrix,
    /// `∂L/∂z` of the current layer.
    d_pre: Matrix,
    /// `∂L/∂x` of the current layer (swapped into `grad`).
    d_inp: Matrix,
    /// Weight gradient.
    d_w: Matrix,
    /// Bias gradient.
    d_b: Vec<f64>,
    /// Staging buffer for the weight transpose in `δ·Wᵀ`.
    w_t: Matrix,
}

impl FitScratch {
    fn for_net(net: &Mlp) -> Self {
        let mut s = Self::default();
        s.acts.resize_with(net.layers().len(), Matrix::default);
        s.pres.resize_with(net.layers().len(), Matrix::default);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    fn toy_regression() -> (Matrix, Matrix) {
        // y = sin(2x) on [-1, 1].
        let n = 64;
        let xs: Vec<f64> = (0..n)
            .map(|i| -1.0 + 2.0 * i as f64 / (n - 1) as f64)
            .collect();
        let x = Matrix::from_vec(n, 1, xs.clone()).unwrap();
        let y = Matrix::from_vec(n, 1, xs.iter().map(|v| (2.0 * v).sin()).collect()).unwrap();
        (x, y)
    }

    #[test]
    fn loss_decreases_on_regression_task() {
        let (x, y) = toy_regression();
        let mut net = Mlp::new(&[1, 16, 16, 1], Activation::Tanh, Activation::Identity, 2).unwrap();
        let cfg = TrainConfig {
            epochs: 150,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let hist = Trainer::new(Optimizer::adam(0.01), cfg)
            .fit(&mut net, &x, &y)
            .unwrap();
        assert!(hist[0] > *hist.last().unwrap());
        assert!(
            *hist.last().unwrap() < 0.01,
            "final loss {}",
            hist.last().unwrap()
        );
    }

    #[test]
    fn sgd_also_learns() {
        let (x, y) = toy_regression();
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Identity, 4).unwrap();
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let hist = Trainer::new(Optimizer::sgd(0.05), cfg)
            .fit(&mut net, &x, &y)
            .unwrap();
        assert!(*hist.last().unwrap() < hist[0]);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, y) = toy_regression();
        let run = || {
            let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Identity, 3).unwrap();
            let cfg = TrainConfig {
                epochs: 20,
                batch_size: 8,
                seed: 11,
                ..TrainConfig::default()
            };
            Trainer::new(Optimizer::adam(0.01), cfg)
                .fit(&mut net, &x, &y)
                .unwrap();
            net
        };
        assert_eq!(run(), run());
    }

    /// The in-place trainer must walk the exact same weight trajectory as
    /// the allocating reference — identical per-epoch losses and
    /// bit-identical final parameters, for both optimizers and with early
    /// stopping in play.
    #[test]
    fn fit_is_bit_identical_to_fit_alloc() {
        let (x, y) = toy_regression();
        for (opt, patience, val_frac) in [
            (Optimizer::adam(0.01), None, 0.0),
            (Optimizer::sgd(0.05), None, 0.0),
            (Optimizer::adam(0.01), Some(5), 0.25),
        ] {
            let cfg = TrainConfig {
                epochs: 30,
                batch_size: 8,
                seed: 11,
                validation_fraction: val_frac,
                patience,
                ..TrainConfig::default()
            };
            let mut net_a =
                Mlp::new(&[1, 8, 8, 1], Activation::Tanh, Activation::Identity, 3).unwrap();
            let mut net_b = net_a.clone();
            let hist_a = Trainer::new(opt, cfg).fit(&mut net_a, &x, &y).unwrap();
            let hist_b = Trainer::new(opt, cfg)
                .fit_alloc(&mut net_b, &x, &y)
                .unwrap();
            assert_eq!(hist_a.len(), hist_b.len(), "{opt:?}");
            for (a, b) in hist_a.iter().zip(&hist_b) {
                assert_eq!(a.to_bits(), b.to_bits(), "{opt:?}");
            }
            for (la, lb) in net_a.layers().iter().zip(net_b.layers()) {
                for (a, b) in la.weights().as_slice().iter().zip(lb.weights().as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{opt:?}");
                }
                for (a, b) in la.bias().iter().zip(lb.bias()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{opt:?}");
                }
            }
        }
    }

    #[test]
    fn early_stopping_halts_before_the_epoch_budget() {
        let (x, y) = toy_regression();
        let mut net = Mlp::new(&[1, 16, 1], Activation::Tanh, Activation::Identity, 6).unwrap();
        let cfg = TrainConfig {
            epochs: 2000,
            batch_size: 16,
            validation_fraction: 0.25,
            patience: Some(8),
            ..TrainConfig::default()
        };
        let hist = Trainer::new(Optimizer::adam(0.01), cfg)
            .fit(&mut net, &x, &y)
            .unwrap();
        assert!(
            hist.len() < 2000,
            "early stopping never fired ({} epochs)",
            hist.len()
        );
        assert!(*hist.last().unwrap() < hist[0]);
    }

    #[test]
    fn invalid_validation_fraction_errors() {
        let (x, y) = toy_regression();
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Identity, 0).unwrap();
        let cfg = TrainConfig {
            validation_fraction: 1.5,
            patience: Some(3),
            ..TrainConfig::default()
        };
        let res = Trainer::new(Optimizer::adam(0.01), cfg).fit(&mut net, &x, &y);
        assert!(matches!(res, Err(NnError::InvalidTrainingData { .. })));
    }

    #[test]
    fn mismatched_data_errors() {
        let x = Matrix::zeros(4, 2);
        let y = Matrix::zeros(3, 1);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 0).unwrap();
        let res = Trainer::new(Optimizer::adam(0.01), TrainConfig::default()).fit(&mut net, &x, &y);
        assert!(matches!(res, Err(NnError::InvalidTrainingData { .. })));
    }

    #[test]
    fn empty_data_errors() {
        let x = Matrix::zeros(0, 2);
        let y = Matrix::zeros(0, 1);
        let mut net = Mlp::new(&[2, 4, 1], Activation::Tanh, Activation::Identity, 0).unwrap();
        let res = Trainer::new(Optimizer::adam(0.01), TrainConfig::default()).fit(&mut net, &x, &y);
        assert!(matches!(res, Err(NnError::InvalidTrainingData { .. })));
    }
}
