//! From-scratch feedforward neural network library.
//!
//! The paper wraps *"any NN-based planner"*; its evaluation trains planners
//! with the learning method of its ref. [6]. Since no external ML framework
//! is available (nor desirable for a self-contained reproduction), this crate
//! provides everything needed to train and run the small MLPs used as
//! planners:
//!
//! * [`Matrix`] — dense row-major matrix with the handful of ops backprop
//!   needs.
//! * [`Activation`], [`Dense`], [`Mlp`] — layers and the network, with
//!   forward inference and reverse-mode gradients.
//! * [`Loss`], [`Optimizer`], [`Trainer`] — mean-squared-error training with
//!   SGD or Adam, mini-batching, and shuffling.
//! * [`MlpScratch`] — reusable workspace behind the zero-allocation
//!   inference path ([`Mlp::forward_into`], [`Mlp::predict_into`]) used on
//!   the episode hot path; bit-identical to the allocating reference.
//! * [`LanePlan`], [`BatchScratch`] — lane-batched inference
//!   ([`Mlp::forward_batch_into`]): [`LANE_WIDTH`] = 8 samples stepped in
//!   lockstep through structure-of-arrays slabs and runtime-dispatched
//!   SIMD kernels (AVX-512VL / AVX2+FMA / scalar, all bit-identical to
//!   each other); deterministic, with a documented few-ulp tolerance to
//!   the per-sample path.
//! * Plain-text weight serialization ([`Mlp::to_text`], [`Mlp::from_text`])
//!   so trained planners can be embedded or cached without extra formats.
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use cv_nn::{Activation, Mlp, Trainer, TrainConfig, Matrix, Optimizer};
//!
//! // Learn y = 2x on a few points.
//! let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]])?;
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
//! let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Identity, 42)?;
//! let cfg = TrainConfig { epochs: 200, batch_size: 4, seed: 1, ..TrainConfig::default() };
//! let history = Trainer::new(Optimizer::adam(0.01), cfg).fit(&mut net, &x, &y)?;
//! assert!(history.last().unwrap() < &0.05);
//! # Ok::<(), cv_nn::NnError>(())
//! ```

mod activation;
mod error;
mod layer;
mod loss;
mod matrix;
mod mlp;
mod optimizer;
mod scratch;
mod simd;
mod train;

pub use activation::Activation;
pub use error::NnError;
pub use layer::Dense;
pub use loss::Loss;
pub use matrix::Matrix;
pub use mlp::{LanePlan, Mlp};
pub use optimizer::Optimizer;
pub use scratch::{BatchScratch, MlpScratch};
pub use simd::LANE_WIDTH;
pub use train::{TrainConfig, Trainer};
