/// Element-wise activation function of a [`crate::Dense`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    #[default]
    Tanh,
    /// Logistic sigmoid `1 / (1 + e^{−x})`.
    Sigmoid,
    /// Identity (no nonlinearity), typical for output layers in regression.
    Identity,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative at pre-activation `x`.
    pub fn derivative(&self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Stable identifier used in the text weight format.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "identity",
        }
    }

    /// Parses the identifier produced by [`Activation::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "relu" => Some(Activation::Relu),
            "tanh" => Some(Activation::Tanh),
            "sigmoid" => Some(Activation::Sigmoid),
            "identity" => Some(Activation::Identity),
            _ => None,
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Identity.apply(1.5), 1.5);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Tanh.apply(0.0).abs() < 1e-12);
    }

    #[test]
    fn name_roundtrip() {
        for a in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            assert_eq!(Activation::from_name(a.name()), Some(a));
        }
        assert_eq!(Activation::from_name("bogus"), None);
    }

    cv_rng::props! {
        /// Finite-difference check of every activation derivative.
        fn derivative_matches_finite_difference(x in -3.0..3.0f64) {
            let h = 1e-6;
            for a in [Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
                let fd = (a.apply(x + h) - a.apply(x - h)) / (2.0 * h);
                assert!((a.derivative(x) - fd).abs() < 1e-6, "{a}: {x}");
            }
            // ReLU away from the kink.
            if x.abs() > 1e-3 {
                let a = Activation::Relu;
                let fd = (a.apply(x + h) - a.apply(x - h)) / (2.0 * h);
                assert!((a.derivative(x) - fd).abs() < 1e-6);
            }
        }
        fn outputs_are_bounded_where_expected(x in -50.0..50.0f64) {
            assert!((-1.0..=1.0).contains(&Activation::Tanh.apply(x)));
            assert!((0.0..=1.0).contains(&Activation::Sigmoid.apply(x)));
            assert!(Activation::Relu.apply(x) >= 0.0);
        }
    }
}
