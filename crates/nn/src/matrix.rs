use cv_rng::Rng;
use cv_rng::SplitMix64;

use crate::NnError;

/// Dense row-major matrix of `f64`.
///
/// Rows are samples, columns are features throughout this crate. Only the
/// operations backprop needs are provided; everything validates shapes and
/// returns [`NnError::ShapeMismatch`] on misuse.
///
/// # Example
///
/// ```
/// use cv_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[&[1.0], &[1.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(0, 0), 3.0);
/// assert_eq!(c.get(1, 0), 7.0);
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Output-tile height of the blocked matmul kernels. Sized so a tile of the
/// right-hand operand (`TILE_ROWS` reuses × `TILE_COLS` doubles) stays
/// cache-resident across the rows of a block; the paper's planner shapes fit
/// a single tile, where the blocked loop degenerates to the naive traversal.
const TILE_ROWS: usize = 16;
/// Output-tile width of the blocked matmul kernels (in `f64` lanes).
const TILE_COLS: usize = 64;

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the rows have differing lengths
    /// or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NnError> {
        let Some(first) = rows.first() else {
            return Err(NnError::ShapeMismatch {
                context: "from_rows: empty input".into(),
            });
        };
        let cols = first.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return Err(NnError::ShapeMismatch {
                context: "from_rows: ragged or empty rows".into(),
            });
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!("from_vec: {} values for {rows}x{cols}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Xavier/Glorot-uniform initialisation for a `fan_in × fan_out` weight
    /// matrix, seeded for reproducibility.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SplitMix64) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Self::from_fn(fan_in, fan_out, |_, _| rng.random_range(-bound..=bound))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes to `rows × cols` filled with zeros, reusing the existing
    /// storage. In the steady state (capacity already large enough) this
    /// performs no heap allocation — the buffer-reuse primitive behind
    /// every `*_into` kernel and the [`crate::MlpScratch`] lifecycle.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows × cols` **without** zeroing retained storage; only
    /// storage grown beyond the previous length is zero-filled. Valid only
    /// when the caller overwrites every element before reading any (the
    /// dense-lane kernels do: each output row is seeded from the bias and
    /// stored unconditionally), which makes this the allocation- and
    /// memset-free variant of [`Matrix::reset_zeroed`] for the lane-batched
    /// hot path.
    fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix product `self · other`.
    ///
    /// Runs the output-tiled kernel (see [`Matrix::matmul_into`]);
    /// bit-identical to [`Matrix::matmul_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Pre-tiling reference kernel for `self · other` (i-k-j loop order,
    /// exact-zero skip). Kept — like `run_batch_static` in `cv-sim` — as
    /// the A/B baseline the tiled kernel is `to_bits`-tested against and
    /// benchmarked over; not dead code.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul_naive(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += aik * o;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · other` into `out`, reusing its storage.
    ///
    /// The kernel blocks over rows and columns of the *output*: within a
    /// `TILE_ROWS × TILE_COLS` output tile the loops run i → k → j, so every
    /// output element is still accumulated along one ascending-`k` chain
    /// with the exact-zero skip of the naive kernel. Tiling only changes
    /// *which elements* are computed when — never the summation order
    /// within an element — so results are bit-identical to
    /// [`Matrix::matmul_naive`] while the `other`-operand tile stays
    /// resident in cache across the rows of a block.
    ///
    /// Degenerate shapes (a single-row left operand, or a width-1 output)
    /// take specialised paths that drop the tile bookkeeping entirely but
    /// keep the identical per-element accumulation chain and zero-skip —
    /// these are the planner-inference and scalar-output-head shapes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let n = other.cols;
        out.reset_zeroed(self.rows, n);
        // Width-1 products (the planner head, training's δ·w for a scalar
        // output): each output element is one strided dot — the same
        // ascending-`k` chain and zero-skip, minus the per-`k` row slicing.
        if n == 1 {
            for (i, c) in out.data.iter_mut().enumerate() {
                let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                for (&aik, o) in arow.iter().zip(&other.data) {
                    if aik == 0.0 {
                        continue;
                    }
                    *c += aik * o;
                }
            }
            return Ok(());
        }
        // Single-row products (per-step planner inference): one axpy chain
        // per output lane with no tile bookkeeping, so the `j` loop
        // vectorises over the whole row. Same accumulation order.
        if self.rows == 1 {
            let crow = &mut out.data[..n];
            for (k, &aik) in self.data.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let orow = &other.data[k * n..(k + 1) * n];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += aik * o;
                }
            }
            return Ok(());
        }
        for i0 in (0..self.rows).step_by(TILE_ROWS) {
            let i1 = (i0 + TILE_ROWS).min(self.rows);
            for j0 in (0..n).step_by(TILE_COLS) {
                let j1 = (j0 + TILE_COLS).min(n);
                for i in i0..i1 {
                    let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                    let crow = &mut out.data[i * n + j0..i * n + j1];
                    for (k, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let orow = &other.data[k * n + j0..k * n + j1];
                        for (c, o) in crow.iter_mut().zip(orow) {
                            *c += aik * o;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Lane-batched dense product `out = self·act + bias` over
    /// structure-of-arrays activation slabs, into `out`.
    ///
    /// `self` is a **transposed** weight matrix (`out_dim × in_dim` — one
    /// contiguous row per output feature, the layout the broadcast-FMA
    /// kernels want), `act` is an `in_dim × `[`crate::LANE_WIDTH`] slab
    /// (column `l` = episode lane `l`), and `out` is resized to
    /// `out_dim × LANE_WIDTH`. Each output element is accumulated in one
    /// ascending-`k` FMA chain seeded with the bias; there is **no**
    /// zero-skip (lane slabs are dense, and a skip would break the
    /// fixed-chain guarantee that makes every ISA tier bit-identical — see
    /// the `simd` module). Dispatches to the fastest detected kernel tier.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `act` is not
    /// `self.cols × LANE_WIDTH` or `bias.len() != self.rows`.
    pub fn matmul_lanes_into(
        &self,
        act: &Matrix,
        bias: &[f64],
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        if act.rows != self.cols || act.cols != crate::LANE_WIDTH || bias.len() != self.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_lanes: {}x{} * {}x{} + bias {}",
                    self.rows,
                    self.cols,
                    act.rows,
                    act.cols,
                    bias.len()
                ),
            });
        }
        // No pre-zeroing: every kernel tier seeds each output row with the
        // bias and stores all LANE_WIDTH entries, so zeroing first would be
        // a dead memset on the per-step hot path.
        out.reshape_for_overwrite(self.rows, crate::LANE_WIDTH);
        crate::simd::dense_lanes(&self.data, bias, self.cols, &act.data, &mut out.data);
        Ok(())
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// Runs the output-tiled kernel (see [`Matrix::tr_matmul_into`]);
    /// bit-identical to [`Matrix::tr_matmul_naive`] and to
    /// `self.transpose().matmul(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.rows != other.rows`.
    pub fn tr_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        let mut out = Matrix::zeros(0, 0);
        self.tr_matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Pre-tiling reference kernel for `selfᵀ · other` (k-outer over
    /// `self`'s rows, zero-skip). Per output element the accumulation order
    /// (k ascending) and the zero-skip are exactly those of
    /// `self.transpose().matmul(other)` — bit-identical, minus one full
    /// matrix allocation and a strided copy. This is the `Xᵀ·δ`
    /// weight-gradient product on backprop's hot path; kept as the A/B
    /// baseline for the tiled kernel.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.rows != other.rows`.
    pub fn tr_matmul_naive(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "tr_matmul: ({}x{})^T * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for k in 0..self.rows {
                let aki = self.data[k * self.cols + i];
                if aki == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += aki * o;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ · other` into `out`, reusing its storage.
    ///
    /// Same output-tiling contract as [`Matrix::matmul_into`]: blocks over
    /// rows/columns of the output, i → k → j within a tile, one
    /// ascending-`k` accumulation chain with zero-skip per output element —
    /// bit-identical to [`Matrix::tr_matmul_naive`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.rows != other.rows`.
    pub fn tr_matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "tr_matmul: ({}x{})^T * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let n = other.cols;
        out.reset_zeroed(self.cols, n);
        for i0 in (0..self.cols).step_by(TILE_ROWS) {
            let i1 = (i0 + TILE_ROWS).min(self.cols);
            for j0 in (0..n).step_by(TILE_COLS) {
                let j1 = (j0 + TILE_COLS).min(n);
                for i in i0..i1 {
                    let crow = &mut out.data[i * n + j0..i * n + j1];
                    for k in 0..self.rows {
                        let aki = self.data[k * self.cols + i];
                        if aki == 0.0 {
                            continue;
                        }
                        let orow = &other.data[k * n + j0..k * n + j1];
                        for (c, o) in crow.iter_mut().zip(orow) {
                            *c += aki * o;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Matrix product `self · otherᵀ` — the `δ·Wᵀ` input-gradient product
    /// on backprop's hot path.
    ///
    /// Implemented as transpose-then-[`Matrix::matmul`], *on measurement*:
    /// the "transpose-free" alternatives (row-dot-row, or i-k-j with a
    /// strided gather of `other`) must accumulate each output element in a
    /// single ascending-`k` chain to stay bit-identical, which defeats
    /// vectorisation — both measured 1.4–4× *slower* than paying one small
    /// transpose allocation and running the vectorisable i-k-j kernel.
    /// Contrast [`Matrix::tr_matmul`], where the transpose-free form wins.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.cols`.
    pub fn matmul_tr(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_tr: {}x{} * ({}x{})^T",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        self.matmul(&other.transpose())
    }

    /// [`Matrix::matmul_tr`] into `out`, staging the transpose of `other`
    /// in `t_scratch` — both buffers reused across calls, so the epoch loop
    /// keeps the measured-faster transpose-then-multiply strategy without
    /// its per-call allocations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.cols`.
    pub fn matmul_tr_into(
        &self,
        other: &Matrix,
        t_scratch: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_tr: {}x{} * ({}x{})^T",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        other.transpose_into(t_scratch);
        self.matmul_into(t_scratch, out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Transpose into `out`, reusing its storage.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset_zeroed(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, NnError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{op}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| f(*x)).collect(),
        }
    }

    /// Multiplies every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Adds the row vector `bias` (length `cols`) to every row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Result<Matrix, NnError> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "add_row_broadcast: bias {} vs cols {}",
                    bias.len(),
                    self.cols
                ),
            });
        }
        let mut out = self.clone();
        if self.cols > 0 {
            for row in out.data.chunks_exact_mut(self.cols) {
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
        }
        Ok(out)
    }

    /// Sums each column into a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = Vec::new();
        self.column_sums_into(&mut sums);
        sums
    }

    /// [`Matrix::column_sums`] into `out`, reusing its storage.
    pub fn column_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        if self.cols > 0 {
            for row in self.data.chunks_exact(self.cols) {
                for (s, v) in out.iter_mut().zip(row) {
                    *s += v;
                }
            }
        }
    }

    /// Selects the given rows into a new matrix (for mini-batching).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Selects the given rows into `out`, reusing its storage — the
    /// epoch-loop variant of [`Matrix::select_rows`] (one retained buffer
    /// instead of one fresh matrix per mini-batch).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Mean of the squares of all entries (used for MSE).
    pub fn mean_square(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|x| x * x).sum::<f64>() / self.data.len() as f64
        }
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, " {:9.4}", self.get(r, c))?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn broadcast_and_column_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = m.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(b.get(0, 0), 11.0);
        assert_eq!(b.get(1, 1), 24.0);
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn select_rows_picks_batch() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let batch = m.select_rows(&[2, 0]);
        assert_eq!(batch.get(0, 0), 3.0);
        assert_eq!(batch.get(1, 0), 1.0);
    }

    #[test]
    fn xavier_bound_is_respected() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let m = Matrix::xavier_uniform(10, 10, &mut rng);
        let bound = (6.0 / 20.0f64).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= bound));
        // Not all zeros.
        assert!(m.as_slice().iter().any(|x| x.abs() > 1e-6));
    }

    cv_rng::props! {        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let m = Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0));
            assert_eq!(m.transpose().transpose(), m);
        }
        fn matmul_associative(seed in 0u64..50) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(3, 4, |_, _| rng.random_range(-1.0..1.0));
            let b = Matrix::from_fn(4, 2, |_, _| rng.random_range(-1.0..1.0));
            let c = Matrix::from_fn(2, 5, |_, _| rng.random_range(-1.0..1.0));
            let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
        fn add_commutes(seed in 0u64..50) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(3, 3, |_, _| rng.random_range(-1.0..1.0));
            let b = Matrix::from_fn(3, 3, |_, _| rng.random_range(-1.0..1.0));
            assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        }
        fn tr_matmul_is_bit_identical_to_transpose_matmul(
            m in 1usize..7, n in 1usize..7, p in 1usize..7, seed in 0u64..60
        ) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            // Sprinkle exact zeros (including a ReLU-style dead column) so
            // the zero-skip path is exercised, not just dense values.
            let a = Matrix::from_fn(m, n, |_, c| {
                if c == 0 || rng.random_range(0.0..1.0) < 0.2 { 0.0 }
                else { rng.random_range(-1.0..1.0) }
            });
            let b = Matrix::from_fn(m, p, |_, _| rng.random_range(-1.0..1.0));
            let fast = a.tr_matmul(&b).unwrap();
            let reference = a.transpose().matmul(&b).unwrap();
            assert_eq!(fast.rows(), reference.rows());
            assert_eq!(fast.cols(), reference.cols());
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        fn matmul_tr_is_bit_identical_to_matmul_transpose(
            m in 1usize..7, n in 1usize..7, q in 1usize..7, seed in 0u64..60
        ) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(m, n, |_, _| {
                if rng.random_range(0.0..1.0) < 0.2 { 0.0 }
                else { rng.random_range(-1.0..1.0) }
            });
            let b = Matrix::from_fn(q, n, |_, _| rng.random_range(-1.0..1.0));
            let fast = a.matmul_tr(&b).unwrap();
            let reference = a.matmul(&b.transpose()).unwrap();
            assert_eq!(fast.rows(), reference.rows());
            assert_eq!(fast.cols(), reference.cols());
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        fn select_rows_into_reuses_buffer(seed in 0u64..20) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let m = Matrix::from_fn(5, 3, |_, _| rng.random_range(-1.0..1.0));
            let mut buf = Matrix::zeros(0, 0);
            m.select_rows_into(&[4, 0, 2], &mut buf);
            assert_eq!(buf, m.select_rows(&[4, 0, 2]));
            m.select_rows_into(&[1], &mut buf);
            assert_eq!(buf, m.select_rows(&[1]));
        }
    }

    /// Random matrix with exact zeros sprinkled in, so the zero-skip path
    /// of every kernel is exercised.
    fn sparse_random(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            if rng.random_range(0.0..1.0) < 0.2 {
                0.0
            } else {
                rng.random_range(-1.0..1.0)
            }
        })
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, context: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{context}");
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}");
        }
    }

    /// The tiled kernels against their retained naive baselines across
    /// odd, prime, and tile-straddling shapes (tiles are 16×64, so 15–17
    /// straddles the row tile and 63–65 the column tile).
    #[test]
    fn tiled_kernels_are_bit_identical_to_naive_across_tile_boundaries() {
        let dims = [1usize, 2, 3, 5, 7, 15, 16, 17, 31, 63, 64, 65];
        let mut rng = SplitMix64::seed_from_u64(0xD1CE);
        for &m in &dims {
            for &k in &[1usize, 5, 17, 64, 65] {
                for &n in &dims {
                    let a = sparse_random(m, k, &mut rng);
                    let b = sparse_random(k, n, &mut rng);
                    let ctx = format!("matmul {m}x{k} * {k}x{n}");
                    assert_bits_eq(&a.matmul(&b).unwrap(), &a.matmul_naive(&b).unwrap(), &ctx);

                    let at = sparse_random(k, m, &mut rng);
                    let ctx = format!("tr_matmul ({k}x{m})^T * {k}x{n}");
                    assert_bits_eq(
                        &at.tr_matmul(&b).unwrap(),
                        &at.tr_matmul_naive(&b).unwrap(),
                        &ctx,
                    );
                }
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let a = sparse_random(17, 33, &mut rng);
        let b = sparse_random(33, 65, &mut rng);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &a.matmul_naive(&b).unwrap(), "matmul_into");
        // Second call with a smaller product reuses the same storage.
        let c = sparse_random(3, 33, &mut rng);
        c.matmul_into(&b, &mut out).unwrap();
        assert_bits_eq(&out, &c.matmul_naive(&b).unwrap(), "matmul_into reuse");

        let bt = sparse_random(65, 33, &mut rng);
        let mut t_scratch = Matrix::zeros(0, 0);
        a.matmul_tr_into(&bt, &mut t_scratch, &mut out).unwrap();
        assert_bits_eq(&out, &a.matmul_tr(&bt).unwrap(), "matmul_tr_into");

        let mut tr = Matrix::zeros(0, 0);
        a.transpose_into(&mut tr);
        assert_eq!(tr, a.transpose());

        let mut sums = Vec::new();
        a.column_sums_into(&mut sums);
        assert_eq!(sums, a.column_sums());
    }

    #[test]
    fn reset_zeroed_reshapes_in_place() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        m.reset_zeroed(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0]);
    }

    /// The lane kernel against a directly written per-lane `mul_add`
    /// chain — the accumulation-order contract every ISA tier shares.
    #[test]
    fn matmul_lanes_matches_per_lane_mul_add_chain() {
        let mut rng = SplitMix64::seed_from_u64(0xA11E);
        for (in_dim, out_dim) in [(5usize, 32usize), (32, 32), (32, 1), (2, 3)] {
            let wt = Matrix::from_fn(out_dim, in_dim, |_, _| rng.random_range(-1.0..1.0));
            let bias: Vec<f64> = (0..out_dim).map(|_| rng.random_range(-0.5..0.5)).collect();
            let act = Matrix::from_fn(in_dim, crate::LANE_WIDTH, |_, _| {
                rng.random_range(-2.0..2.0)
            });
            let mut out = Matrix::zeros(0, 0);
            wt.matmul_lanes_into(&act, &bias, &mut out).unwrap();
            assert_eq!((out.rows(), out.cols()), (out_dim, crate::LANE_WIDTH));
            for o in 0..out_dim {
                for lane in 0..crate::LANE_WIDTH {
                    let mut acc = bias[o];
                    for k in 0..in_dim {
                        acc = wt.get(o, k).mul_add(act.get(k, lane), acc);
                    }
                    assert_eq!(
                        out.get(o, lane).to_bits(),
                        acc.to_bits(),
                        "{in_dim}x{out_dim} o={o} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_lanes_rejects_bad_shapes() {
        let wt = Matrix::zeros(4, 3);
        let mut out = Matrix::zeros(0, 0);
        // act rows mismatch.
        assert!(wt
            .matmul_lanes_into(&Matrix::zeros(2, crate::LANE_WIDTH), &[0.0; 4], &mut out)
            .is_err());
        // act not LANE_WIDTH wide.
        assert!(wt
            .matmul_lanes_into(&Matrix::zeros(3, 4), &[0.0; 4], &mut out)
            .is_err());
        // bias length mismatch.
        assert!(wt
            .matmul_lanes_into(&Matrix::zeros(3, crate::LANE_WIDTH), &[0.0; 3], &mut out)
            .is_err());
    }

    #[test]
    fn tr_matmul_and_matmul_tr_reject_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.tr_matmul(&b),
            Err(NnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.matmul_tr(&a.transpose()),
            Err(NnError::ShapeMismatch { .. })
        ));
    }
}
