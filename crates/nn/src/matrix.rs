use cv_rng::Rng;
use cv_rng::SplitMix64;

use crate::NnError;

/// Dense row-major matrix of `f64`.
///
/// Rows are samples, columns are features throughout this crate. Only the
/// operations backprop needs are provided; everything validates shapes and
/// returns [`NnError::ShapeMismatch`] on misuse.
///
/// # Example
///
/// ```
/// use cv_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[&[1.0], &[1.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(0, 0), 3.0);
/// assert_eq!(c.get(1, 0), 7.0);
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the rows have differing lengths
    /// or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NnError> {
        let Some(first) = rows.first() else {
            return Err(NnError::ShapeMismatch {
                context: "from_rows: empty input".into(),
            });
        };
        let cols = first.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return Err(NnError::ShapeMismatch {
                context: "from_rows: ragged or empty rows".into(),
            });
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NnError> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!("from_vec: {} values for {rows}x{cols}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Xavier/Glorot-uniform initialisation for a `fan_in × fan_out` weight
    /// matrix, seeded for reproducibility.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SplitMix64) -> Self {
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Self::from_fn(fan_in, fan_out, |_, _| rng.random_range(-bound..=bound))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += aik * o;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// Loop order is k-outer over `self`'s rows, so per output element the
    /// accumulation order (k ascending) and the zero-skip are exactly those
    /// of `self.transpose().matmul(other)` — the result is bit-identical,
    /// minus one full matrix allocation and a strided copy. This is the
    /// `Xᵀ·δ` weight-gradient product on backprop's hot path.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.rows != other.rows`.
    pub fn tr_matmul(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "tr_matmul: ({}x{})^T * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for k in 0..self.rows {
                let aki = self.data[k * self.cols + i];
                if aki == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, o) in crow.iter_mut().zip(orow) {
                    *c += aki * o;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · otherᵀ` — the `δ·Wᵀ` input-gradient product
    /// on backprop's hot path.
    ///
    /// Implemented as transpose-then-[`Matrix::matmul`], *on measurement*:
    /// the "transpose-free" alternatives (row-dot-row, or i-k-j with a
    /// strided gather of `other`) must accumulate each output element in a
    /// single ascending-`k` chain to stay bit-identical, which defeats
    /// vectorisation — both measured 1.4–4× *slower* than paying one small
    /// transpose allocation and running the vectorisable i-k-j kernel.
    /// Contrast [`Matrix::tr_matmul`], where the transpose-free form wins.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.cols`.
    pub fn matmul_tr(&self, other: &Matrix) -> Result<Matrix, NnError> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_tr: {}x{} * ({}x{})^T",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        self.matmul(&other.transpose())
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on differing shapes.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, NnError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, NnError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{op}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| f(*x)).collect(),
        }
    }

    /// Multiplies every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Adds the row vector `bias` (length `cols`) to every row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> Result<Matrix, NnError> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "add_row_broadcast: bias {} vs cols {}",
                    bias.len(),
                    self.cols
                ),
            });
        }
        let mut out = self.clone();
        if self.cols > 0 {
            for row in out.data.chunks_exact_mut(self.cols) {
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
        }
        Ok(out)
    }

    /// Sums each column into a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        if self.cols > 0 {
            for row in self.data.chunks_exact(self.cols) {
                for (s, v) in sums.iter_mut().zip(row) {
                    *s += v;
                }
            }
        }
        sums
    }

    /// Selects the given rows into a new matrix (for mini-batching).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Selects the given rows into `out`, reusing its storage — the
    /// epoch-loop variant of [`Matrix::select_rows`] (one retained buffer
    /// instead of one fresh matrix per mini-batch).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Mean of the squares of all entries (used for MSE).
    pub fn mean_square(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|x| x * x).sum::<f64>() / self.data.len() as f64
        }
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, " {:9.4}", self.get(r, c))?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0][..]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn broadcast_and_column_sums() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = m.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(b.get(0, 0), 11.0);
        assert_eq!(b.get(1, 1), 24.0);
        assert_eq!(m.column_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn select_rows_picks_batch() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let batch = m.select_rows(&[2, 0]);
        assert_eq!(batch.get(0, 0), 3.0);
        assert_eq!(batch.get(1, 0), 1.0);
    }

    #[test]
    fn xavier_bound_is_respected() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let m = Matrix::xavier_uniform(10, 10, &mut rng);
        let bound = (6.0 / 20.0f64).sqrt();
        assert!(m.as_slice().iter().all(|x| x.abs() <= bound));
        // Not all zeros.
        assert!(m.as_slice().iter().any(|x| x.abs() > 1e-6));
    }

    cv_rng::props! {        fn transpose_is_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..100) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let m = Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0));
            assert_eq!(m.transpose().transpose(), m);
        }
        fn matmul_associative(seed in 0u64..50) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(3, 4, |_, _| rng.random_range(-1.0..1.0));
            let b = Matrix::from_fn(4, 2, |_, _| rng.random_range(-1.0..1.0));
            let c = Matrix::from_fn(2, 5, |_, _| rng.random_range(-1.0..1.0));
            let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
                assert!((x - y).abs() < 1e-10);
            }
        }
        fn add_commutes(seed in 0u64..50) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(3, 3, |_, _| rng.random_range(-1.0..1.0));
            let b = Matrix::from_fn(3, 3, |_, _| rng.random_range(-1.0..1.0));
            assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        }
        fn tr_matmul_is_bit_identical_to_transpose_matmul(
            m in 1usize..7, n in 1usize..7, p in 1usize..7, seed in 0u64..60
        ) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            // Sprinkle exact zeros (including a ReLU-style dead column) so
            // the zero-skip path is exercised, not just dense values.
            let a = Matrix::from_fn(m, n, |_, c| {
                if c == 0 || rng.random_range(0.0..1.0) < 0.2 { 0.0 }
                else { rng.random_range(-1.0..1.0) }
            });
            let b = Matrix::from_fn(m, p, |_, _| rng.random_range(-1.0..1.0));
            let fast = a.tr_matmul(&b).unwrap();
            let reference = a.transpose().matmul(&b).unwrap();
            assert_eq!(fast.rows(), reference.rows());
            assert_eq!(fast.cols(), reference.cols());
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        fn matmul_tr_is_bit_identical_to_matmul_transpose(
            m in 1usize..7, n in 1usize..7, q in 1usize..7, seed in 0u64..60
        ) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let a = Matrix::from_fn(m, n, |_, _| {
                if rng.random_range(0.0..1.0) < 0.2 { 0.0 }
                else { rng.random_range(-1.0..1.0) }
            });
            let b = Matrix::from_fn(q, n, |_, _| rng.random_range(-1.0..1.0));
            let fast = a.matmul_tr(&b).unwrap();
            let reference = a.matmul(&b.transpose()).unwrap();
            assert_eq!(fast.rows(), reference.rows());
            assert_eq!(fast.cols(), reference.cols());
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        fn select_rows_into_reuses_buffer(seed in 0u64..20) {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let m = Matrix::from_fn(5, 3, |_, _| rng.random_range(-1.0..1.0));
            let mut buf = Matrix::zeros(0, 0);
            m.select_rows_into(&[4, 0, 2], &mut buf);
            assert_eq!(buf, m.select_rows(&[4, 0, 2]));
            m.select_rows_into(&[1], &mut buf);
            assert_eq!(buf, m.select_rows(&[1]));
        }
    }

    #[test]
    fn tr_matmul_and_matmul_tr_reject_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.tr_matmul(&b),
            Err(NnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            a.matmul_tr(&a.transpose()),
            Err(NnError::ShapeMismatch { .. })
        ));
    }
}
