use cv_rng::SplitMix64;

use crate::{Activation, Matrix, NnError};

/// A fully connected layer `y = σ(x·W + b)`.
///
/// `W` is `in_dim × out_dim`; inputs are batches with samples as rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

/// Cached forward quantities needed by the backward pass.
#[derive(Debug, Clone)]
pub(crate) struct DenseCache {
    /// The layer input `x` (batch × in_dim).
    pub input: Matrix,
    /// Pre-activations `z = x·W + b` (batch × out_dim).
    pub pre: Matrix,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub(crate) struct DenseGrads {
    pub d_weights: Matrix,
    pub d_bias: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut SplitMix64,
    ) -> Self {
        Self {
            weights: Matrix::xavier_uniform(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Creates a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len() != weights.cols()`.
    pub fn from_parts(
        weights: Matrix,
        bias: Vec<f64>,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if bias.len() != weights.cols() {
            return Err(NnError::ShapeMismatch {
                context: format!("dense bias {} vs out_dim {}", bias.len(), weights.cols()),
            });
        }
        Ok(Self {
            weights,
            bias,
            activation,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Forward pass on a batch.
    ///
    /// Allocating reference path (kept for A/B against
    /// [`Dense::forward_into`], which is bit-identical).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let z = x.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        Ok(z.map(|v| self.activation.apply(v)))
    }

    /// Fused forward pass into `out`, reusing its storage: the tiled matmul
    /// accumulates `x·W` into `out`, then one finishing sweep applies
    /// `+ bias` and the activation per element. Per output element the
    /// float-op sequence — ascending-`k` accumulation with zero-skip, then
    /// `+ b`, then `σ` — is exactly that of [`Dense::forward`], so results
    /// are bit-identical with zero per-call heap allocation once `out` has
    /// grown to shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != in_dim`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) -> Result<(), NnError> {
        x.matmul_into(&self.weights, out)?;
        let cols = self.bias.len();
        if cols > 0 {
            for row in out.as_mut_slice().chunks_exact_mut(cols) {
                for (v, b) in row.iter_mut().zip(&self.bias) {
                    *v = self.activation.apply(*v + b);
                }
            }
        }
        Ok(())
    }

    /// [`Dense::forward_into`] keeping the pre-activations in `pre` for the
    /// in-place backward pass ([`Dense::backward_in_place`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != in_dim`.
    pub(crate) fn forward_cached_into(
        &self,
        x: &Matrix,
        pre: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        x.matmul_into(&self.weights, pre)?;
        let cols = self.bias.len();
        if cols > 0 {
            for row in pre.as_mut_slice().chunks_exact_mut(cols) {
                for (v, b) in row.iter_mut().zip(&self.bias) {
                    *v += b;
                }
            }
        }
        out.reset_zeroed(pre.rows(), pre.cols());
        for (o, z) in out.as_mut_slice().iter_mut().zip(pre.as_slice()) {
            *o = self.activation.apply(*z);
        }
        Ok(())
    }

    /// Forward pass keeping the cache for backprop.
    pub(crate) fn forward_cached(&self, x: &Matrix) -> Result<(Matrix, DenseCache), NnError> {
        let pre = x.matmul(&self.weights)?.add_row_broadcast(&self.bias)?;
        let out = pre.map(|v| self.activation.apply(v));
        Ok((
            out,
            DenseCache {
                input: x.clone(),
                pre,
            },
        ))
    }

    /// Backward pass: given `d_out = ∂L/∂y`, returns `∂L/∂x` and the
    /// parameter gradients.
    pub(crate) fn backward(
        &self,
        cache: &DenseCache,
        d_out: &Matrix,
    ) -> Result<(Matrix, DenseGrads), NnError> {
        let d_pre = d_out.hadamard(&cache.pre.map(|v| self.activation.derivative(v)))?;
        // `xᵀ·δ` runs transpose-free (`tr_matmul` streams the batch×in
        // input in place — the largest matrix in the pass); `δ·Wᵀ` keeps a
        // materialised transpose of the small weight matrix, which measures
        // faster (see `Matrix::matmul_tr`). Both are bit-identical to the
        // naive transpose-then-multiply forms.
        let d_weights = cache.input.tr_matmul(&d_pre)?;
        let d_bias = d_pre.column_sums();
        let d_input = d_pre.matmul_tr(&self.weights)?;
        Ok((d_input, DenseGrads { d_weights, d_bias }))
    }

    /// In-place variant of [`Dense::backward`] writing every intermediate
    /// into caller-owned buffers. `input`/`pre` are the forward cache (as
    /// produced by [`Dense::forward_cached_into`]); `w_t` stages the weight
    /// transpose for the `δ·Wᵀ` product. Per element the float-op sequence
    /// matches the allocating path exactly, so gradients are bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backward_in_place(
        &self,
        input: &Matrix,
        pre: &Matrix,
        d_out: &Matrix,
        d_pre: &mut Matrix,
        d_weights: &mut Matrix,
        d_bias: &mut Vec<f64>,
        w_t: &mut Matrix,
        d_input: &mut Matrix,
    ) -> Result<(), NnError> {
        if d_out.rows() != pre.rows() || d_out.cols() != pre.cols() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "backward: d_out {}x{} vs pre {}x{}",
                    d_out.rows(),
                    d_out.cols(),
                    pre.rows(),
                    pre.cols()
                ),
            });
        }
        d_pre.reset_zeroed(pre.rows(), pre.cols());
        for ((dp, &g), &z) in d_pre
            .as_mut_slice()
            .iter_mut()
            .zip(d_out.as_slice())
            .zip(pre.as_slice())
        {
            *dp = g * self.activation.derivative(z);
        }
        input.tr_matmul_into(d_pre, d_weights)?;
        d_pre.column_sums_into(d_bias);
        d_pre.matmul_tr_into(&self.weights, w_t, d_input)?;
        Ok(())
    }

    /// Mutable access to the parameters for in-place optimizer updates.
    pub(crate) fn params_mut(&mut self) -> (&mut Matrix, &mut [f64]) {
        (&mut self.weights, &mut self.bias)
    }

    /// Applies an additive update to the parameters (optimizer hook).
    pub(crate) fn apply_update(&mut self, dw: &Matrix, db: &[f64]) -> Result<(), NnError> {
        self.weights = self.weights.add(dw)?;
        if db.len() != self.bias.len() {
            return Err(NnError::ShapeMismatch {
                context: "bias update length".into(),
            });
        }
        for (b, d) in self.bias.iter_mut().zip(db) {
            *b += d;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        let mut rng = SplitMix64::seed_from_u64(1);
        Dense::new(3, 2, Activation::Tanh, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer();
        let x = Matrix::zeros(5, 3);
        let y = l.forward(&x).unwrap();
        assert_eq!((y.rows(), y.cols()), (5, 2));
        assert!(l.forward(&Matrix::zeros(5, 4)).is_err());
    }

    #[test]
    fn zero_weights_give_bias_through_activation() {
        let l = Dense::from_parts(Matrix::zeros(2, 1), vec![0.7], Activation::Identity).unwrap();
        let y = l
            .forward(&Matrix::from_rows(&[&[3.0, -1.0]]).unwrap())
            .unwrap();
        assert!((y.get(0, 0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        assert_eq!(layer().num_params(), 3 * 2 + 2);
    }

    /// Finite-difference gradient check on a single layer.
    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let l = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[&[0.3, -0.5, 0.9], &[-0.1, 0.8, 0.2]]).unwrap();
        // Loss = mean of squares of outputs; dL/dy = 2y/N.
        let n = 4.0; // 2 rows * 2 cols
        let (y, cache) = l.forward_cached(&x).unwrap();
        let d_out = y.scale(2.0 / n);
        let (d_x, grads) = l.backward(&cache, &d_out).unwrap();

        let h = 1e-6;
        let loss = |layer: &Dense, input: &Matrix| layer.forward(input).unwrap().mean_square();

        // Weight gradients.
        for r in 0..3 {
            for c in 0..2 {
                let mut lp = l.clone();
                let mut w = lp.weights.clone();
                w.set(r, c, w.get(r, c) + h);
                lp.weights = w;
                let mut lm = l.clone();
                let mut w = lm.weights.clone();
                w.set(r, c, w.get(r, c) - h);
                lm.weights = w;
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                assert!(
                    (grads.d_weights.get(r, c) - fd).abs() < 1e-5,
                    "dW[{r}][{c}]: {} vs {fd}",
                    grads.d_weights.get(r, c)
                );
            }
        }
        // Bias gradients.
        for c in 0..2 {
            let mut lp = l.clone();
            lp.bias[c] += h;
            let mut lm = l.clone();
            lm.bias[c] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!((grads.d_bias[c] - fd).abs() < 1e-5);
        }
        // Input gradients.
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * h);
                assert!((d_x.get(r, c) - fd).abs() < 1e-5);
            }
        }
    }
}
